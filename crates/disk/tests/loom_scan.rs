//! Model-checks the scan hand-off channel under the in-tree `loom`.
//!
//! Run with `cargo test -p cedar-disk --features loom --test loom_scan`.
//! Without the feature the file compiles to nothing (the shims would be
//! plain std and the "model" a single arbitrary interleaving).
//!
//! The shapes modeled are the ones the parallel scavenger relies on:
//! reader → N workers over a bounded [`ScanChannel`], close-drain
//! termination, backpressure at capacity 1, and a worker crashing
//! mid-pipeline (poison recovery: the survivors still drain).

#![cfg(feature = "loom")]

use cedar_disk::scan::ScanChannel;
use loom::sync::Arc;
use loom::thread;

/// Reader sends 3 chunks and closes; two workers drain. Every chunk is
/// received exactly once, in order per receiver, and both workers see
/// `None` afterwards.
#[test]
fn reader_two_workers_drain_everything() {
    loom::model(|| {
        let ch = Arc::new(ScanChannel::new(2));
        let reader = {
            let ch = Arc::clone(&ch);
            thread::spawn(move || {
                for seq in 0u32..3 {
                    assert!(ch.send(seq));
                }
                ch.close();
            })
        };
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let ch = Arc::clone(&ch);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(seq) = ch.recv() {
                        got.push(seq);
                    }
                    got
                })
            })
            .collect();
        reader.join().unwrap();
        let mut all: Vec<u32> = Vec::new();
        for w in workers {
            let got = w.join().unwrap();
            // Each worker sees its share in submission order.
            assert!(got.windows(2).all(|p| p[0] < p[1]));
            all.extend(got);
        }
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2]);
    });
}

/// Capacity-1 backpressure: the reader blocks on the second send until
/// the worker takes the first; close still lands after both.
#[test]
fn backpressure_at_capacity_one() {
    loom::model(|| {
        let ch = Arc::new(ScanChannel::new(1));
        let reader = {
            let ch = Arc::clone(&ch);
            thread::spawn(move || {
                assert!(ch.send(1u32));
                assert!(ch.send(2));
                ch.close();
            })
        };
        let worker = {
            let ch = Arc::clone(&ch);
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = ch.recv() {
                    got.push(v);
                }
                got
            })
        };
        reader.join().unwrap();
        assert_eq!(worker.join().unwrap(), vec![1, 2]);
    });
}

/// Close racing a blocked receiver: `close` happens after `send` in
/// the producer, so the receiver always wakes with the item (never a
/// lost wakeup, never a hang) and a later `recv` sees the close.
#[test]
fn close_races_blocked_receiver() {
    loom::model(|| {
        let ch = Arc::new(ScanChannel::<u32>::new(2));
        let receiver = {
            let ch = Arc::clone(&ch);
            thread::spawn(move || ch.recv())
        };
        let closer = {
            let ch = Arc::clone(&ch);
            thread::spawn(move || {
                ch.send(9);
                ch.close();
            })
        };
        closer.join().unwrap();
        assert_eq!(receiver.join().unwrap(), Some(9));
        assert_eq!(ch.recv(), None);
    });
}
