//! Property tests for the I/O scheduler (`cedar_disk::sched`).
//!
//! Two properties pin the scheduler's correctness:
//!
//! 1. **Equivalence** — for random request batches with random barrier
//!    placement, C-SCAN execution yields the same per-request results and
//!    a byte-identical disk image (data, label plane, damage plane) as
//!    naive in-order execution, and never costs more simulated time.
//! 2. **Crash containment** — with a random [`CrashPlan`], the post-crash
//!    image under the scheduler is one that in-order execution could have
//!    reached within a single window: every window before the crash is
//!    fully durable, every window after it never started, and each sector
//!    of the crash window holds either its pre- or post-window value (or
//!    is detectably damaged, ≤ 2 sectors). Reordering never leaks across
//!    a barrier.

use cedar_disk::sched::{execute, windows, IoBatch, IoOp, IoPolicy};
use cedar_disk::{CrashPlan, DiskError, Label, PageKind, SimDisk, SECTOR_BYTES};
use proptest::prelude::*;
use std::collections::BTreeSet;

const TOTAL: u32 = 2048; // TINY geometry.

/// A generator-friendly batch item.
#[derive(Clone, Debug)]
enum GenItem {
    Write(u32, u8, u8), // start, sectors, fill byte
    Read(u32, u8),      // start, sectors
    ReadAllowDamage(u32, u8),
    ReadLabels(u32, u8),
    WriteLabels(u32, u8, u32), // start, sectors, file id
    Barrier,
}

fn arb_item() -> impl Strategy<Value = GenItem> {
    prop_oneof![
        (0u32..TOTAL, 1u8..8, any::<u8>()).prop_map(|(s, n, b)| GenItem::Write(s, n, b)),
        (0u32..TOTAL, 1u8..8).prop_map(|(s, n)| GenItem::Read(s, n)),
        (0u32..TOTAL, 1u8..8).prop_map(|(s, n)| GenItem::ReadAllowDamage(s, n)),
        (0u32..TOTAL, 1u8..8).prop_map(|(s, n)| GenItem::ReadLabels(s, n)),
        (0u32..TOTAL, 1u8..6, 1u32..64).prop_map(|(s, n, f)| GenItem::WriteLabels(s, n, f)),
        Just(GenItem::Barrier),
    ]
}

/// Lowers generator items to a batch, returning the flat request list in
/// submission order alongside it (index-aligned with `windows()`).
fn build(items: &[GenItem]) -> (IoBatch, Vec<IoOp>) {
    let mut batch = IoBatch::new();
    let mut flat = Vec::new();
    let clamp = |s: u32, n: u8| (s, (n as u32).min(TOTAL - s) as usize);
    for item in items {
        let op = match item {
            GenItem::Barrier => {
                batch.barrier();
                continue;
            }
            GenItem::Write(s, n, b) => {
                let (s, n) = clamp(*s, *n);
                if n == 0 {
                    continue;
                }
                IoOp::Write {
                    start: s,
                    data: vec![*b; n * SECTOR_BYTES],
                }
            }
            GenItem::Read(s, n) => {
                let (s, n) = clamp(*s, *n);
                if n == 0 {
                    continue;
                }
                IoOp::Read { start: s, n }
            }
            GenItem::ReadAllowDamage(s, n) => {
                let (s, n) = clamp(*s, *n);
                if n == 0 {
                    continue;
                }
                IoOp::ReadAllowDamage { start: s, n }
            }
            GenItem::ReadLabels(s, n) => {
                let (s, n) = clamp(*s, *n);
                if n == 0 {
                    continue;
                }
                IoOp::ReadLabels { start: s, n }
            }
            GenItem::WriteLabels(s, n, f) => {
                let (s, n) = clamp(*s, *n);
                if n == 0 {
                    continue;
                }
                let labels: Vec<Label> = (0..n)
                    .map(|i| Label::new(*f as u64, i as u32, PageKind::Data))
                    .collect();
                IoOp::WriteLabels {
                    start: s,
                    labels,
                    expected: None,
                }
            }
        };
        batch.push(op.clone());
        flat.push(op);
    }
    (batch, flat)
}

/// A disk pre-populated with a deterministic pattern so reads and images
/// have something to disagree about.
fn populated_disk() -> SimDisk {
    let mut d = SimDisk::tiny();
    for s in (0..TOTAL).step_by(5) {
        let n = 3.min(TOTAL - s) as usize;
        d.write(s, &vec![(s % 251) as u8; n * SECTOR_BYTES])
            .unwrap();
    }
    d.write_labels(100, &[Label::new(7, 0, PageKind::Leader); 8], None)
        .unwrap();
    d
}

/// One sector's mutable planes, one byte of data sufficing because every
/// generated write is a uniform fill.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct ModelSector {
    data: Option<u8>,
    label: Label,
}

fn snapshot(d: &SimDisk) -> Vec<ModelSector> {
    (0..TOTAL)
        .map(|a| ModelSector {
            data: d.peek_data(a).map(|bytes| bytes[0]),
            label: d.peek_label(a),
        })
        .collect()
}

fn apply(state: &mut [ModelSector], op: &IoOp) {
    match op {
        IoOp::Write { start, data } => {
            for (i, chunk) in data.chunks(SECTOR_BYTES).enumerate() {
                state[*start as usize + i].data = Some(chunk[0]);
            }
        }
        IoOp::WriteLabels { start, labels, .. } => {
            for (i, l) in labels.iter().enumerate() {
                state[*start as usize + i].label = *l;
            }
        }
        _ => {} // Reads don't mutate.
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scheduled_execution_is_equivalent_to_in_order(
        items in proptest::collection::vec(arb_item(), 1..40),
    ) {
        let (batch, _) = build(&items);
        let mut a = populated_disk();
        let mut b = populated_disk();
        let out_a = execute(&mut a, IoPolicy::InOrder, &batch).unwrap();
        let out_b = execute(&mut b, IoPolicy::Cscan, &batch).unwrap();
        prop_assert_eq!(&out_a, &out_b, "per-request results must match");
        prop_assert_eq!(snapshot(&a), snapshot(&b), "disk images must match");
        for addr in 0..TOTAL {
            prop_assert!(!a.peek_damaged(addr) && !b.peek_damaged(addr));
        }
        // No perf assertion here: C-SCAN is a heuristic and adversarial
        // two-request windows can beat it. The io_sched bench pins the
        // aggregate win on real workloads.
    }

    #[test]
    fn crash_containment_respects_barrier_windows(
        items in proptest::collection::vec(arb_item(), 1..30),
        budget in 0u64..40,
        tail in 0u8..3,
    ) {
        let (batch, flat) = build(&items);
        let mut d = populated_disk();
        let pre = snapshot(&d);
        d.schedule_crash(CrashPlan { after_sector_writes: budget, damaged_tail: tail });
        let result = execute(&mut d, IoPolicy::Cscan, &batch);
        d.reboot();

        // Replay the batch on the model, window by window: states[w] is
        // the model just before window w runs.
        let wins = windows(&batch);
        let mut states: Vec<Vec<ModelSector>> = vec![pre];
        for win in &wins {
            let mut next = states.last().unwrap().clone();
            for &i in win {
                apply(&mut next, &flat[i]);
            }
            states.push(next);
        }

        if result.is_ok() {
            // The budget outlasted the batch: image is exactly the final
            // model and nothing is damaged.
            let want = states.last().unwrap();
            let got = snapshot(&d);
            for a in 0..TOTAL as usize {
                prop_assert!(!d.peek_damaged(a as u32), "no crash, no damage");
                prop_assert_eq!(got[a], want[a], "sector {}", a);
            }
        } else {
            prop_assert!(matches!(result, Err(DiskError::Crashed)));
            let got = snapshot(&d);
            // Some window W must explain the image.
            let explains = |w: usize| -> bool {
                let before = &states[w];
                let after = &states[w + 1];
                let touched: BTreeSet<u32> = wins[w]
                    .iter()
                    .filter(|&&i| flat[i].is_write())
                    .flat_map(|&i| {
                        flat[i].start()..flat[i].start() + flat[i].sectors() as u32
                    })
                    .collect();
                let mut damaged = 0u32;
                for a in 0..TOTAL {
                    let ai = a as usize;
                    if d.peek_damaged(a) {
                        // Damage only ever lands inside the crash window.
                        if !touched.contains(&a) {
                            return false;
                        }
                        damaged += 1;
                        continue;
                    }
                    if touched.contains(&a) {
                        if got[ai] != before[ai] && got[ai] != after[ai] {
                            return false;
                        }
                    } else if got[ai] != before[ai] {
                        return false;
                    }
                }
                damaged <= 2
            };
            prop_assert!(
                (0..wins.len()).any(explains),
                "crashed image is not explainable by any single window"
            );
        }
    }
}
