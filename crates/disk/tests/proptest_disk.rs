//! Property tests for the simulated disk: contents behave like a byte
//! store, time only moves forward, the accounting identities hold, and
//! crash plans tear writes exactly per the paper's failure model.

use cedar_disk::{CrashPlan, DiskGeometry, DiskTiming, SimClock, SimDisk, SECTOR_BYTES};
use proptest::prelude::*;
use std::collections::HashMap;

const TOTAL: u32 = 2048; // TINY geometry.

fn disk() -> SimDisk {
    SimDisk::new(DiskGeometry::TINY, DiskTiming::TINY, SimClock::new())
}

#[derive(Clone, Debug)]
enum Op {
    Write(u32, u8, u8), // start, sectors, fill byte
    Read(u32, u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..TOTAL, 1u8..8, any::<u8>()).prop_map(|(s, n, b)| Op::Write(s, n, b)),
        (0u32..TOTAL, 1u8..8).prop_map(|(s, n)| Op::Read(s, n)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn behaves_like_a_sector_store(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let mut d = disk();
        let clock = d.clock();
        let mut model: HashMap<u32, u8> = HashMap::new(); // sector → fill byte
        let mut last_time = clock.now();

        for op in &ops {
            match op {
                Op::Write(start, n, byte) => {
                    let n = (*n as u32).min(TOTAL - start) as usize;
                    if n == 0 { continue; }
                    d.write(*start, &vec![*byte; n * SECTOR_BYTES]).unwrap();
                    for i in 0..n as u32 {
                        model.insert(start + i, *byte);
                    }
                }
                Op::Read(start, n) => {
                    let n = (*n as u32).min(TOTAL - start) as usize;
                    if n == 0 { continue; }
                    let data = d.read(*start, n).unwrap();
                    for i in 0..n {
                        let want = model.get(&(start + i as u32)).copied().unwrap_or(0);
                        prop_assert!(
                            data[i * SECTOR_BYTES..(i + 1) * SECTOR_BYTES]
                                .iter()
                                .all(|&b| b == want),
                            "sector {} read {} wanted {}",
                            start + i as u32,
                            data[i * SECTOR_BYTES],
                            want
                        );
                    }
                }
            }
            // Time is monotone and every operation costs something.
            let now = clock.now();
            prop_assert!(now > last_time, "clock did not advance");
            last_time = now;
        }

        // Accounting identities.
        let s = d.stats();
        prop_assert_eq!(
            s.busy_us(),
            s.seek_us + s.rotation_us + s.lost_rev_us + s.transfer_us
        );
        prop_assert_eq!(
            s.transfer_us,
            (s.sectors_read + s.sectors_written) * d.timing().sector_us()
        );
        prop_assert!(clock.now() >= s.busy_us());
    }

    #[test]
    fn crash_plan_tears_exactly_at_the_budget(
        budget in 0u64..12,
        tail in 0u8..3,
        start in 0u32..(TOTAL - 16),
        n in 1u8..16,
    ) {
        let mut d = disk();
        d.schedule_crash(CrashPlan {
            after_sector_writes: budget,
            damaged_tail: tail,
        });
        let n = n as usize;
        let r = d.write(start, &vec![0xAAu8; n * SECTOR_BYTES]);
        d.reboot();
        if (n as u64) <= budget {
            // The write completed before the budget ran out.
            prop_assert!(r.is_ok());
            for i in 0..n as u32 {
                prop_assert!(!d.peek_damaged(start + i));
            }
        } else {
            prop_assert!(r.is_err());
            let boundary = budget as u32;
            // Sectors before the boundary are durable.
            for i in 0..boundary {
                prop_assert_eq!(d.read(start + i, 1).unwrap()[0], 0xAA);
            }
            // Up to `tail` sectors at the boundary are damaged (bounded
            // by the end of the write).
            let tail_end = (boundary + tail as u32).min(n as u32);
            for i in boundary..tail_end {
                prop_assert!(d.peek_damaged(start + i), "sector {i} should be torn");
            }
            // Everything after the tail never happened.
            for i in tail_end..n as u32 {
                prop_assert!(!d.peek_damaged(start + i));
                prop_assert_eq!(d.read(start + i, 1).unwrap()[0], 0);
            }
        }
    }

    #[test]
    fn rotational_position_is_consistent(start in 0u32..(TOTAL - 8)) {
        // Reading sector s then s+1 back-to-back never waits on rotation:
        // the head is right there.
        let mut d = disk();
        d.read(start, 1).unwrap();
        let before = d.stats();
        d.read(start + 1, 1).unwrap();
        let delta = d.stats().since(&before);
        if d.geometry().cylinder_of(start) == d.geometry().cylinder_of(start + 1) {
            prop_assert_eq!(delta.rotation_us, 0);
            prop_assert_eq!(delta.seek_us, 0);
        }
    }
}
