//! A deterministic simulated disk in the style of the Trident drives used by
//! the Xerox D-machines.
//!
//! This crate is the hardware substrate for the Cedar file-system
//! reproduction (Hagmann, SOSP 1987). It provides:
//!
//! * a sector-addressed store with explicit geometry
//!   (cylinders × heads × sectors-per-track, [`geometry::DiskGeometry`]);
//! * a timing model that charges seeks, short seeks, rotational latency and
//!   transfer time against a shared simulated clock
//!   ([`timing::DiskTiming`], [`clock::SimClock`]) — the paper's §6 analytic
//!   model is built from exactly these quantities;
//! * an optional per-sector *label* plane emulating the Trident label field
//!   that the old Cedar file system (CFS) used for robustness
//!   ([`label::Label`]);
//! * fault injection: bad sectors, and crash points that tear multi-sector
//!   writes according to the paper's failure model (§5.3: "when writing the
//!   last two pages, either both are transferred successfully, the last page
//!   is detectably damaged but the next to last is transferred successfully,
//!   or both pages are detectably damaged").
//!
//! All state is deterministic: the same sequence of operations produces the
//! same sector contents, the same I/O counts and the same simulated times.

#![deny(unsafe_code)]

pub mod clock;
pub mod cpu;
pub mod disk;
pub mod error;
pub mod fault;
pub mod geometry;
pub mod image;
pub mod label;
pub mod link;
pub mod scan;
pub mod sched;
pub mod stats;
pub mod sync;
pub mod timing;

pub use clock::{Micros, SimClock};
pub use cpu::{Cpu, CpuModel, WorkerCpu};
pub use disk::{CrashPlan, JournalEntry, SimDisk};
pub use error::DiskError;
pub use fault::FaultPlan;
pub use geometry::DiskGeometry;
pub use label::{Label, PageKind};
pub use link::{Link, LinkError, LinkPlan, LinkStats};
pub use scan::{ScanChannel, ScanChunk};
pub use sched::{IoBatch, IoOp, IoOutput, IoPolicy, OpResult};
pub use stats::DiskStats;
pub use timing::DiskTiming;

/// Size of one disk sector in bytes.
///
/// The Trident drives and the paper both use 512-byte sectors ("This is
/// logged in seven 512 byte sectors", §5.4).
pub const SECTOR_BYTES: usize = 512;

/// Bytes per sector, as `u64` (for byte-offset arithmetic).
pub const SECTOR_BYTES_U64: u64 = SECTOR_BYTES as u64;

/// A sector address: linear index into the volume.
pub type SectorAddr = u32;

/// Result alias for disk operations.
pub type Result<T> = std::result::Result<T, DiskError>;
