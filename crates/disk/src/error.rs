//! Disk error types.

use crate::label::Label;
use crate::SectorAddr;
use std::fmt;

/// Errors surfaced by the simulated disk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiskError {
    /// The sector is damaged (media flaw or a torn write left it
    /// detectably bad). Reading it fails; writing it repairs it.
    BadSector(SectorAddr),
    /// A label check failed: the label on disk did not match what the file
    /// system expected. This is how CFS detects wild writes and many
    /// software bugs (§2).
    LabelMismatch {
        /// The sector whose label mismatched.
        addr: SectorAddr,
        /// What the file system expected to find.
        expected: Label,
        /// What was actually on the disk.
        found: Label,
    },
    /// The address (or address + length) is beyond the end of the volume.
    OutOfRange(SectorAddr),
    /// The caller handed the disk a malformed request (e.g. a write whose
    /// length is not a whole number of sectors, or a label slice whose
    /// length disagrees with the sector count).
    BadRequest(&'static str),
    /// The machine crashed: a scheduled crash point fired. All further I/O
    /// fails with this error until the disk is rebooted with
    /// [`crate::SimDisk::reboot`]. File systems must unwind and recover.
    Crashed,
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadSector(a) => write!(f, "bad sector {a}"),
            Self::LabelMismatch {
                addr,
                expected,
                found,
            } => write!(
                f,
                "label mismatch at sector {addr}: expected {expected:?}, found {found:?}"
            ),
            Self::OutOfRange(a) => write!(f, "sector {a} out of range"),
            Self::BadRequest(msg) => write!(f, "bad request: {msg}"),
            Self::Crashed => write!(f, "machine crashed"),
        }
    }
}

impl std::error::Error for DiskError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::PageKind;

    #[test]
    fn display_is_informative() {
        assert_eq!(DiskError::BadSector(42).to_string(), "bad sector 42");
        assert_eq!(DiskError::Crashed.to_string(), "machine crashed");
        let msg = DiskError::LabelMismatch {
            addr: 3,
            expected: Label::new(1, 0, PageKind::Data),
            found: Label::FREE,
        }
        .to_string();
        assert!(msg.contains("sector 3"));
    }
}
