//! Simulated time.
//!
//! All time in the reproduction is *simulated*: it advances only when the
//! disk performs work or when a component explicitly charges CPU time. This
//! makes every benchmark deterministic, which is what lets us reproduce the
//! paper's exact I/O counts and stable wall-clock shapes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One microsecond, the base unit of simulated time.
pub type Micros = u64;

/// A shared handle to the simulation clock.
///
/// Cloning a `SimClock` yields another handle to the *same* clock; the disk
/// and the file system each hold one. The clock is an atomic counter, so
/// handles may be read from any thread — in the concurrent engine the
/// log-writer thread advances it while client threads sample it for
/// reports. Advancing is still logically single-writer (the component
/// doing simulated work owns the timeline); the atomics only make that
/// ownership transferable across threads.
///
/// # Examples
///
/// ```
/// use cedar_disk::SimClock;
/// let clock = SimClock::new();
/// let view = clock.clone();
/// clock.advance(250);
/// assert_eq!(view.now(), 250);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    now: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the current simulated time in microseconds.
    pub fn now(&self) -> Micros {
        self.now.load(Ordering::Acquire)
    }

    /// Advances the clock by `delta` microseconds.
    pub fn advance(&self, delta: Micros) {
        self.now.fetch_add(delta, Ordering::AcqRel);
    }

    /// Advances the clock to `target` if it is in the future; otherwise does
    /// nothing. Returns the amount of time actually waited.
    pub fn advance_to(&self, target: Micros) -> Micros {
        let prev = self.now.fetch_max(target, Ordering::AcqRel);
        target.saturating_sub(prev)
    }
}

/// Converts milliseconds to [`Micros`].
pub const fn millis(ms: u64) -> Micros {
    ms * 1_000
}

/// Converts seconds to [`Micros`].
pub const fn seconds(s: u64) -> Micros {
    s * 1_000_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero() {
        assert_eq!(SimClock::new().now(), 0);
    }

    #[test]
    fn advance_accumulates() {
        let c = SimClock::new();
        c.advance(10);
        c.advance(32);
        assert_eq!(c.now(), 42);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        b.advance(7);
        assert_eq!(a.now(), 7);
    }

    #[test]
    fn advance_to_future_waits() {
        let c = SimClock::new();
        c.advance(100);
        assert_eq!(c.advance_to(150), 50);
        assert_eq!(c.now(), 150);
    }

    #[test]
    fn advance_to_past_is_noop() {
        let c = SimClock::new();
        c.advance(100);
        assert_eq!(c.advance_to(50), 0);
        assert_eq!(c.now(), 100);
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(millis(3), 3_000);
        assert_eq!(seconds(2), 2_000_000);
    }
}
