//! Disk geometry: cylinders × heads × sectors-per-track, and the mapping
//! between linear sector addresses and physical positions.

use crate::SectorAddr;

/// Physical position of a sector on the disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Chs {
    /// Cylinder (radial position of the head assembly).
    pub cylinder: u32,
    /// Head (which platter surface).
    pub head: u32,
    /// Sector index within the track.
    pub sector: u32,
}

/// Disk geometry.
///
/// Linear sector addresses are laid out track-major within a cylinder:
/// address 0 is cylinder 0 / head 0 / sector 0; addresses then run along the
/// track, then to the next head of the same cylinder, then to the next
/// cylinder. Consecutive addresses on the same cylinder therefore transfer
/// without seeking, which is the locality property the paper's design leans
/// on ("Information that is needed, generated, recovered, or retrieved
/// together benefits from proximity on the disk", §5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiskGeometry {
    /// Number of cylinders.
    pub cylinders: u32,
    /// Number of heads (tracks per cylinder).
    pub heads: u32,
    /// Number of sectors per track.
    pub sectors_per_track: u32,
}

impl DiskGeometry {
    /// Geometry of the ~300 MB Trident-class drive the paper measured on:
    /// 815 cylinders × 19 heads × 38 sectors × 512 B ≈ 300 MB.
    pub const TRIDENT_T300: Self = Self {
        cylinders: 815,
        heads: 19,
        sectors_per_track: 38,
    };

    /// A tiny geometry for unit tests (64 cylinders × 2 heads × 16 sectors
    /// = 2048 sectors = 1 MB).
    pub const TINY: Self = Self {
        cylinders: 64,
        heads: 2,
        sectors_per_track: 16,
    };

    /// Total number of sectors on the volume.
    pub fn total_sectors(&self) -> u32 {
        self.cylinders * self.heads * self.sectors_per_track
    }

    /// Number of sectors in one cylinder.
    pub fn sectors_per_cylinder(&self) -> u32 {
        self.heads * self.sectors_per_track
    }

    /// Maps a linear sector address to its physical position.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is beyond the end of the volume.
    pub fn to_chs(&self, addr: SectorAddr) -> Chs {
        assert!(addr < self.total_sectors(), "sector {addr} out of range");
        let spc = self.sectors_per_cylinder();
        let cylinder = addr / spc;
        let within = addr % spc;
        Chs {
            cylinder,
            head: within / self.sectors_per_track,
            sector: within % self.sectors_per_track,
        }
    }

    /// Maps a physical position back to a linear sector address.
    pub fn to_addr(&self, chs: Chs) -> SectorAddr {
        chs.cylinder * self.sectors_per_cylinder() + chs.head * self.sectors_per_track + chs.sector
    }

    /// Returns the cylinder containing `addr`.
    pub fn cylinder_of(&self, addr: SectorAddr) -> u32 {
        addr / self.sectors_per_cylinder()
    }

    /// Returns the first sector address of the central cylinder — where the
    /// paper preallocates the file name table and the log to minimize head
    /// motion (§5.1, §5.3).
    pub fn central_sector(&self) -> SectorAddr {
        (self.cylinders / 2) * self.sectors_per_cylinder()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trident_is_about_300_mb() {
        let g = DiskGeometry::TRIDENT_T300;
        let bytes = g.total_sectors() as u64 * crate::SECTOR_BYTES as u64;
        assert!((290..320).contains(&(bytes / 1_000_000)), "{bytes}");
    }

    #[test]
    fn chs_roundtrip() {
        let g = DiskGeometry::TINY;
        for addr in [0, 1, 15, 16, 31, 32, 100, g.total_sectors() - 1] {
            assert_eq!(g.to_addr(g.to_chs(addr)), addr);
        }
    }

    #[test]
    fn address_zero_is_origin() {
        let g = DiskGeometry::TINY;
        assert_eq!(
            g.to_chs(0),
            Chs {
                cylinder: 0,
                head: 0,
                sector: 0
            }
        );
    }

    #[test]
    fn sequential_addresses_stay_on_cylinder() {
        let g = DiskGeometry::TINY;
        // First 32 sectors (2 heads × 16 sectors) are all cylinder 0.
        for addr in 0..g.sectors_per_cylinder() {
            assert_eq!(g.cylinder_of(addr), 0);
        }
        assert_eq!(g.cylinder_of(g.sectors_per_cylinder()), 1);
    }

    #[test]
    fn central_sector_is_mid_disk() {
        let g = DiskGeometry::TINY;
        assert_eq!(g.cylinder_of(g.central_sector()), 32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn chs_out_of_range_panics() {
        let g = DiskGeometry::TINY;
        let _ = g.to_chs(g.total_sectors());
    }
}
