//! Trident-style sector labels.
//!
//! On the Trident interface every sector carries a label field that is
//! checked in microcode before the sector's data is read or written (§2).
//! The old Cedar file system (CFS) marks each sector with the owning file's
//! unique id, the page number within the file, and the page type; a mismatch
//! during I/O surfaces software bugs and wild writes immediately, and a full
//! scan of the labels lets the *scavenger* rebuild the name table and free
//! map.
//!
//! FSD, the paper's new design, deliberately does **not** use labels — that
//! is the whole point ("a new, label-free design is required", §3) — but the
//! simulator keeps the label plane so the CFS baseline and its scavenger can
//! be reproduced faithfully.

/// The role a sector plays, as recorded in its label.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PageKind {
    /// Unallocated sector.
    Free = 0,
    /// CFS file header sector (properties + run table).
    Header = 1,
    /// File data sector.
    Data = 2,
    /// FSD leader page (software-check page preceding the data).
    Leader = 3,
    /// File name table sector.
    NameTable = 4,
    /// Log file sector.
    Log = 5,
    /// Boot-critical sector (root pointers, saved VAM, etc.).
    Boot = 6,
}

impl From<PageKind> for u8 {
    fn from(k: PageKind) -> u8 {
        match k {
            PageKind::Free => 0,
            PageKind::Header => 1,
            PageKind::Data => 2,
            PageKind::Leader => 3,
            PageKind::NameTable => 4,
            PageKind::Log => 5,
            PageKind::Boot => 6,
        }
    }
}

/// A sector label: who owns this sector and what it is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label {
    /// Unique id of the owning file (0 for system structures).
    pub uid: u64,
    /// Page number within the owning file.
    pub page: u32,
    /// What the sector is used for.
    pub kind: PageKind,
}

impl Label {
    /// The label of an unallocated sector.
    pub const FREE: Self = Self {
        uid: 0,
        page: 0,
        kind: PageKind::Free,
    };

    /// Creates a label.
    pub const fn new(uid: u64, page: u32, kind: PageKind) -> Self {
        Self { uid, page, kind }
    }

    /// Returns `true` if this sector is unallocated.
    pub fn is_free(&self) -> bool {
        self.kind == PageKind::Free
    }
}

impl Default for Label {
    fn default() -> Self {
        Self::FREE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_label_is_free() {
        assert!(Label::default().is_free());
    }

    #[test]
    fn data_label_is_not_free() {
        assert!(!Label::new(7, 0, PageKind::Data).is_free());
    }

    #[test]
    fn labels_compare_by_all_fields() {
        let a = Label::new(1, 2, PageKind::Data);
        assert_ne!(a, Label::new(1, 3, PageKind::Data));
        assert_ne!(a, Label::new(2, 2, PageKind::Data));
        assert_ne!(a, Label::new(1, 2, PageKind::Header));
        assert_eq!(a, Label::new(1, 2, PageKind::Data));
    }
}
