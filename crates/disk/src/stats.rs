//! I/O accounting.
//!
//! Tables 3 and 4 of the paper are measured in disk I/Os; Table 2 in wall
//! clock. [`DiskStats`] tracks both: operation and sector counts, and a
//! breakdown of where simulated time went (seeking, rotating, transferring).

use crate::clock::Micros;

/// Cumulative disk statistics.
///
/// An *operation* is one `read`/`write` call (one "disk I/O" in the paper's
/// counting); it may transfer several sectors.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Number of read operations.
    pub reads: u64,
    /// Number of write operations.
    pub writes: u64,
    /// Number of label-only operations (reads or writes of the label plane).
    pub label_ops: u64,
    /// Total sectors read.
    pub sectors_read: u64,
    /// Total sectors written.
    pub sectors_written: u64,
    /// Long seeks performed.
    pub seeks: u64,
    /// Short seeks performed (≤ the drive's short-seek threshold).
    pub short_seeks: u64,
    /// Time spent seeking.
    pub seek_us: Micros,
    /// Time spent waiting for rotation (waits shorter than the
    /// lost-revolution threshold).
    pub rotation_us: Micros,
    /// Time spent transferring data.
    pub transfer_us: Micros,
    /// Rotational waits of at least three quarters of a revolution —
    /// the paper's §6 "lost revolution": the sector just passed under
    /// the head and the drive must wait for it to come around again.
    pub lost_revolutions: u64,
    /// Time spent in lost revolutions (disjoint from `rotation_us`).
    pub lost_rev_us: Micros,
    /// Controller read retries for transient faults (each also books one
    /// lost revolution — the sector must come around again).
    pub transient_retries: u64,
    /// Injected media faults that fired: latent flaws discovered and
    /// grown-defect touches (each surfaced as a `BadSector` error).
    pub media_faults: u64,
}

impl DiskStats {
    /// Total disk I/O operations (reads + writes + label-only ops).
    pub fn total_ops(&self) -> u64 {
        self.reads + self.writes + self.label_ops
    }

    /// Total time the disk was busy.
    pub fn busy_us(&self) -> Micros {
        self.seek_us + self.rotation_us + self.lost_rev_us + self.transfer_us
    }

    /// Returns the difference `self - earlier`, for measuring a window.
    pub fn since(&self, earlier: &DiskStats) -> DiskStats {
        DiskStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            label_ops: self.label_ops - earlier.label_ops,
            sectors_read: self.sectors_read - earlier.sectors_read,
            sectors_written: self.sectors_written - earlier.sectors_written,
            seeks: self.seeks - earlier.seeks,
            short_seeks: self.short_seeks - earlier.short_seeks,
            seek_us: self.seek_us - earlier.seek_us,
            rotation_us: self.rotation_us - earlier.rotation_us,
            transfer_us: self.transfer_us - earlier.transfer_us,
            lost_revolutions: self.lost_revolutions - earlier.lost_revolutions,
            lost_rev_us: self.lost_rev_us - earlier.lost_rev_us,
            transient_retries: self.transient_retries - earlier.transient_retries,
            media_faults: self.media_faults - earlier.media_faults,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_components() {
        let s = DiskStats {
            reads: 2,
            writes: 3,
            label_ops: 1,
            seek_us: 10,
            rotation_us: 20,
            transfer_us: 30,
            lost_rev_us: 40,
            ..Default::default()
        };
        assert_eq!(s.total_ops(), 6);
        assert_eq!(s.busy_us(), 100);
    }

    #[test]
    fn since_subtracts_fieldwise() {
        let a = DiskStats {
            reads: 5,
            sectors_read: 50,
            lost_revolutions: 4,
            lost_rev_us: 400,
            ..Default::default()
        };
        let b = DiskStats {
            reads: 2,
            sectors_read: 20,
            lost_revolutions: 1,
            lost_rev_us: 100,
            ..Default::default()
        };
        let d = a.since(&b);
        assert_eq!(d.reads, 3);
        assert_eq!(d.sectors_read, 30);
        assert_eq!(d.lost_revolutions, 3);
        assert_eq!(d.lost_rev_us, 300);
    }
}
