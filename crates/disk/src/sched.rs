//! Batched request submission with write barriers and rotation-aware
//! scheduling.
//!
//! The paper's §6 performance model is built from seeks, short seeks,
//! rotational latencies, lost revolutions and transfer time — quantities
//! that only a controller seeing *several* requests at once can trade
//! against each other. This module is that controller: callers build an
//! [`IoBatch`] of read/write requests separated by explicit **write
//! barriers**, and [`execute`] runs each barrier-delimited window in
//! C-SCAN order (ascending sector address with wrap-around), starting the
//! sweep at whichever request costs the fewest microseconds of seek +
//! rotation from the head's current position, and coalescing physically
//! adjacent same-kind requests into single transfers.
//!
//! # Ordering and crash semantics
//!
//! Requests *within* a window may execute in any order and may be merged;
//! requests in different windows never reorder across the barrier between
//! them. Because the simulator's [`CrashPlan`](crate::CrashPlan) fires
//! after a fixed number of *executed* sector writes, a crash scheduled
//! mid-batch lands inside exactly one window: every earlier window is
//! fully durable, every later window never started, and only the crash
//! window itself exposes the reordering. This is the contract the FSD
//! log relies on — data sectors and their copies in one window, a
//! barrier, then the commit record.
//!
//! Two requests whose sector ranges overlap have a data dependency, so
//! the scheduler inserts an *implicit* barrier between them: submission
//! order is program order for conflicting requests, exactly as on the
//! real channel.
//!
//! # Error semantics
//!
//! [`execute`] aborts on the first failing request. Requests scheduled
//! before the failure (in *executed* order, not submission order) have
//! taken effect; later ones have not. Callers that need op-granular
//! error isolation — the scrub/remap paths that want to know *which*
//! sector went bad and resubmit the rest — use [`execute_partial`]: it
//! returns one [`OpResult`] per request, re-probing a failed coalesced
//! group one request at a time to attribute the damage, finishing the
//! rest of the window, and marking every request in later windows
//! [`OpResult::Skipped`] (the barrier contract: nothing after a barrier
//! may become durable while something before it failed).

use crate::clock::Micros;
use crate::disk::SimDisk;
use crate::error::DiskError;
use crate::label::Label;
use crate::{Result, SectorAddr, SECTOR_BYTES};

/// How a batch is executed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IoPolicy {
    /// Execute requests exactly in submission order, one `SimDisk` call
    /// each — the naive baseline the bench compares against.
    InOrder,
    /// C-SCAN within each barrier window, rotation-aware start,
    /// adjacent-request coalescing.
    #[default]
    Cscan,
}

/// One request in a batch. Mirrors the `SimDisk` data and label-plane
/// operations one-to-one.
#[derive(Clone, Debug)]
pub enum IoOp {
    /// `SimDisk::read(start, n)`.
    Read { start: SectorAddr, n: usize },
    /// `SimDisk::read_allow_damage(start, n)`.
    ReadAllowDamage { start: SectorAddr, n: usize },
    /// `SimDisk::read_checked(start, expected.len(), &expected)`.
    ReadChecked {
        start: SectorAddr,
        expected: Vec<Label>,
    },
    /// `SimDisk::read_labels(start, n)`.
    ReadLabels { start: SectorAddr, n: usize },
    /// `SimDisk::write(start, &data)`.
    Write { start: SectorAddr, data: Vec<u8> },
    /// `SimDisk::write_checked(start, &data, &expected)`.
    WriteChecked {
        start: SectorAddr,
        data: Vec<u8>,
        expected: Vec<Label>,
    },
    /// `SimDisk::write_with_labels(start, &data, &labels)`.
    WriteWithLabels {
        start: SectorAddr,
        data: Vec<u8>,
        labels: Vec<Label>,
    },
    /// `SimDisk::write_labels(start, &labels, expected)`.
    WriteLabels {
        start: SectorAddr,
        labels: Vec<Label>,
        expected: Option<Vec<Label>>,
    },
}

impl IoOp {
    /// First sector of the request.
    pub fn start(&self) -> SectorAddr {
        match self {
            IoOp::Read { start, .. }
            | IoOp::ReadAllowDamage { start, .. }
            | IoOp::ReadChecked { start, .. }
            | IoOp::ReadLabels { start, .. }
            | IoOp::Write { start, .. }
            | IoOp::WriteChecked { start, .. }
            | IoOp::WriteWithLabels { start, .. }
            | IoOp::WriteLabels { start, .. } => *start,
        }
    }

    /// Number of sectors the request touches (data rounded up).
    pub fn sectors(&self) -> u64 {
        match self {
            IoOp::Read { n, .. } | IoOp::ReadAllowDamage { n, .. } | IoOp::ReadLabels { n, .. } => {
                *n as u64
            }
            IoOp::ReadChecked { expected, .. } => expected.len() as u64,
            IoOp::Write { data, .. }
            | IoOp::WriteChecked { data, .. }
            | IoOp::WriteWithLabels { data, .. } => data.len().div_ceil(SECTOR_BYTES) as u64,
            IoOp::WriteLabels { labels, .. } => labels.len() as u64,
        }
    }

    /// Whether the request mutates the platter (data or label plane).
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            IoOp::Write { .. }
                | IoOp::WriteChecked { .. }
                | IoOp::WriteWithLabels { .. }
                | IoOp::WriteLabels { .. }
        )
    }

    /// Coalescing class: two adjacent requests merge into one transfer
    /// only if they are the same kind of channel operation.
    fn kind(&self) -> u8 {
        match self {
            IoOp::Read { .. } => 0,
            IoOp::ReadAllowDamage { .. } => 1,
            IoOp::ReadChecked { .. } => 2,
            IoOp::ReadLabels { .. } => 3,
            IoOp::Write { .. } => 4,
            IoOp::WriteChecked { .. } => 5,
            IoOp::WriteWithLabels { .. } => 6,
            // Label writes with and without a verify pass are different
            // channel programs; keep them apart.
            IoOp::WriteLabels { expected: None, .. } => 7,
            IoOp::WriteLabels {
                expected: Some(_), ..
            } => 8,
        }
    }

    fn range(&self) -> (u64, u64) {
        let s = self.start() as u64;
        (s, s + self.sectors())
    }

    fn overlaps(&self, other: &IoOp) -> bool {
        let (a0, a1) = self.range();
        let (b0, b1) = other.range();
        a0 < b1 && b0 < a1
    }
}

/// The result of one request, index-aligned with the submission order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IoOutput {
    /// A write completed.
    Done,
    /// Data from `Read`/`ReadChecked`.
    Data(Vec<u8>),
    /// Data plus per-sector damage mask from `ReadAllowDamage`.
    DataMask(Vec<u8>, Vec<bool>),
    /// Labels from `ReadLabels`.
    Labels(Vec<Label>),
}

impl IoOutput {
    /// Extracts `Data`; `None` means the caller mismatched request and
    /// output shapes (a submission bug, surfaced as a typed error).
    pub fn into_data(self) -> Option<Vec<u8>> {
        match self {
            IoOutput::Data(d) => Some(d),
            _ => None,
        }
    }

    /// Extracts `DataMask`, `None` on a shape mismatch.
    pub fn into_data_mask(self) -> Option<(Vec<u8>, Vec<bool>)> {
        match self {
            IoOutput::DataMask(d, m) => Some((d, m)),
            _ => None,
        }
    }

    /// Extracts `Labels`, `None` on a shape mismatch.
    pub fn into_labels(self) -> Option<Vec<Label>> {
        match self {
            IoOutput::Labels(l) => Some(l),
            _ => None,
        }
    }
}

#[derive(Clone, Debug)]
enum Item {
    Op(IoOp),
    Barrier,
}

/// An ordered list of requests and barriers awaiting execution.
#[derive(Clone, Debug, Default)]
pub struct IoBatch {
    items: Vec<Item>,
    ops: usize,
}

impl IoBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a request; returns its index into [`execute`]'s output.
    pub fn push(&mut self, op: IoOp) -> usize {
        self.items.push(Item::Op(op));
        self.ops += 1;
        self.ops - 1
    }

    /// Appends a write barrier: nothing submitted after it may execute
    /// before everything submitted before it is durable.
    pub fn barrier(&mut self) {
        if !self.items.is_empty() {
            self.items.push(Item::Barrier);
        }
    }

    /// Number of requests (barriers excluded).
    pub fn len(&self) -> usize {
        self.ops
    }

    /// Whether the batch holds no requests.
    pub fn is_empty(&self) -> bool {
        self.ops == 0
    }
}

/// Splits a batch into its barrier-delimited windows, including the
/// implicit barriers inserted between overlapping requests. Each window
/// is a list of request indices in submission order. Public so the
/// equivalence property tests can reason about exactly the windows the
/// scheduler will use.
pub fn windows(batch: &IoBatch) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    let mut current_ops: Vec<&IoOp> = Vec::new();
    let mut idx = 0usize;
    for item in &batch.items {
        match item {
            Item::Barrier => {
                if !current.is_empty() {
                    out.push(std::mem::take(&mut current));
                    current_ops.clear();
                }
            }
            Item::Op(op) => {
                if current_ops.iter().any(|prev| prev.overlaps(op)) {
                    out.push(std::mem::take(&mut current));
                    current_ops.clear();
                }
                current.push(idx);
                current_ops.push(op);
                idx += 1;
            }
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// The per-request outcome of [`execute_partial`], index-aligned with
/// submission order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpResult {
    /// The request completed.
    Ok(IoOutput),
    /// The request failed (the error names the offending sector for
    /// `BadSector`/`LabelMismatch`); requests it was coalesced with were
    /// re-probed individually and have their own results.
    Failed(DiskError),
    /// The request sits after a barrier behind a failure and was never
    /// attempted.
    Skipped,
}

impl OpResult {
    /// Extracts a completed output.
    pub fn into_output(self) -> Option<IoOutput> {
        match self {
            OpResult::Ok(o) => Some(o),
            _ => None,
        }
    }

    /// The failure, if any.
    pub fn error(&self) -> Option<&DiskError> {
        match self {
            OpResult::Failed(e) => Some(e),
            _ => None,
        }
    }
}

/// Executes a batch under `policy`, returning one [`OpResult`] per
/// request: failing requests are isolated instead of aborting the batch,
/// so callers can scrub/remap the named sector and resubmit. Only
/// [`DiskError::Crashed`] (the machine is gone) aborts the whole call.
///
/// A failed coalesced transfer is re-probed one member request at a
/// time to attribute the damage; data-plane requests are idempotent, so
/// the re-probe is safe. Remaining requests in the same window still
/// run; every request in later windows is [`OpResult::Skipped`].
pub fn execute_partial(
    disk: &mut SimDisk,
    policy: IoPolicy,
    batch: &IoBatch,
) -> Result<Vec<OpResult>> {
    let ops: Vec<&IoOp> = batch
        .items
        .iter()
        .filter_map(|it| match it {
            Item::Op(op) => Some(op),
            Item::Barrier => None,
        })
        .collect();
    let mut results: Vec<OpResult> = vec![OpResult::Skipped; batch.ops];
    let mut failed = false;
    for window in windows(batch) {
        if failed {
            break; // Later windows stay Skipped.
        }
        let groups = match policy {
            IoPolicy::InOrder => window.iter().map(|&i| vec![i]).collect(),
            IoPolicy::Cscan => plan_window(disk, &ops, &window),
        };
        for group in &groups {
            let mut outputs: Vec<Option<IoOutput>> = vec![None; batch.ops];
            match run_group(disk, &ops, group, &mut outputs) {
                Ok(()) => {
                    for &i in group {
                        results[i] = OpResult::Ok(outputs[i].take().unwrap_or(IoOutput::Done));
                    }
                }
                Err(DiskError::Crashed) => return Err(DiskError::Crashed),
                Err(e) => {
                    if group.len() == 1 {
                        results[group[0]] = OpResult::Failed(e);
                        failed = true;
                        continue;
                    }
                    // Re-probe the coalesced members individually to find
                    // out which of them hit the bad sector.
                    for &i in group {
                        match run_one(disk, ops[i]) {
                            Ok(o) => results[i] = OpResult::Ok(o),
                            Err(DiskError::Crashed) => return Err(DiskError::Crashed),
                            Err(e) => {
                                results[i] = OpResult::Failed(e);
                                failed = true;
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(results)
}

/// Executes a batch under `policy`, returning one [`IoOutput`] per
/// request in submission order.
pub fn execute(disk: &mut SimDisk, policy: IoPolicy, batch: &IoBatch) -> Result<Vec<IoOutput>> {
    let mut outputs: Vec<Option<IoOutput>> = vec![None; batch.ops];
    let ops: Vec<&IoOp> = batch
        .items
        .iter()
        .filter_map(|it| match it {
            Item::Op(op) => Some(op),
            Item::Barrier => None,
        })
        .collect();
    match policy {
        IoPolicy::InOrder => {
            for (i, op) in ops.iter().enumerate() {
                outputs[i] = Some(run_one(disk, op)?);
            }
        }
        IoPolicy::Cscan => {
            for window in windows(batch) {
                run_window(disk, &ops, &window, &mut outputs)?;
            }
        }
    }
    // Every request lands in exactly one window, so every slot is filled;
    // the fallback keeps this path panic-free.
    Ok(outputs
        .into_iter()
        .map(|o| o.unwrap_or(IoOutput::Done))
        .collect())
}

/// Plans one window: sort by address, coalesce adjacent same-kind
/// requests, rotate so the sweep starts at the rotationally cheapest
/// group. Returns the coalesced groups in execution order.
fn plan_window(disk: &SimDisk, ops: &[&IoOp], window: &[usize]) -> Vec<Vec<usize>> {
    // Stable sort: equal addresses keep submission order (they cannot
    // overlap — an implicit barrier would have split them — but empty
    // requests can share a start).
    let mut order: Vec<usize> = window.to_vec();
    order.sort_by_key(|&i| ops[i].start());

    // Greedy coalescing pass over the sorted requests.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for &i in &order {
        let op = ops[i];
        let fits = groups.last().and_then(|g| g.last()).is_some_and(|&j| {
            let last = ops[j];
            last.kind() == op.kind() && last.range().1 == op.range().0 && op.sectors() > 0
        });
        match groups.last_mut() {
            Some(g) if fits => g.push(i),
            _ => groups.push(vec![i]),
        }
    }

    // Rotational-position-aware start: the sweep begins at the group
    // whose first sector costs the fewest microseconds of seek +
    // rotation from where the head is right now, then proceeds in
    // ascending address order with wrap-around (C-SCAN).
    let start_group = groups
        .iter()
        .enumerate()
        .min_by_key(|(_, g)| disk.position_cost_us(ops[g[0]].start()))
        .map(|(gi, _)| gi)
        .unwrap_or(0);
    groups.rotate_left(start_group);
    groups
}

/// One window: plan it, then run each coalesced group.
fn run_window(
    disk: &mut SimDisk,
    ops: &[&IoOp],
    window: &[usize],
    outputs: &mut [Option<IoOutput>],
) -> Result<()> {
    for g in plan_window(disk, ops, window) {
        run_group(disk, ops, &g, outputs)?;
    }
    Ok(())
}

/// Executes one coalesced group as a single `SimDisk` operation and
/// splits the result back onto the member requests.
fn run_group(
    disk: &mut SimDisk,
    ops: &[&IoOp],
    group: &[usize],
    outputs: &mut [Option<IoOutput>],
) -> Result<()> {
    if group.len() == 1 {
        let i = group[0];
        outputs[i] = Some(run_one(disk, ops[i])?);
        return Ok(());
    }
    let start = ops[group[0]].start();
    let counts: Vec<usize> = group.iter().map(|&i| ops[i].sectors() as usize).collect();
    let total: usize = counts.iter().sum();
    match ops[group[0]] {
        IoOp::Read { .. } => {
            let data = disk.read(start, total)?;
            for (i, chunk) in split_bytes(&data, &counts, group) {
                outputs[i] = Some(IoOutput::Data(chunk));
            }
        }
        IoOp::ReadAllowDamage { .. } => {
            let (data, mask) = disk.read_allow_damage(start, total)?;
            let mut off = 0usize;
            for (gi, &i) in group.iter().enumerate() {
                let n = counts[gi];
                outputs[i] = Some(IoOutput::DataMask(
                    data[off * SECTOR_BYTES..(off + n) * SECTOR_BYTES].to_vec(),
                    mask[off..off + n].to_vec(),
                ));
                off += n;
            }
        }
        IoOp::ReadChecked { .. } => {
            let mut expected: Vec<Label> = Vec::with_capacity(total);
            for &i in group {
                let IoOp::ReadChecked { expected: e, .. } = ops[i] else {
                    unreachable!("group kind mismatch");
                };
                expected.extend_from_slice(e);
            }
            let data = disk.read_checked(start, total, &expected)?;
            for (i, chunk) in split_bytes(&data, &counts, group) {
                outputs[i] = Some(IoOutput::Data(chunk));
            }
        }
        IoOp::ReadLabels { .. } => {
            let labels = disk.read_labels(start, total)?;
            let mut off = 0usize;
            for (gi, &i) in group.iter().enumerate() {
                let n = counts[gi];
                outputs[i] = Some(IoOutput::Labels(labels[off..off + n].to_vec()));
                off += n;
            }
        }
        IoOp::Write { .. } => {
            let mut data: Vec<u8> = Vec::with_capacity(total * SECTOR_BYTES);
            for &i in group {
                let IoOp::Write { data: d, .. } = ops[i] else {
                    unreachable!("group kind mismatch");
                };
                data.extend_from_slice(d);
            }
            disk.write(start, &data)?;
            mark_done(group, outputs);
        }
        IoOp::WriteChecked { .. } => {
            let mut data: Vec<u8> = Vec::with_capacity(total * SECTOR_BYTES);
            let mut expected: Vec<Label> = Vec::with_capacity(total);
            for &i in group {
                let IoOp::WriteChecked {
                    data: d,
                    expected: e,
                    ..
                } = ops[i]
                else {
                    unreachable!("group kind mismatch");
                };
                data.extend_from_slice(d);
                expected.extend_from_slice(e);
            }
            disk.write_checked(start, &data, &expected)?;
            mark_done(group, outputs);
        }
        IoOp::WriteWithLabels { .. } => {
            let mut data: Vec<u8> = Vec::with_capacity(total * SECTOR_BYTES);
            let mut labels: Vec<Label> = Vec::with_capacity(total);
            for &i in group {
                let IoOp::WriteWithLabels {
                    data: d, labels: l, ..
                } = ops[i]
                else {
                    unreachable!("group kind mismatch");
                };
                data.extend_from_slice(d);
                labels.extend_from_slice(l);
            }
            disk.write_with_labels(start, &data, &labels)?;
            mark_done(group, outputs);
        }
        IoOp::WriteLabels { .. } => {
            let mut labels: Vec<Label> = Vec::with_capacity(total);
            let mut expected: Vec<Label> = Vec::with_capacity(total);
            let mut any_expected = false;
            for &i in group {
                let IoOp::WriteLabels {
                    labels: l,
                    expected: e,
                    ..
                } = ops[i]
                else {
                    unreachable!("group kind mismatch");
                };
                labels.extend_from_slice(l);
                if let Some(e) = e {
                    any_expected = true;
                    expected.extend_from_slice(e);
                }
            }
            let expected = any_expected.then_some(expected.as_slice());
            disk.write_labels(start, &labels, expected)?;
            mark_done(group, outputs);
        }
    }
    Ok(())
}

fn split_bytes(data: &[u8], counts: &[usize], group: &[usize]) -> Vec<(usize, Vec<u8>)> {
    let mut out = Vec::with_capacity(group.len());
    let mut off = 0usize;
    for (gi, &i) in group.iter().enumerate() {
        let n = counts[gi];
        out.push((
            i,
            data[off * SECTOR_BYTES..(off + n) * SECTOR_BYTES].to_vec(),
        ));
        off += n;
    }
    out
}

fn mark_done(group: &[usize], outputs: &mut [Option<IoOutput>]) {
    for &i in group {
        outputs[i] = Some(IoOutput::Done);
    }
}

/// Executes a single request directly.
fn run_one(disk: &mut SimDisk, op: &IoOp) -> Result<IoOutput> {
    Ok(match op {
        IoOp::Read { start, n } => IoOutput::Data(disk.read(*start, *n)?),
        IoOp::ReadAllowDamage { start, n } => {
            let (d, m) = disk.read_allow_damage(*start, *n)?;
            IoOutput::DataMask(d, m)
        }
        IoOp::ReadChecked { start, expected } => {
            IoOutput::Data(disk.read_checked(*start, expected.len(), expected)?)
        }
        IoOp::ReadLabels { start, n } => IoOutput::Labels(disk.read_labels(*start, *n)?),
        IoOp::Write { start, data } => {
            disk.write(*start, data)?;
            IoOutput::Done
        }
        IoOp::WriteChecked {
            start,
            data,
            expected,
        } => {
            disk.write_checked(*start, data, expected)?;
            IoOutput::Done
        }
        IoOp::WriteWithLabels {
            start,
            data,
            labels,
        } => {
            disk.write_with_labels(*start, data, labels)?;
            IoOutput::Done
        }
        IoOp::WriteLabels {
            start,
            labels,
            expected,
        } => {
            disk.write_labels(*start, labels, expected.as_deref())?;
            IoOutput::Done
        }
    })
}

/// Convenience: the estimated positioning cost the scheduler minimizes,
/// re-exported for benches and diagnostics.
pub fn position_cost_us(disk: &SimDisk, addr: SectorAddr) -> Micros {
    disk.position_cost_us(addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CrashPlan;

    fn sector_of(byte: u8) -> Vec<u8> {
        vec![byte; SECTOR_BYTES]
    }

    #[test]
    fn adjacent_writes_coalesce_into_one_transfer() {
        let mut d = SimDisk::tiny();
        let mut b = IoBatch::new();
        b.push(IoOp::Write {
            start: 20,
            data: sector_of(1),
        });
        b.push(IoOp::Write {
            start: 21,
            data: sector_of(2),
        });
        b.push(IoOp::Write {
            start: 22,
            data: sector_of(3),
        });
        execute(&mut d, IoPolicy::Cscan, &b).unwrap();
        let s = d.stats();
        assert_eq!(s.writes, 1, "three adjacent writes become one transfer");
        assert_eq!(s.sectors_written, 3);
        assert_eq!(d.peek_data(20).unwrap()[0], 1);
        assert_eq!(d.peek_data(21).unwrap()[0], 2);
        assert_eq!(d.peek_data(22).unwrap()[0], 3);
    }

    #[test]
    fn scattered_reads_return_submission_order_results() {
        let mut d = SimDisk::tiny();
        d.write(40, &sector_of(4)).unwrap();
        d.write(7, &sector_of(7)).unwrap();
        let mut b = IoBatch::new();
        let hi = b.push(IoOp::Read { start: 40, n: 1 });
        let lo = b.push(IoOp::Read { start: 7, n: 1 });
        let out = execute(&mut d, IoPolicy::Cscan, &b).unwrap();
        assert_eq!(out[hi].clone().into_data().unwrap()[0], 4);
        assert_eq!(out[lo].clone().into_data().unwrap()[0], 7);
    }

    #[test]
    fn barrier_orders_windows_under_crash() {
        // Window 1 writes a high address, window 2 a low one. C-SCAN
        // would visit the low address first if they shared a window; the
        // barrier must keep the high write strictly earlier, so a crash
        // before any sector completes leaves BOTH unwritten, and a crash
        // after one sector leaves exactly the high one written.
        let mut d = SimDisk::tiny();
        d.schedule_crash(CrashPlan {
            after_sector_writes: 1,
            damaged_tail: 0,
        });
        let mut b = IoBatch::new();
        b.push(IoOp::Write {
            start: 100,
            data: sector_of(9),
        });
        b.barrier();
        b.push(IoOp::Write {
            start: 3,
            data: sector_of(8),
        });
        assert!(execute(&mut d, IoPolicy::Cscan, &b).is_err());
        d.reboot();
        assert_eq!(d.peek_data(100).unwrap()[0], 9, "window 1 durable");
        assert!(d.peek_data(3).is_none(), "window 2 never started");
    }

    #[test]
    fn overlapping_writes_get_an_implicit_barrier() {
        let mut d = SimDisk::tiny();
        let mut b = IoBatch::new();
        b.push(IoOp::Write {
            start: 5,
            data: sector_of(1),
        });
        b.push(IoOp::Write {
            start: 5,
            data: sector_of(2),
        });
        assert_eq!(windows(&b).len(), 2);
        execute(&mut d, IoPolicy::Cscan, &b).unwrap();
        assert_eq!(d.peek_data(5).unwrap()[0], 2, "program order wins");
    }

    #[test]
    fn sweep_starts_at_rotationally_nearest_request() {
        // Head parks just past sector 5 (after reading 0..6). Requests at
        // sectors 2 and 8 on the same cylinder: ascending order would eat
        // a near-full revolution reaching 2 first; the rotation-aware
        // sweep grabs 8 on the fly and wraps to 2.
        let run = |policy: IoPolicy| {
            let mut d = SimDisk::tiny();
            d.read(0, 6).unwrap();
            let mut b = IoBatch::new();
            b.push(IoOp::Write {
                start: 2,
                data: sector_of(1),
            });
            b.push(IoOp::Write {
                start: 8,
                data: sector_of(2),
            });
            execute(&mut d, policy, &b).unwrap();
            d.stats().busy_us()
        };
        assert!(
            run(IoPolicy::Cscan) < run(IoPolicy::InOrder),
            "rotation-aware start must beat submission order here"
        );
    }

    #[test]
    fn in_order_policy_matches_direct_calls() {
        let mut direct = SimDisk::tiny();
        let mut batched = SimDisk::tiny();
        direct.write(10, &sector_of(1)).unwrap();
        direct.write(30, &sector_of(2)).unwrap();
        let d1 = direct.read(10, 1).unwrap();
        let mut b = IoBatch::new();
        b.push(IoOp::Write {
            start: 10,
            data: sector_of(1),
        });
        b.push(IoOp::Write {
            start: 30,
            data: sector_of(2),
        });
        let r = b.push(IoOp::Read { start: 10, n: 1 });
        let out = execute(&mut batched, IoPolicy::InOrder, &b).unwrap();
        assert_eq!(out[r].clone().into_data().unwrap(), d1);
        assert_eq!(direct.stats(), batched.stats());
        assert_eq!(direct.clock().now(), batched.clock().now());
    }

    #[test]
    fn mixed_kinds_do_not_coalesce() {
        let mut d = SimDisk::tiny();
        let mut b = IoBatch::new();
        b.push(IoOp::Write {
            start: 12,
            data: sector_of(1),
        });
        b.push(IoOp::WriteLabels {
            start: 13,
            labels: vec![Label::FREE],
            expected: None,
        });
        execute(&mut d, IoPolicy::Cscan, &b).unwrap();
        let s = d.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.label_ops, 1);
    }

    #[test]
    fn coalesced_label_reads_split_back_per_request() {
        let mut d = SimDisk::tiny();
        let l = Label::new(3, 1, crate::label::PageKind::Data);
        d.write_labels(16, &[l, l, l, l], None).unwrap();
        let mut b = IoBatch::new();
        let a = b.push(IoOp::ReadLabels { start: 16, n: 2 });
        let c = b.push(IoOp::ReadLabels { start: 18, n: 2 });
        let out = execute(&mut d, IoPolicy::Cscan, &b).unwrap();
        assert_eq!(
            d.stats().label_ops,
            2,
            "one setup write + one coalesced read"
        );
        assert_eq!(out[a].clone().into_labels().unwrap(), vec![l, l]);
        assert_eq!(out[c].clone().into_labels().unwrap(), vec![l, l]);
    }

    #[test]
    fn explicit_barriers_split_windows() {
        let mut b = IoBatch::new();
        b.barrier(); // Leading barrier: no-op.
        b.push(IoOp::Read { start: 0, n: 1 });
        b.push(IoOp::Read { start: 5, n: 1 });
        b.barrier();
        b.barrier(); // Double barrier: still one split.
        b.push(IoOp::Read { start: 9, n: 1 });
        assert_eq!(windows(&b), vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn execute_partial_isolates_bad_sector_in_coalesced_group() {
        let mut d = SimDisk::tiny();
        for a in 20..23 {
            d.write(a, &sector_of(a as u8)).unwrap();
        }
        d.damage_sector(21);
        let mut b = IoBatch::new();
        let r0 = b.push(IoOp::Read { start: 20, n: 1 });
        let r1 = b.push(IoOp::Read { start: 21, n: 1 });
        let r2 = b.push(IoOp::Read { start: 22, n: 1 });
        let out = execute_partial(&mut d, IoPolicy::Cscan, &b).unwrap();
        assert_eq!(
            out[r0].clone().into_output().unwrap().into_data().unwrap()[0],
            20
        );
        assert_eq!(out[r1].error(), Some(&DiskError::BadSector(21)));
        assert_eq!(
            out[r2].clone().into_output().unwrap().into_data().unwrap()[0],
            22
        );
    }

    #[test]
    fn execute_partial_skips_windows_after_a_failure() {
        let mut d = SimDisk::tiny();
        d.hard_damage_sector(40);
        let mut b = IoBatch::new();
        let w0 = b.push(IoOp::Write {
            start: 40,
            data: sector_of(1),
        });
        let w1 = b.push(IoOp::Write {
            start: 50,
            data: sector_of(2),
        });
        b.barrier();
        let w2 = b.push(IoOp::Write {
            start: 60,
            data: sector_of(3),
        });
        let out = execute_partial(&mut d, IoPolicy::Cscan, &b).unwrap();
        assert_eq!(out[w0].error(), Some(&DiskError::BadSector(40)));
        // Same window: still attempted.
        assert_eq!(out[w1], OpResult::Ok(IoOutput::Done));
        assert_eq!(d.peek_data(50).unwrap()[0], 2);
        // Post-barrier window: never started.
        assert_eq!(out[w2], OpResult::Skipped);
        assert!(d.peek_data(60).is_none());
    }

    #[test]
    fn execute_partial_mid_write_failure_keeps_executed_prefix() {
        let mut d = SimDisk::tiny();
        d.hard_damage_sector(31);
        let mut b = IoBatch::new();
        let w0 = b.push(IoOp::Write {
            start: 30,
            data: sector_of(7),
        });
        let w1 = b.push(IoOp::Write {
            start: 31,
            data: sector_of(8),
        });
        let out = execute_partial(&mut d, IoPolicy::Cscan, &b).unwrap();
        // The coalesced transfer failed at 31; the re-probe shows 30
        // succeeded and is durable.
        assert_eq!(out[w0], OpResult::Ok(IoOutput::Done));
        assert_eq!(out[w1].error(), Some(&DiskError::BadSector(31)));
        assert_eq!(d.peek_data(30).unwrap()[0], 7);
    }

    #[test]
    fn execute_partial_crash_still_aborts() {
        let mut d = SimDisk::tiny();
        d.schedule_crash(CrashPlan {
            after_sector_writes: 0,
            damaged_tail: 0,
        });
        let mut b = IoBatch::new();
        b.push(IoOp::Write {
            start: 5,
            data: sector_of(1),
        });
        assert_eq!(
            execute_partial(&mut d, IoPolicy::Cscan, &b),
            Err(DiskError::Crashed)
        );
    }

    #[test]
    fn execute_partial_all_ok_matches_execute() {
        let mut d1 = SimDisk::tiny();
        let mut d2 = SimDisk::tiny();
        let mut b = IoBatch::new();
        b.push(IoOp::Write {
            start: 10,
            data: sector_of(1),
        });
        b.barrier();
        b.push(IoOp::Read { start: 10, n: 1 });
        let full = execute(&mut d1, IoPolicy::Cscan, &b).unwrap();
        let partial = execute_partial(&mut d2, IoPolicy::Cscan, &b).unwrap();
        for (f, p) in full.into_iter().zip(partial) {
            assert_eq!(OpResult::Ok(f), p);
        }
        assert_eq!(d1.clock().now(), d2.clock().now());
    }

    #[test]
    fn empty_batch_is_fine() {
        let mut d = SimDisk::tiny();
        let b = IoBatch::new();
        assert!(b.is_empty());
        assert!(execute(&mut d, IoPolicy::Cscan, &b).unwrap().is_empty());
        assert_eq!(d.stats().total_ops(), 0);
    }
}
