//! The simulated disk itself.
//!
//! # Timing model
//!
//! Every operation charges time against the shared [`SimClock`]:
//!
//! * a **seek** if the target cylinder differs from the current one
//!   (short seeks within [`DiskTiming::short_seek_cylinders`] are cheaper
//!   and counted separately, as in the paper's §6 model);
//! * **rotational latency** until the first target sector arrives under the
//!   head — derived from the clock, so "read then immediately rewrite the
//!   same sectors" naturally costs a revolution minus the transfer, exactly
//!   the effect the paper's scripts model ("Write header labels:
//!   (revolution − 3 page transfers), 2 page transfers", §6);
//! * **transfer time** per sector.
//!
//! Track and cylinder boundaries inside a transfer are handled the way a
//! well-formatted drive of the era behaves: head switches within a cylinder
//! are hidden by format skew (electronic, fast), and track-to-track moves
//! charge a short seek which cylinder skew absorbs rotationally. The
//! angular-position bookkeeping ignores skew when computing latency for a
//! *new* operation; the error is bounded by one sector time and documented
//! here rather than modeled.
//!
//! # Failure model
//!
//! Per §5.3 of the paper: at most one failure at a time, damaging one or two
//! consecutive sectors. A scheduled crash ([`SimDisk::schedule_crash`])
//! fires after a chosen number of further sector writes and may leave up to
//! two trailing sectors detectably damaged; everything earlier in the write
//! is durable, everything later never happened. Reading a damaged sector
//! fails; rewriting it repairs it.

use crate::clock::{Micros, SimClock};
use crate::error::DiskError;
use crate::fault::FaultPlan;
use crate::geometry::DiskGeometry;
use crate::label::Label;
use crate::stats::DiskStats;
use crate::timing::DiskTiming;
use crate::{Result, SectorAddr, SECTOR_BYTES};

/// One sector's persistent state.
#[derive(Clone, Debug)]
struct SectorState {
    /// Sector contents; `None` means never written (reads as zeros).
    data: Option<Box<[u8; SECTOR_BYTES]>>,
    /// The Trident label plane.
    label: Label,
    /// Detectably damaged (torn write or injected flaw).
    damaged: bool,
    /// Latent flaw: fails on first touch, then behaves like `damaged`
    /// (a rewrite repairs it). See [`crate::fault::FaultPlan`].
    latent: bool,
    /// Pending transient read retries (each costs a revolution).
    transient_fails: u8,
    /// Grown defect: permanently dead; rewriting does not repair.
    hard_bad: bool,
}

impl Default for SectorState {
    fn default() -> Self {
        Self {
            data: None,
            label: Label::FREE,
            damaged: false,
            latent: false,
            transient_fails: 0,
            hard_bad: false,
        }
    }
}

/// A scheduled machine crash.
///
/// After `after_sector_writes` further sectors have been durably written,
/// the next sector write triggers the crash: up to `damaged_tail` sectors
/// (0, 1 or 2 — the paper's failure model) starting at the in-flight sector
/// are left detectably damaged, and all subsequent I/O fails with
/// [`DiskError::Crashed`] until [`SimDisk::reboot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPlan {
    /// Sector writes that still complete before the crash fires.
    pub after_sector_writes: u64,
    /// Trailing sectors left detectably damaged (0..=2).
    pub damaged_tail: u8,
}

/// The simulated disk.
#[derive(Clone, Debug)]
pub struct SimDisk {
    geometry: DiskGeometry,
    timing: DiskTiming,
    clock: SimClock,
    sectors: Vec<SectorState>,
    current_cylinder: u32,
    stats: DiskStats,
    crash: Option<CrashPlan>,
    crashed: bool,
    /// Optional region classification: `(start, end, tag)` ranges; each
    /// operation is attributed to the region holding its first sector.
    regions: Vec<(SectorAddr, SectorAddr, &'static str)>,
    region_ops: std::collections::HashMap<&'static str, u64>,
    /// When present, every durably completed sector write (data or label)
    /// is appended here. The replication tap drains this to mirror
    /// unlogged data-area writes to the replica.
    journal: Option<Vec<JournalEntry>>,
}

/// One durably completed sector write, as recorded by the write journal
/// (see [`SimDisk::enable_write_journal`]). A data write carries the new
/// sector image and, if the pass also rewrote the label, the new label; a
/// label-only write carries just the label.
#[derive(Clone, Debug)]
pub struct JournalEntry {
    /// Sector address written.
    pub addr: SectorAddr,
    /// New data contents, if the data field was rewritten.
    pub data: Option<Vec<u8>>,
    /// New label, if the label field was rewritten.
    pub label: Option<Label>,
}

impl SimDisk {
    /// Creates a blank disk with the given geometry and timing, charging
    /// time to `clock`.
    ///
    /// # Panics
    ///
    /// Panics if the timing's `sectors_per_track` disagrees with the
    /// geometry's.
    pub fn new(geometry: DiskGeometry, timing: DiskTiming, clock: SimClock) -> Self {
        assert_eq!(
            geometry.sectors_per_track, timing.sectors_per_track,
            "geometry and timing disagree on sectors per track"
        );
        let n = geometry.total_sectors() as usize;
        Self {
            geometry,
            timing,
            clock,
            sectors: vec![SectorState::default(); n],
            current_cylinder: 0,
            stats: DiskStats::default(),
            crash: None,
            crashed: false,
            regions: Vec::new(),
            region_ops: std::collections::HashMap::new(),
            journal: None,
        }
    }

    /// Convenience constructor: tiny test disk on a fresh clock.
    pub fn tiny() -> Self {
        Self::new(DiskGeometry::TINY, DiskTiming::TINY, SimClock::new())
    }

    /// Convenience constructor: the paper's ~300 MB Trident-class volume.
    pub fn trident_t300(clock: SimClock) -> Self {
        Self::new(DiskGeometry::TRIDENT_T300, DiskTiming::TRIDENT_T300, clock)
    }

    /// The disk's geometry.
    pub fn geometry(&self) -> &DiskGeometry {
        &self.geometry
    }

    /// The disk's timing parameters.
    pub fn timing(&self) -> &DiskTiming {
        &self.timing
    }

    /// A handle to the simulation clock.
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Resets the statistics counters (contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = DiskStats::default();
        self.region_ops.clear();
    }

    /// Installs region labels for per-region I/O accounting. Each
    /// operation is attributed to the region containing its first sector;
    /// unmatched addresses count under `"other"`.
    pub fn set_regions(&mut self, regions: Vec<(SectorAddr, SectorAddr, &'static str)>) {
        self.regions = regions;
        self.region_ops.clear();
    }

    /// Operations per region since the last reset.
    pub fn region_ops(&self) -> &std::collections::HashMap<&'static str, u64> {
        &self.region_ops
    }

    fn attribute(&mut self, addr: SectorAddr) {
        if self.regions.is_empty() {
            return;
        }
        let tag = self
            .regions
            .iter()
            .find(|(s, e, _)| (*s..*e).contains(&addr))
            .map(|(_, _, t)| *t)
            .unwrap_or("other");
        *self.region_ops.entry(tag).or_insert(0) += 1;
    }

    // ----- timing internals -------------------------------------------------

    /// Charges seek + rotational latency so the head is at the start of
    /// sector `addr`, ready to transfer.
    fn position_to(&mut self, addr: SectorAddr) {
        let chs = self.geometry.to_chs(addr);
        let distance = self.current_cylinder.abs_diff(chs.cylinder);
        if distance > 0 {
            let t = self.timing.seek_us(distance);
            if distance <= self.timing.short_seek_cylinders {
                self.stats.short_seeks += 1;
            } else {
                self.stats.seeks += 1;
            }
            self.stats.seek_us += t;
            self.clock.advance(t);
            self.current_cylinder = chs.cylinder;
        }
        // Rotational wait until the target sector's leading edge arrives.
        // The angular revolution is the sector time times the sector
        // count, so that a full track of transfers lands exactly back at
        // angle zero (integer sector times don't quite divide the
        // nominal revolution).
        let sector_us = self.timing.sector_us();
        let rev = sector_us * self.timing.sectors_per_track as Micros;
        let target_angle = chs.sector as Micros * sector_us;
        let now_angle = self.clock.now() % rev;
        let wait = (target_angle + rev - now_angle) % rev;
        // Waits of ≥ ¾ revolution are the paper's §6 "lost revolution":
        // the sector just went by and the platter must come all the way
        // around. Classified separately so schedulers get the credit.
        if wait * 4 >= rev * 3 {
            self.stats.lost_revolutions += 1;
            self.stats.lost_rev_us += wait;
        } else {
            self.stats.rotation_us += wait;
        }
        self.clock.advance(wait);
    }

    /// The cylinder the head currently sits on.
    pub fn head_cylinder(&self) -> u32 {
        self.current_cylinder
    }

    /// Estimates, without charging anything, the positioning cost (seek +
    /// rotational wait) of starting a transfer at `addr` right now. The
    /// rotational wait accounts for the platter angle *after* the seek
    /// completes, mirroring [`Self::position_to`] exactly. Schedulers use
    /// this to pick the rotationally closest request.
    pub fn position_cost_us(&self, addr: SectorAddr) -> Micros {
        let chs = self.geometry.to_chs(addr);
        let distance = self.current_cylinder.abs_diff(chs.cylinder);
        let seek = if distance > 0 {
            self.timing.seek_us(distance)
        } else {
            0
        };
        let sector_us = self.timing.sector_us();
        let rev = sector_us * self.timing.sectors_per_track as Micros;
        let target_angle = chs.sector as Micros * sector_us;
        let now_angle = (self.clock.now() + seek) % rev;
        let wait = (target_angle + rev - now_angle) % rev;
        seek + wait
    }

    /// Charges transfer time for one sector and handles track/cylinder
    /// crossings *before* the sector at `addr` is transferred.
    fn charge_transfer(&mut self, addr: SectorAddr, first: bool) {
        if !first {
            let chs = self.geometry.to_chs(addr);
            if chs.cylinder != self.current_cylinder {
                // Track-to-track seek; cylinder skew absorbs the rotational
                // realignment.
                let t = self.timing.short_seek_us;
                self.stats.short_seeks += 1;
                self.stats.seek_us += t;
                self.clock.advance(t);
                self.current_cylinder = chs.cylinder;
            }
            // Head switches within a cylinder are hidden by format skew.
        }
        let t = self.timing.sector_us();
        self.stats.transfer_us += t;
        self.clock.advance(t);
    }

    fn check_range(&self, start: SectorAddr, n: usize) -> Result<()> {
        if self.crashed {
            return Err(DiskError::Crashed);
        }
        let end = start as u64 + n as u64;
        if n == 0 || end > self.geometry.total_sectors() as u64 {
            return Err(DiskError::OutOfRange(start));
        }
        Ok(())
    }

    /// Returns `true` if the crash plan fired; damages up to
    /// `damaged_tail` sectors starting at `addr` (bounded by `op_end`).
    fn maybe_crash(&mut self, addr: SectorAddr, op_end: SectorAddr) -> bool {
        let Some(plan) = &mut self.crash else {
            return false;
        };
        if plan.after_sector_writes > 0 {
            plan.after_sector_writes -= 1;
            return false;
        }
        let tail = plan.damaged_tail.min(2) as u32;
        for a in addr..(addr + tail).min(op_end) {
            self.sectors[a as usize].damaged = true;
        }
        self.crash = None;
        self.crashed = true;
        true
    }

    // ----- fault internals ---------------------------------------------------

    /// Consumes any pending transient fault at `addr`: the controller
    /// rereads the sector on the next revolution(s), so each retry costs
    /// one full revolution, charged as a lost revolution.
    fn retry_transient(&mut self, addr: SectorAddr) {
        let fails = self.sectors[addr as usize].transient_fails.min(2);
        if fails == 0 {
            return;
        }
        self.sectors[addr as usize].transient_fails = 0;
        let rev = self.timing.sector_us() * self.timing.sectors_per_track as Micros;
        for _ in 0..fails {
            self.stats.lost_revolutions += 1;
            self.stats.lost_rev_us += rev;
            self.stats.transient_retries += 1;
            self.clock.advance(rev);
        }
    }

    /// Applies fault semantics as sector `addr` passes under the head on
    /// a read: fires latent flaws, charges transient retries. Returns
    /// `true` if the sector must be treated as damaged.
    fn fault_on_read(&mut self, addr: SectorAddr) -> bool {
        if self.sectors[addr as usize].hard_bad {
            self.stats.media_faults += 1;
            return true;
        }
        if self.sectors[addr as usize].latent {
            let s = &mut self.sectors[addr as usize];
            s.latent = false;
            s.damaged = true;
            self.stats.media_faults += 1;
            return true;
        }
        self.retry_transient(addr);
        self.sectors[addr as usize].damaged
    }

    /// Applies fault semantics for a write to sector `addr`: a grown
    /// defect rejects the write outright; a latent flaw is discovered by
    /// the write's verify pass (the write fails) but cleared, so a retry
    /// repairs the sector.
    fn fault_on_write(&mut self, addr: SectorAddr) -> Option<DiskError> {
        let s = &mut self.sectors[addr as usize];
        if s.hard_bad {
            self.stats.media_faults += 1;
            return Some(DiskError::BadSector(addr));
        }
        if s.latent {
            s.latent = false;
            s.damaged = true;
            self.stats.media_faults += 1;
            return Some(DiskError::BadSector(addr));
        }
        None
    }

    // ----- data I/O ---------------------------------------------------------

    /// Reads `n` sectors starting at `start`.
    ///
    /// Fails with [`DiskError::BadSector`] at the first damaged sector
    /// (time for the sectors scanned so far is still charged).
    pub fn read(&mut self, start: SectorAddr, n: usize) -> Result<Vec<u8>> {
        self.check_range(start, n)?;
        self.stats.reads += 1;
        self.attribute(start);
        self.position_to(start);
        let mut out = Vec::with_capacity(n * SECTOR_BYTES);
        for i in 0..n {
            let addr = start + i as u32;
            self.charge_transfer(addr, i == 0);
            self.stats.sectors_read += 1;
            if self.fault_on_read(addr) {
                return Err(DiskError::BadSector(addr));
            }
            match &self.sectors[addr as usize].data {
                Some(d) => out.extend_from_slice(&d[..]),
                None => out.extend_from_slice(&[0u8; SECTOR_BYTES]),
            }
        }
        Ok(out)
    }

    /// Reads `n` sectors, tolerating damage: damaged sectors read as zeros
    /// and are flagged in the returned mask. Used by recovery code that
    /// reconstructs from redundant copies.
    pub fn read_allow_damage(
        &mut self,
        start: SectorAddr,
        n: usize,
    ) -> Result<(Vec<u8>, Vec<bool>)> {
        self.check_range(start, n)?;
        self.stats.reads += 1;
        self.attribute(start);
        self.position_to(start);
        let mut out = Vec::with_capacity(n * SECTOR_BYTES);
        let mut mask = Vec::with_capacity(n);
        for i in 0..n {
            let addr = start + i as u32;
            self.charge_transfer(addr, i == 0);
            self.stats.sectors_read += 1;
            let dmg = self.fault_on_read(addr);
            mask.push(dmg);
            match (&self.sectors[addr as usize].data, dmg) {
                (Some(d), false) => out.extend_from_slice(&d[..]),
                _ => out.extend_from_slice(&[0u8; SECTOR_BYTES]),
            }
        }
        Ok((out, mask))
    }

    /// Reads `n` sectors, verifying each sector's label against
    /// `expected` first — the Trident microcode check CFS relies on (§2).
    pub fn read_checked(
        &mut self,
        start: SectorAddr,
        n: usize,
        expected: &[Label],
    ) -> Result<Vec<u8>> {
        if expected.len() != n {
            return Err(DiskError::BadRequest("one expected label per sector"));
        }
        self.check_range(start, n)?;
        self.stats.reads += 1;
        self.attribute(start);
        self.position_to(start);
        let mut out = Vec::with_capacity(n * SECTOR_BYTES);
        for (i, &want) in expected.iter().enumerate() {
            let addr = start + i as u32;
            self.charge_transfer(addr, i == 0);
            self.stats.sectors_read += 1;
            if self.fault_on_read(addr) {
                return Err(DiskError::BadSector(addr));
            }
            let s = &self.sectors[addr as usize];
            if s.label != want {
                return Err(DiskError::LabelMismatch {
                    addr,
                    expected: want,
                    found: s.label,
                });
            }
            match &s.data {
                Some(d) => out.extend_from_slice(&d[..]),
                None => out.extend_from_slice(&[0u8; SECTOR_BYTES]),
            }
        }
        Ok(out)
    }

    fn write_inner(
        &mut self,
        start: SectorAddr,
        data: &[u8],
        expected: Option<&[Label]>,
        new_labels: Option<&[Label]>,
    ) -> Result<()> {
        if !data.len().is_multiple_of(SECTOR_BYTES) {
            return Err(DiskError::BadRequest(
                "write length must be a whole number of sectors",
            ));
        }
        let n = data.len() / SECTOR_BYTES;
        if let Some(exp) = expected {
            if exp.len() != n {
                return Err(DiskError::BadRequest("one expected label per sector"));
            }
        }
        if let Some(labels) = new_labels {
            if labels.len() != n {
                return Err(DiskError::BadRequest("one new label per sector"));
            }
        }
        self.check_range(start, n)?;
        self.stats.writes += 1;
        self.attribute(start);
        self.position_to(start);
        let op_end = start + n as u32;
        for i in 0..n {
            let addr = start + i as u32;
            self.charge_transfer(addr, i == 0);
            // The label check happens as the sector passes under the head,
            // before its data field is rewritten.
            if let Some(exp) = expected {
                let found = self.sectors[addr as usize].label;
                if found != exp[i] {
                    return Err(DiskError::LabelMismatch {
                        addr,
                        expected: exp[i],
                        found,
                    });
                }
            }
            if let Some(e) = self.fault_on_write(addr) {
                // The write fails at the bad sector; everything before it
                // in this transfer is already durable.
                return Err(e);
            }
            if self.maybe_crash(addr, op_end) {
                return Err(DiskError::Crashed);
            }
            let s = &mut self.sectors[addr as usize];
            let mut buf = [0u8; SECTOR_BYTES];
            buf.copy_from_slice(&data[i * SECTOR_BYTES..(i + 1) * SECTOR_BYTES]);
            s.data = Some(Box::new(buf));
            s.damaged = false;
            if let Some(labels) = new_labels {
                s.label = labels[i];
            }
            self.stats.sectors_written += 1;
            if let Some(journal) = &mut self.journal {
                journal.push(JournalEntry {
                    addr,
                    data: Some(buf.to_vec()),
                    label: new_labels.map(|l| l[i]),
                });
            }
        }
        Ok(())
    }

    /// Writes whole sectors starting at `start`. Labels are untouched.
    pub fn write(&mut self, start: SectorAddr, data: &[u8]) -> Result<()> {
        self.write_inner(start, data, None, None)
    }

    /// Writes whole sectors, first verifying each sector's existing label
    /// (the CFS "check label then write data in the same pass" microcode
    /// operation).
    pub fn write_checked(
        &mut self,
        start: SectorAddr,
        data: &[u8],
        expected: &[Label],
    ) -> Result<()> {
        self.write_inner(start, data, Some(expected), None)
    }

    /// Writes whole sectors and their labels together (file allocation in
    /// CFS writes the label and data fields of a sector in one pass).
    pub fn write_with_labels(
        &mut self,
        start: SectorAddr,
        data: &[u8],
        labels: &[Label],
    ) -> Result<()> {
        self.write_inner(start, data, None, Some(labels))
    }

    // ----- label-plane I/O ---------------------------------------------------

    /// Reads the labels of `n` sectors. Costs the same as a data read of the
    /// same range (the labels pass under the head at the same speed).
    pub fn read_labels(&mut self, start: SectorAddr, n: usize) -> Result<Vec<Label>> {
        self.check_range(start, n)?;
        self.stats.label_ops += 1;
        self.attribute(start);
        self.position_to(start);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let addr = start + i as u32;
            self.charge_transfer(addr, i == 0);
            out.push(self.sectors[addr as usize].label);
        }
        Ok(out)
    }

    /// Rewrites the labels of `n` sectors, optionally verifying the old
    /// labels first. Data fields are untouched. This is how CFS claims and
    /// frees sectors.
    pub fn write_labels(
        &mut self,
        start: SectorAddr,
        labels: &[Label],
        expected: Option<&[Label]>,
    ) -> Result<()> {
        let n = labels.len();
        if expected.is_some_and(|exp| exp.len() != n) {
            return Err(DiskError::BadRequest("one expected label per sector"));
        }
        self.check_range(start, n)?;
        self.stats.label_ops += 1;
        self.attribute(start);
        self.position_to(start);
        let op_end = start + n as u32;
        for i in 0..n {
            let addr = start + i as u32;
            self.charge_transfer(addr, i == 0);
            if let Some(exp) = expected {
                let found = self.sectors[addr as usize].label;
                if found != exp[i] {
                    return Err(DiskError::LabelMismatch {
                        addr,
                        expected: exp[i],
                        found,
                    });
                }
            }
            if self.maybe_crash(addr, op_end) {
                return Err(DiskError::Crashed);
            }
            self.sectors[addr as usize].label = labels[i];
            self.stats.sectors_written += 1;
            if let Some(journal) = &mut self.journal {
                journal.push(JournalEntry {
                    addr,
                    data: None,
                    label: Some(labels[i]),
                });
            }
        }
        Ok(())
    }

    // ----- write journal and replica forking ----------------------------------

    /// Starts recording every durably completed sector write (data and
    /// label passes) into an in-memory journal. Replication taps this to
    /// mirror unlogged data-area writes; see [`Self::drain_write_journal`].
    pub fn enable_write_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(Vec::new());
        }
    }

    /// Takes the accumulated [`JournalEntry`] list, leaving the journal
    /// enabled and empty. Returns an empty vec when journaling is off.
    pub fn drain_write_journal(&mut self) -> Vec<JournalEntry> {
        match &mut self.journal {
            Some(j) => std::mem::take(j),
            None => Vec::new(),
        }
    }

    /// Whether the write journal is enabled.
    pub fn write_journal_enabled(&self) -> bool {
        self.journal.is_some()
    }

    /// Clones this disk's *logical* contents (sector data and labels) onto
    /// fresh media driven by an independent `clock`. Media-fault state
    /// (damage, latent and grown defects), pending crash plans, statistics
    /// and the write journal do NOT carry over: a full-state transfer ships
    /// bytes, not the donor's physical flaws. This is how a replica is
    /// seeded and how the lapped-log full-transfer fallback works.
    pub fn fork_with_clock(&self, clock: SimClock) -> SimDisk {
        let mut fork = SimDisk::new(self.geometry, self.timing, clock);
        for (i, s) in self.sectors.iter().enumerate() {
            if s.data.is_some() || s.label != Label::FREE {
                let t = &mut fork.sectors[i];
                t.data = s.data.clone();
                t.label = s.label;
            }
        }
        fork.regions = self.regions.clone();
        fork
    }

    /// Number of sectors whose data field has ever been written (the
    /// payload a full-state transfer must ship).
    pub fn materialized_sectors(&self) -> u32 {
        self.sectors.iter().filter(|s| s.data.is_some()).count() as u32
    }

    // ----- faults and crashes -------------------------------------------------

    /// Schedules a crash (see [`CrashPlan`]).
    pub fn schedule_crash(&mut self, plan: CrashPlan) {
        self.crash = Some(plan);
    }

    /// Crashes the machine immediately (clean power-fail between I/Os).
    pub fn crash_now(&mut self) {
        self.crash = None;
        self.crashed = true;
    }

    /// Returns `true` if a crash has fired and the disk is offline.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Brings the disk back online after a crash. Persistent state
    /// (sector data, labels, damage) survives; the head is left at
    /// cylinder 0 as after a power cycle.
    pub fn reboot(&mut self) {
        self.crashed = false;
        self.crash = None;
        self.current_cylinder = 0;
    }

    /// Marks a sector as detectably damaged (media flaw injection).
    pub fn damage_sector(&mut self, addr: SectorAddr) {
        self.sectors[addr as usize].damaged = true;
    }

    /// Marks a sector as a grown defect: permanently dead, rewriting does
    /// not repair it (the remap-to-spare case).
    pub fn hard_damage_sector(&mut self, addr: SectorAddr) {
        self.sectors[addr as usize].hard_bad = true;
    }

    /// Installs a media [`FaultPlan`]. Out-of-range addresses are ignored
    /// rather than rejected, so campaign generators can over-approximate.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        for &a in &plan.latent {
            if let Some(s) = self.sectors.get_mut(a as usize) {
                s.latent = true;
            }
        }
        for &(a, n) in &plan.transient {
            if let Some(s) = self.sectors.get_mut(a as usize) {
                s.transient_fails = n.min(2);
            }
        }
        for &a in &plan.grown {
            if let Some(s) = self.sectors.get_mut(a as usize) {
                s.hard_bad = true;
            }
        }
    }

    /// Simulates a wild write: sector data is overwritten out-of-band
    /// (no timing, no stats, label untouched) — the kind of memory-smash
    /// corruption the label plane exists to catch.
    pub fn wild_write(&mut self, addr: SectorAddr, byte: u8) {
        let s = &mut self.sectors[addr as usize];
        s.data = Some(Box::new([byte; SECTOR_BYTES]));
    }

    /// Flips one payload byte out-of-band (no timing, no stats, label and
    /// damage flags untouched) — single-byte rot for corrupted-image
    /// campaigns. A sector that was never written has no payload to rot;
    /// the call is then a no-op.
    pub fn corrupt_byte(&mut self, addr: SectorAddr, offset: usize, xor: u8) {
        if let Some(s) = self.sectors.get_mut(addr as usize) {
            if let Some(d) = s.data.as_mut() {
                d[offset % SECTOR_BYTES] ^= xor;
            }
        }
    }

    /// Overwrites a sector's label out-of-band (corrupted-image
    /// campaigns): the self-certifying plane itself goes bad, the case
    /// the scavenger must survive without trusting anything else.
    pub fn corrupt_label(&mut self, addr: SectorAddr, label: Label) {
        if let Some(s) = self.sectors.get_mut(addr as usize) {
            s.label = label;
        }
    }

    // ----- test/peek helpers ---------------------------------------------------

    /// Reads a sector's contents without timing or stats (test helper).
    pub fn peek_data(&self, addr: SectorAddr) -> Option<&[u8]> {
        self.sectors[addr as usize].data.as_deref().map(|d| &d[..])
    }

    /// Reads a sector's label without timing or stats (test helper, and
    /// the scavenger's per-track bulk scan uses it via
    /// [`Self::read_labels`] instead).
    pub fn peek_label(&self, addr: SectorAddr) -> Label {
        self.sectors[addr as usize].label
    }

    /// Returns whether a sector is damaged, without timing or stats.
    pub fn peek_damaged(&self, addr: SectorAddr) -> bool {
        self.sectors[addr as usize].damaged
    }

    /// Returns whether a sector is a grown (permanent) defect, without
    /// timing or stats.
    pub fn peek_hard_bad(&self, addr: SectorAddr) -> bool {
        self.sectors[addr as usize].hard_bad
    }

    /// Restores one sector's persistent state (image loading).
    pub(crate) fn restore_sector(
        &mut self,
        addr: SectorAddr,
        data: Option<Vec<u8>>,
        label: Label,
        damaged: bool,
    ) {
        let s = &mut self.sectors[addr as usize];
        s.data = data.map(|d| {
            let mut buf = [0u8; SECTOR_BYTES];
            buf.copy_from_slice(&d);
            Box::new(buf)
        });
        s.label = label;
        s.damaged = damaged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::PageKind;

    fn sector_of(byte: u8) -> Vec<u8> {
        vec![byte; SECTOR_BYTES]
    }

    #[test]
    fn blank_disk_reads_zeros() {
        let mut d = SimDisk::tiny();
        let data = d.read(0, 2).unwrap();
        assert!(data.iter().all(|&b| b == 0));
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut d = SimDisk::tiny();
        let mut payload = sector_of(0xAB);
        payload.extend_from_slice(&sector_of(0xCD));
        d.write(10, &payload).unwrap();
        assert_eq!(d.read(10, 2).unwrap(), payload);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut d = SimDisk::tiny();
        let total = d.geometry().total_sectors();
        assert!(matches!(d.read(total, 1), Err(DiskError::OutOfRange(_))));
        assert!(matches!(
            d.read(total - 1, 2),
            Err(DiskError::OutOfRange(_))
        ));
        assert!(matches!(d.read(0, 0), Err(DiskError::OutOfRange(_))));
    }

    #[test]
    fn stats_count_ops_and_sectors() {
        let mut d = SimDisk::tiny();
        d.write(0, &sector_of(1)).unwrap();
        d.read(0, 1).unwrap();
        d.read_labels(0, 4).unwrap();
        let s = d.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.label_ops, 1);
        assert_eq!(s.sectors_written, 1);
        assert_eq!(s.sectors_read, 1);
        assert_eq!(s.total_ops(), 3);
    }

    #[test]
    fn io_advances_clock() {
        let mut d = SimDisk::tiny();
        let t0 = d.clock().now();
        d.read(100, 4).unwrap();
        assert!(d.clock().now() > t0);
    }

    #[test]
    fn same_cylinder_access_does_not_seek() {
        let mut d = SimDisk::tiny();
        d.read(0, 1).unwrap();
        let before = d.stats();
        d.read(2, 1).unwrap(); // Same cylinder 0.
        let delta = d.stats().since(&before);
        assert_eq!(delta.seeks + delta.short_seeks, 0);
        assert_eq!(delta.seek_us, 0);
    }

    #[test]
    fn cross_cylinder_access_seeks() {
        let mut d = SimDisk::tiny();
        d.read(0, 1).unwrap();
        let spc = d.geometry().sectors_per_cylinder();
        let before = d.stats();
        d.read(spc * 40, 1).unwrap(); // Cylinder 40: a long seek.
        let delta = d.stats().since(&before);
        assert_eq!(delta.seeks, 1);
        assert!(delta.seek_us > 0);
    }

    #[test]
    fn short_seek_classified_separately() {
        let mut d = SimDisk::tiny();
        d.read(0, 1).unwrap();
        let spc = d.geometry().sectors_per_cylinder();
        let before = d.stats();
        d.read(spc * 2, 1).unwrap(); // Two cylinders away.
        let delta = d.stats().since(&before);
        assert_eq!(delta.short_seeks, 1);
        assert_eq!(delta.seeks, 0);
        assert_eq!(delta.seek_us, d.timing().short_seek_us);
    }

    #[test]
    fn read_then_rewrite_costs_nearly_a_revolution() {
        // The paper's script: after reading sectors s..s+3, rewriting s
        // must wait (revolution − 3 transfers).
        let mut d = SimDisk::tiny();
        d.read(0, 3).unwrap();
        let before = d.stats();
        d.write(0, &sector_of(9).repeat(2)).unwrap();
        let delta = d.stats().since(&before);
        // The angular revolution: sector time × sectors per track.
        let rev = d.timing().sector_us() * d.timing().sectors_per_track as u64;
        let transfer3 = 3 * d.timing().sector_us();
        // 13/16 of a revolution: over the ¾ threshold, so it is booked
        // as a lost revolution rather than ordinary rotational latency.
        assert_eq!(delta.lost_rev_us, rev - transfer3);
        assert_eq!(delta.lost_revolutions, 1);
        assert_eq!(delta.rotation_us, 0);
    }

    #[test]
    fn short_rotational_wait_is_not_a_lost_revolution() {
        let mut d = SimDisk::tiny();
        d.read(0, 1).unwrap();
        let before = d.stats();
        d.read(3, 1).unwrap(); // Two sectors ahead of the head: short wait.
        let delta = d.stats().since(&before);
        assert_eq!(delta.rotation_us, 2 * d.timing().sector_us());
        assert_eq!(delta.lost_revolutions, 0);
        assert_eq!(delta.lost_rev_us, 0);
    }

    #[test]
    fn position_cost_estimate_matches_charged_cost() {
        let mut d = SimDisk::tiny();
        d.read(0, 1).unwrap();
        let spc = d.geometry().sectors_per_cylinder();
        for addr in [3u32, 9, spc * 7 + 5, spc * 40 + 1] {
            let est = d.position_cost_us(addr);
            let before = d.stats();
            let t0 = d.clock().now();
            d.read(addr, 1).unwrap();
            let charged = d.clock().now() - t0 - d.timing().sector_us();
            assert_eq!(est, charged, "estimate for sector {addr}");
            let delta = d.stats().since(&before);
            assert_eq!(est, delta.seek_us + delta.rotation_us + delta.lost_rev_us);
        }
    }

    #[test]
    fn sequential_multi_sector_transfer_has_no_rotation_gap() {
        let mut d = SimDisk::tiny();
        d.read(0, 1).unwrap();
        let before = d.stats();
        // Sector 1 is the very next sector under the head.
        d.read(1, 4).unwrap();
        let delta = d.stats().since(&before);
        assert_eq!(delta.rotation_us, 0);
        assert_eq!(delta.transfer_us, 4 * d.timing().sector_us());
    }

    #[test]
    fn transfer_across_cylinder_charges_track_to_track() {
        let mut d = SimDisk::tiny();
        let spc = d.geometry().sectors_per_cylinder();
        let start = spc - 2; // Last two sectors of cylinder 0.
        let before = d.stats();
        d.write(start, &sector_of(5).repeat(4)).unwrap(); // Crosses into cyl 1.
        let delta = d.stats().since(&before);
        assert_eq!(delta.short_seeks, 1);
    }

    #[test]
    fn label_roundtrip_and_check() {
        let mut d = SimDisk::tiny();
        let l = Label::new(42, 0, PageKind::Data);
        d.write_labels(5, &[l], Some(&[Label::FREE])).unwrap();
        assert_eq!(d.read_labels(5, 1).unwrap(), vec![l]);
        // Checked read with the right label succeeds...
        d.write(5, &sector_of(1)).unwrap();
        assert!(d.read_checked(5, 1, &[l]).is_ok());
        // ...and with the wrong label fails.
        let wrong = Label::new(43, 0, PageKind::Data);
        assert!(matches!(
            d.read_checked(5, 1, &[wrong]),
            Err(DiskError::LabelMismatch { addr: 5, .. })
        ));
    }

    #[test]
    fn write_labels_verifies_old_labels() {
        let mut d = SimDisk::tiny();
        let claimed = Label::new(1, 0, PageKind::Data);
        d.write_labels(3, &[claimed], Some(&[Label::FREE])).unwrap();
        // A second claim of the same sector must fail the free check.
        assert!(matches!(
            d.write_labels(3, &[Label::new(2, 0, PageKind::Data)], Some(&[Label::FREE])),
            Err(DiskError::LabelMismatch { .. })
        ));
    }

    #[test]
    fn wild_write_caught_by_label_check_only() {
        let mut d = SimDisk::tiny();
        let l = Label::new(9, 0, PageKind::Data);
        d.write_with_labels(8, &sector_of(7), &[l]).unwrap();
        d.wild_write(8, 0xFF);
        // Unchecked read returns garbage silently.
        assert_eq!(d.read(8, 1).unwrap()[0], 0xFF);
        // The label is *untouched* by the wild write, so a checked read
        // still passes label verification — labels catch wild writes that
        // land on the wrong sector (the common case), which the next test
        // shows.
        assert!(d.read_checked(8, 1, &[l]).is_ok());
    }

    #[test]
    fn misdirected_io_caught_by_label_check() {
        let mut d = SimDisk::tiny();
        let mine = Label::new(9, 0, PageKind::Data);
        let theirs = Label::new(10, 0, PageKind::Data);
        d.write_with_labels(8, &sector_of(7), &[theirs]).unwrap();
        // Software bug: we think sector 8 belongs to file 9.
        assert!(matches!(
            d.write_checked(8, &sector_of(1), &[mine]),
            Err(DiskError::LabelMismatch { .. })
        ));
        // The data was NOT overwritten: the check precedes the write.
        assert_eq!(d.read(8, 1).unwrap()[0], 7);
    }

    #[test]
    fn damaged_sector_fails_reads_until_rewritten() {
        let mut d = SimDisk::tiny();
        d.write(4, &sector_of(3)).unwrap();
        d.damage_sector(4);
        assert!(matches!(d.read(4, 1), Err(DiskError::BadSector(4))));
        let (data, mask) = d.read_allow_damage(4, 1).unwrap();
        assert!(mask[0]);
        assert!(data.iter().all(|&b| b == 0));
        d.write(4, &sector_of(6)).unwrap();
        assert_eq!(d.read(4, 1).unwrap()[0], 6);
    }

    #[test]
    fn scheduled_crash_tears_write_per_failure_model() {
        let mut d = SimDisk::tiny();
        // Crash after 2 more sector writes, damaging 1 trailing sector.
        d.schedule_crash(CrashPlan {
            after_sector_writes: 2,
            damaged_tail: 1,
        });
        let err = d.write(0, &sector_of(0xEE).repeat(5)).unwrap_err();
        assert_eq!(err, DiskError::Crashed);
        assert!(d.is_crashed());
        d.reboot();
        // Sectors 0 and 1 durable, 2 damaged, 3 and 4 never written.
        assert_eq!(d.read(0, 1).unwrap()[0], 0xEE);
        assert_eq!(d.read(1, 1).unwrap()[0], 0xEE);
        assert!(matches!(d.read(2, 1), Err(DiskError::BadSector(2))));
        assert_eq!(d.read(3, 1).unwrap()[0], 0);
        assert_eq!(d.read(4, 1).unwrap()[0], 0);
    }

    #[test]
    fn crash_with_two_damaged_tail_sectors() {
        let mut d = SimDisk::tiny();
        d.schedule_crash(CrashPlan {
            after_sector_writes: 0,
            damaged_tail: 2,
        });
        assert!(d.write(10, &sector_of(1).repeat(4)).is_err());
        d.reboot();
        assert!(d.peek_damaged(10));
        assert!(d.peek_damaged(11));
        assert!(!d.peek_damaged(12));
    }

    #[test]
    fn crash_damage_bounded_by_op_end() {
        let mut d = SimDisk::tiny();
        d.schedule_crash(CrashPlan {
            after_sector_writes: 0,
            damaged_tail: 2,
        });
        assert!(d.write(10, &sector_of(1)).is_err());
        d.reboot();
        assert!(d.peek_damaged(10));
        assert!(!d.peek_damaged(11)); // Outside the op: untouched.
    }

    #[test]
    fn io_after_crash_fails_until_reboot() {
        let mut d = SimDisk::tiny();
        d.crash_now();
        assert!(matches!(d.read(0, 1), Err(DiskError::Crashed)));
        assert!(matches!(d.write(0, &sector_of(0)), Err(DiskError::Crashed)));
        d.reboot();
        assert!(d.read(0, 1).is_ok());
    }

    #[test]
    fn reboot_homes_the_head() {
        let mut d = SimDisk::tiny();
        let spc = d.geometry().sectors_per_cylinder();
        d.read(spc * 30, 1).unwrap();
        d.crash_now();
        d.reboot();
        let before = d.stats();
        d.read(0, 1).unwrap(); // Head is home: no seek.
        assert_eq!(d.stats().since(&before).seek_us, 0);
    }

    #[test]
    fn region_accounting_attributes_ops() {
        let mut d = SimDisk::tiny();
        d.set_regions(vec![(0, 100, "meta"), (100, 2048, "data")]);
        d.write(5, &sector_of(1)).unwrap();
        d.write(200, &sector_of(2)).unwrap();
        d.read(210, 2).unwrap();
        d.read_labels(50, 2).unwrap();
        assert_eq!(d.region_ops()["meta"], 2);
        assert_eq!(d.region_ops()["data"], 2);
        d.reset_stats();
        assert!(d.region_ops().is_empty());
    }

    #[test]
    fn latent_fault_fires_once_then_rewrite_repairs() {
        let mut d = SimDisk::tiny();
        d.write(20, &sector_of(9)).unwrap();
        d.set_fault_plan(&FaultPlan::none().with_latent(20));
        // First touch discovers the flaw...
        assert!(matches!(d.read(20, 1), Err(DiskError::BadSector(20))));
        assert!(d.peek_damaged(20));
        // ...and from then on it is an ordinary damaged sector: a rewrite
        // repairs it.
        d.write(20, &sector_of(7)).unwrap();
        assert_eq!(d.read(20, 1).unwrap()[0], 7);
        assert_eq!(d.stats().media_faults, 1);
    }

    #[test]
    fn latent_fault_discovered_by_write_fails_then_retry_succeeds() {
        let mut d = SimDisk::tiny();
        d.set_fault_plan(&FaultPlan::none().with_latent(21));
        assert!(matches!(
            d.write(21, &sector_of(1)),
            Err(DiskError::BadSector(21))
        ));
        // The flaw is now known; the retry repairs the sector.
        d.write(21, &sector_of(2)).unwrap();
        assert_eq!(d.read(21, 1).unwrap()[0], 2);
    }

    #[test]
    fn latent_fault_mid_transfer_keeps_prefix_durable() {
        let mut d = SimDisk::tiny();
        d.set_fault_plan(&FaultPlan::none().with_latent(12));
        assert!(matches!(
            d.write(10, &sector_of(4).repeat(4)),
            Err(DiskError::BadSector(12))
        ));
        assert_eq!(d.read(10, 2).unwrap()[0], 4); // Prefix durable.
        assert_eq!(d.peek_data(13), None); // Suffix never written.
    }

    #[test]
    fn transient_fault_retries_invisibly_but_charges_revolutions() {
        let mut d = SimDisk::tiny();
        d.write(30, &sector_of(3)).unwrap();
        d.set_fault_plan(&FaultPlan::none().with_transient(30, 2));
        let before = d.stats();
        assert_eq!(d.read(30, 1).unwrap()[0], 3); // Succeeds transparently.
        let delta = d.stats().since(&before);
        let rev = d.timing().sector_us() * d.timing().sectors_per_track as u64;
        assert_eq!(delta.transient_retries, 2);
        assert!(delta.lost_rev_us >= 2 * rev);
        // The fault is consumed: the next read is clean.
        let before = d.stats();
        d.read(30, 1).unwrap();
        assert_eq!(d.stats().since(&before).transient_retries, 0);
    }

    #[test]
    fn grown_defect_fails_reads_and_writes_permanently() {
        let mut d = SimDisk::tiny();
        d.write(40, &sector_of(1)).unwrap();
        d.set_fault_plan(&FaultPlan::none().with_grown(40));
        assert!(matches!(d.read(40, 1), Err(DiskError::BadSector(40))));
        // Rewriting does NOT repair a grown defect.
        assert!(matches!(
            d.write(40, &sector_of(2)),
            Err(DiskError::BadSector(40))
        ));
        assert!(matches!(d.read(40, 1), Err(DiskError::BadSector(40))));
        assert!(d.peek_hard_bad(40));
        // Damage-tolerant reads mask it instead of failing.
        let (_, mask) = d.read_allow_damage(40, 1).unwrap();
        assert!(mask[0]);
    }

    #[test]
    fn fault_plan_out_of_range_addresses_ignored() {
        let mut d = SimDisk::tiny();
        let total = d.geometry().total_sectors();
        d.set_fault_plan(&FaultPlan::none().with_latent(total + 5).with_grown(total));
        assert!(d.read(0, 1).is_ok());
    }

    #[test]
    fn clean_crash_boundary_with_zero_tail() {
        let mut d = SimDisk::tiny();
        d.schedule_crash(CrashPlan {
            after_sector_writes: 1,
            damaged_tail: 0,
        });
        assert!(d.write(0, &sector_of(5).repeat(3)).is_err());
        d.reboot();
        assert_eq!(d.read(0, 1).unwrap()[0], 5);
        assert!(!d.peek_damaged(1));
        assert_eq!(d.read(1, 1).unwrap()[0], 0); // Never written.
    }
}
