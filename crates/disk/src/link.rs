//! A simulated replication link between a primary and a replica machine.
//!
//! The log-shipping subsystem (`cedar_fsd::repl`) streams sealed log
//! records and data-area writes over this link. Like [`crate::disk`], it
//! is a deterministic model, not a socket: a send is costed in simulated
//! microseconds (propagation latency plus serialization at the configured
//! bandwidth), and faults — message drops, timed partition windows, a
//! manual "pull the cable" switch — are injected from a [`LinkPlan`] the
//! same way media faults come from a [`crate::FaultPlan`].
//!
//! The link never advances any clock itself. [`Link::send`] returns the
//! delivery delay relative to the caller-supplied `now`; the replication
//! driver owns the decision of which simulated clock to charge it to.

use crate::clock::Micros;

/// Errors a [`Link::send`] can produce. All of them are *transient* from
/// the caller's point of view (retry may succeed); the filesystem layer
/// classifies them as retryable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkError {
    /// The link is partitioned (a [`LinkPlan::partitions`] window covers
    /// `now`, or [`Link::force_down`] was called and not yet healed).
    Down,
    /// The message was silently dropped in flight ([`LinkPlan::drop_sends`]
    /// named this send). The sender learns of it only by ack timeout.
    Dropped,
    /// The transfer could not complete within [`LinkPlan::timeout_us`].
    Timeout,
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Down => write!(f, "link down (partition)"),
            Self::Dropped => write!(f, "message dropped in flight"),
            Self::Timeout => write!(f, "link send timed out"),
        }
    }
}

impl std::error::Error for LinkError {}

/// Declarative fault and performance plan for a [`Link`].
#[derive(Clone, Debug, Default)]
pub struct LinkPlan {
    /// One-way propagation latency charged to every send.
    pub latency_us: Micros,
    /// Serialization bandwidth in bytes per simulated second; `0` means
    /// unlimited (latency-only model).
    pub bytes_per_sec: u64,
    /// Zero-based send indices that are silently dropped in flight.
    pub drop_sends: Vec<u64>,
    /// Half-open `[start, end)` windows of simulated time during which the
    /// link is partitioned and every send fails with [`LinkError::Down`].
    pub partitions: Vec<(Micros, Micros)>,
    /// If nonzero, a send whose total delivery delay would exceed this
    /// fails with [`LinkError::Timeout`] instead of completing.
    pub timeout_us: Micros,
}

impl LinkPlan {
    /// A latency-only plan with unlimited bandwidth and no faults.
    pub fn with_latency(latency_us: Micros) -> Self {
        Self {
            latency_us,
            ..Self::default()
        }
    }
}

/// Cumulative link statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Sends attempted (including failed ones).
    pub sends: u64,
    /// Bytes successfully delivered.
    pub bytes: u64,
    /// Sends lost to [`LinkError::Dropped`].
    pub dropped: u64,
    /// Sends rejected with [`LinkError::Down`].
    pub down_rejects: u64,
    /// Sends rejected with [`LinkError::Timeout`].
    pub timeouts: u64,
}

/// The simulated link itself: a [`LinkPlan`] plus running state.
#[derive(Clone, Debug)]
pub struct Link {
    plan: LinkPlan,
    /// Manual partition switch ([`Self::force_down`] / [`Self::heal`]).
    forced_down: bool,
    /// Simulated time at which the previous transfer finishes serializing;
    /// a new send queues behind it (the link is a single pipe).
    busy_until: Micros,
    stats: LinkStats,
}

impl Link {
    /// Creates a link governed by `plan`.
    pub fn new(plan: LinkPlan) -> Self {
        Self {
            plan,
            forced_down: false,
            busy_until: 0,
            stats: LinkStats::default(),
        }
    }

    /// Replaces the fault plan (running state is kept).
    pub fn set_plan(&mut self, plan: LinkPlan) {
        self.plan = plan;
    }

    /// Manually partitions the link until [`Self::heal`].
    pub fn force_down(&mut self) {
        self.forced_down = true;
    }

    /// Clears a manual partition. Timed [`LinkPlan::partitions`] windows
    /// still apply.
    pub fn heal(&mut self) {
        self.forced_down = false;
    }

    /// Whether the link is partitioned at simulated time `now`.
    pub fn is_down(&self, now: Micros) -> bool {
        self.forced_down
            || self
                .plan
                .partitions
                .iter()
                .any(|&(start, end)| now >= start && now < end)
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Attempts to deliver `bytes` at simulated time `now`. On success,
    /// returns the delivery delay in microseconds *relative to `now`*
    /// (queueing behind an in-flight transfer, plus serialization at the
    /// configured bandwidth, plus propagation latency). The caller decides
    /// which clock, if any, to charge.
    pub fn send(&mut self, now: Micros, bytes: usize) -> Result<Micros, LinkError> {
        self.stats.sends += 1;
        let idx = self.stats.sends - 1;
        if self.is_down(now) {
            self.stats.down_rejects += 1;
            return Err(LinkError::Down);
        }
        // `bytes_per_sec == 0` means unlimited bandwidth: zero transfer time.
        let xfer = (bytes as u64)
            .saturating_mul(1_000_000)
            .checked_div(self.plan.bytes_per_sec)
            .unwrap_or(0);
        let start = self.busy_until.max(now);
        let done = start + xfer;
        let delay = (done - now) + self.plan.latency_us;
        if self.plan.timeout_us != 0 && delay > self.plan.timeout_us {
            self.stats.timeouts += 1;
            return Err(LinkError::Timeout);
        }
        if self.plan.drop_sends.contains(&idx) {
            // The bytes left the sender (and occupy the pipe) but never
            // arrive; the sender only learns via its own ack timeout.
            self.busy_until = done;
            self.stats.dropped += 1;
            return Err(LinkError::Dropped);
        }
        self.busy_until = done;
        self.stats.bytes += bytes as u64;
        Ok(delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_only_send_costs_latency() {
        let mut link = Link::new(LinkPlan::with_latency(250));
        assert_eq!(link.send(1_000, 4096), Ok(250));
        assert_eq!(link.stats().bytes, 4096);
    }

    #[test]
    fn bandwidth_serializes_back_to_back_sends() {
        let mut link = Link::new(LinkPlan {
            latency_us: 100,
            bytes_per_sec: 1_000_000, // 1 byte/µs
            ..LinkPlan::default()
        });
        // 5000 bytes = 5000 µs of serialization.
        assert_eq!(link.send(0, 5000), Ok(5100));
        // Second send at t=0 queues behind the first: 5000 + 5000 + 100.
        assert_eq!(link.send(0, 5000), Ok(10_100));
        // A send issued after the pipe drains pays no queueing.
        assert_eq!(link.send(20_000, 5000), Ok(5100));
    }

    #[test]
    fn partition_window_rejects_then_heals() {
        let mut link = Link::new(LinkPlan {
            partitions: vec![(1_000, 2_000)],
            ..LinkPlan::default()
        });
        assert_eq!(link.send(500, 10), Ok(0));
        assert_eq!(link.send(1_500, 10), Err(LinkError::Down));
        assert_eq!(link.send(2_000, 10), Ok(0));
        assert_eq!(link.stats().down_rejects, 1);
    }

    #[test]
    fn forced_down_until_heal() {
        let mut link = Link::new(LinkPlan::default());
        link.force_down();
        assert_eq!(link.send(0, 1), Err(LinkError::Down));
        link.heal();
        assert_eq!(link.send(0, 1), Ok(0));
    }

    #[test]
    fn drop_plan_loses_named_send() {
        let mut link = Link::new(LinkPlan {
            drop_sends: vec![1],
            ..LinkPlan::default()
        });
        assert_eq!(link.send(0, 8), Ok(0));
        assert_eq!(link.send(0, 8), Err(LinkError::Dropped));
        assert_eq!(link.send(0, 8), Ok(0));
        let s = link.stats();
        assert_eq!((s.sends, s.dropped), (3, 1));
    }

    #[test]
    fn timeout_fires_on_oversized_transfer() {
        let mut link = Link::new(LinkPlan {
            bytes_per_sec: 1_000, // 1 byte/ms
            timeout_us: 1_000_000,
            ..LinkPlan::default()
        });
        // 2000 bytes = 2 s of serialization > 1 s timeout.
        assert_eq!(link.send(0, 2000), Err(LinkError::Timeout));
        assert_eq!(link.stats().timeouts, 1);
        // Small send still goes through.
        assert!(link.send(0, 100).is_ok());
    }
}
