//! CPU time charges.
//!
//! The paper's §6 model deliberately ignored CPU time and admits this was
//! only marginally defensible: "the design selected was very stingy with
//! disk I/O's, but the CPU was sometimes a slight bottleneck". Table 2's
//! FSD numbers make the Dorado's CPU cost visible — an FSD open takes
//! 11.7 ms with *no* disk I/O at all. To reproduce those shapes the
//! simulation charges explicit, documented CPU costs against the same
//! simulated clock the disk uses.
//!
//! The constants below are calibrated to the Dorado-era numbers in
//! Table 2 (open 11.7 ms, small delete 15 ms, both I/O-free in FSD) and
//! are intentionally coarse: a fixed per-operation dispatch cost, a cost
//! per B-tree node visited, a cost per name-table entry encoded or
//! decoded, and a small per-sector cost for moving data.

use crate::clock::{Micros, SimClock};

/// A table of CPU costs, charged against the simulated clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpuModel {
    /// Fixed cost of entering a file-system operation (monitors,
    /// dispatch, pathname handling).
    pub op_overhead_us: Micros,
    /// Cost per B-tree node visited or modified.
    pub btree_node_us: Micros,
    /// Cost per name-table entry encoded, decoded or compared.
    pub entry_us: Micros,
    /// Cost per sector of data moved, checksummed or interpreted.
    pub per_sector_us: Micros,
    /// Scavenger cost per label interpreted (the Dorado scavenger
    /// interpreted every sector's label in Mesa; this dominates its hour
    /// of elapsed time).
    pub label_interpret_us: Micros,
}

impl CpuModel {
    /// Dorado-class CPU costs (see module docs for the calibration).
    pub const DORADO: Self = Self {
        op_overhead_us: 4_000,
        btree_node_us: 1_800,
        entry_us: 900,
        per_sector_us: 60,
        label_interpret_us: 2_000,
    };

    /// An effectively free CPU, for experiments isolating disk behaviour.
    pub const FREE: Self = Self {
        op_overhead_us: 0,
        btree_node_us: 0,
        entry_us: 0,
        per_sector_us: 0,
        label_interpret_us: 0,
    };
}

/// A CPU charger bound to a clock, tracking total CPU time separately so
/// Table 5's %CPU can be computed.
#[derive(Clone, Debug)]
pub struct Cpu {
    clock: SimClock,
    model: CpuModel,
    total_us: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl Cpu {
    /// Creates a charger for `clock` with the given cost table.
    pub fn new(clock: SimClock, model: CpuModel) -> Self {
        Self {
            clock,
            model,
            total_us: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }

    /// The cost table.
    pub fn model(&self) -> &CpuModel {
        &self.model
    }

    /// Total CPU time charged so far.
    pub fn total_us(&self) -> Micros {
        self.total_us.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Charges `us` microseconds of CPU time.
    pub fn charge(&self, us: Micros) {
        self.total_us
            .fetch_add(us, std::sync::atomic::Ordering::AcqRel);
        self.clock.advance(us);
    }

    /// Charges the fixed per-operation overhead.
    pub fn op(&self) {
        self.charge(self.model.op_overhead_us);
    }

    /// Charges for visiting `n` B-tree nodes.
    pub fn btree_nodes(&self, n: u64) {
        self.charge(self.model.btree_node_us * n);
    }

    /// Charges for handling `n` name-table entries.
    pub fn entries(&self, n: u64) {
        self.charge(self.model.entry_us * n);
    }

    /// Charges for moving `n` sectors of data.
    pub fn sectors(&self, n: u64) {
        self.charge(self.model.per_sector_us * n);
    }

    /// Charges for interpreting `n` labels during a scavenge.
    pub fn labels(&self, n: u64) {
        self.charge(self.model.label_interpret_us * n);
    }

    /// Creates a local accumulator for one worker of a parallel stage.
    pub fn worker(&self) -> WorkerCpu {
        WorkerCpu {
            model: self.model,
            accumulated_us: 0,
        }
    }

    /// Joins a parallel stage that started at simulated time
    /// `started_at` and whose workers accumulated `worker_us`
    /// microseconds each (see [`WorkerCpu::into_us`]).
    ///
    /// The *sum* of the workers' time is added to [`Cpu::total_us`] — it
    /// is all real CPU work for %CPU accounting — but the clock advances
    /// only to `started_at + max(worker_us)`: on parallel hardware the
    /// elapsed time of the stage is its critical path, the slowest
    /// worker. (Any I/O or serial charges that happened concurrently may
    /// already have pushed the clock past that point, in which case the
    /// stage's CPU time was fully hidden behind them and the clock does
    /// not move.)
    pub fn join_parallel(&self, started_at: Micros, worker_us: &[Micros]) {
        let sum: Micros = worker_us.iter().sum();
        let max = worker_us.iter().copied().max().unwrap_or(0);
        self.total_us
            .fetch_add(sum, std::sync::atomic::Ordering::AcqRel);
        self.clock.advance_to(started_at.saturating_add(max));
    }
}

/// A per-worker CPU accumulator for parallel stages.
///
/// On the simulated machine every [`Cpu::charge`] advances the one
/// shared clock, which models a *single* CPU: concurrent charges
/// serialize. A parallel stage instead hands each worker a `WorkerCpu`,
/// which accumulates charges locally without touching the clock; at the
/// join, [`Cpu::join_parallel`] folds the workers' totals back in —
/// summing them for %CPU, advancing the clock by the maximum.
///
/// The accumulator is plain data (`Send`), so it can move into a worker
/// thread and come back out through its join handle or a channel.
#[derive(Clone, Debug)]
pub struct WorkerCpu {
    model: CpuModel,
    accumulated_us: Micros,
}

impl WorkerCpu {
    /// The cost table (shared with the parent [`Cpu`]).
    pub fn model(&self) -> &CpuModel {
        &self.model
    }

    /// Microseconds accumulated so far.
    pub fn accumulated_us(&self) -> Micros {
        self.accumulated_us
    }

    /// Consumes the accumulator, yielding its total for
    /// [`Cpu::join_parallel`].
    pub fn into_us(self) -> Micros {
        self.accumulated_us
    }

    /// Accumulates `us` microseconds of CPU time locally.
    pub fn charge(&mut self, us: Micros) {
        self.accumulated_us = self.accumulated_us.saturating_add(us);
    }

    /// Accumulates the cost of handling `n` name-table entries.
    pub fn entries(&mut self, n: u64) {
        self.charge(self.model.entry_us * n);
    }

    /// Accumulates the cost of moving `n` sectors of data.
    pub fn sectors(&mut self, n: u64) {
        self.charge(self.model.per_sector_us * n);
    }

    /// Accumulates the cost of interpreting `n` labels.
    pub fn labels(&mut self, n: u64) {
        self.charge(self.model.label_interpret_us * n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_advance_clock_and_accumulate() {
        let clock = SimClock::new();
        let cpu = Cpu::new(clock.clone(), CpuModel::DORADO);
        cpu.op();
        cpu.entries(2);
        assert_eq!(cpu.total_us(), 4_000 + 1_800);
        assert_eq!(clock.now(), cpu.total_us());
    }

    #[test]
    fn free_model_charges_nothing() {
        let clock = SimClock::new();
        let cpu = Cpu::new(clock.clone(), CpuModel::FREE);
        cpu.op();
        cpu.labels(1000);
        assert_eq!(clock.now(), 0);
        assert_eq!(cpu.total_us(), 0);
    }

    #[test]
    fn clones_share_totals() {
        let cpu = Cpu::new(SimClock::new(), CpuModel::DORADO);
        let view = cpu.clone();
        cpu.sectors(10);
        assert_eq!(view.total_us(), 600);
    }

    #[test]
    fn workers_accumulate_without_advancing_clock() {
        let clock = SimClock::new();
        let cpu = Cpu::new(clock.clone(), CpuModel::DORADO);
        let mut w = cpu.worker();
        w.labels(3);
        w.entries(1);
        assert_eq!(w.accumulated_us(), 3 * 2_000 + 900);
        assert_eq!(clock.now(), 0);
        assert_eq!(cpu.total_us(), 0);
    }

    #[test]
    fn join_sums_totals_but_advances_clock_by_max() {
        let clock = SimClock::new();
        let cpu = Cpu::new(clock.clone(), CpuModel::DORADO);
        clock.advance(1_000);
        cpu.join_parallel(1_000, &[5_000, 2_000, 7_000]);
        assert_eq!(cpu.total_us(), 14_000);
        assert_eq!(clock.now(), 1_000 + 7_000);
    }

    #[test]
    fn join_never_moves_clock_backwards() {
        let clock = SimClock::new();
        let cpu = Cpu::new(clock.clone(), CpuModel::DORADO);
        clock.advance(50_000); // concurrent I/O already passed the join
        cpu.join_parallel(10_000, &[1_000]);
        assert_eq!(clock.now(), 50_000);
        assert_eq!(cpu.total_us(), 1_000);
    }
}
