//! The disk timing model.
//!
//! The paper's §6 model reasons about five quantities: seeks, short seeks
//! ("a few cylinders"), latencies ("half a revolution"), lost revolutions,
//! and transfer time. This module defines those quantities for a drive; the
//! simulator in [`crate::disk`] charges them mechanically, and the analytic
//! model in the `cedar-model` crate composes them by hand for validation.

use crate::clock::Micros;

/// Timing parameters of a simulated drive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiskTiming {
    /// Spindle speed in revolutions per minute.
    pub rpm: u32,
    /// Number of sectors per track (must match the geometry; used to derive
    /// per-sector transfer time).
    pub sectors_per_track: u32,
    /// A seek of at most this many cylinders is a "short seek".
    pub short_seek_cylinders: u32,
    /// Time for a short seek, including settle.
    pub short_seek_us: Micros,
    /// Base component of a long seek (arm acceleration + settle).
    pub seek_base_us: Micros,
    /// Distance-dependent component: multiplied by √distance (cylinders).
    pub seek_per_sqrt_cyl_us: Micros,
    /// Head-switch time (changing surface within a cylinder).
    pub head_switch_us: Micros,
}

impl DiskTiming {
    /// Timing of the ~300 MB Trident-class drive of the Dorado era:
    /// 3600 RPM (16.67 ms/revolution), ~6 ms track-to-track, ~28 ms average
    /// seek, ~55 ms full stroke.
    ///
    /// With 815 cylinders, average seek distance ≈ 815/3 ≈ 272 cylinders;
    /// `5_000 + 1_400·√272 ≈ 28.1 ms`, and full stroke
    /// `5_000 + 1_400·√815 ≈ 45 ms`.
    pub const TRIDENT_T300: Self = Self {
        rpm: 3600,
        sectors_per_track: 38,
        short_seek_cylinders: 5,
        short_seek_us: 6_000,
        seek_base_us: 5_000,
        seek_per_sqrt_cyl_us: 1_400,
        head_switch_us: 200,
    };

    /// Timing matched to [`crate::DiskGeometry::TINY`] for unit tests.
    pub const TINY: Self = Self {
        rpm: 3600,
        sectors_per_track: 16,
        short_seek_cylinders: 5,
        short_seek_us: 6_000,
        seek_base_us: 5_000,
        seek_per_sqrt_cyl_us: 1_400,
        head_switch_us: 200,
    };

    /// Duration of one full revolution.
    pub fn revolution_us(&self) -> Micros {
        60_000_000 / self.rpm as Micros
    }

    /// Time to transfer one sector (one sector's angular width).
    pub fn sector_us(&self) -> Micros {
        self.revolution_us() / self.sectors_per_track as Micros
    }

    /// Average rotational latency: half a revolution.
    pub fn latency_us(&self) -> Micros {
        self.revolution_us() / 2
    }

    /// Seek time for a move of `distance` cylinders.
    ///
    /// Zero distance costs nothing; distances within
    /// [`Self::short_seek_cylinders`] cost [`Self::short_seek_us`]; longer
    /// seeks follow the `base + k·√d` curve typical of voice-coil actuators.
    pub fn seek_us(&self, distance: u32) -> Micros {
        if distance == 0 {
            0
        } else if distance <= self.short_seek_cylinders {
            self.short_seek_us
        } else {
            self.seek_base_us + self.seek_per_sqrt_cyl_us * isqrt(distance as u64)
        }
    }

    /// Average seek time assuming uniformly random start/end cylinders on a
    /// volume of `cylinders` cylinders (average distance ≈ cylinders/3).
    pub fn average_seek_us(&self, cylinders: u32) -> Micros {
        self.seek_us(cylinders / 3)
    }
}

/// Integer square root (floor).
fn isqrt(n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut x = n;
    let mut y = x.div_ceil(2);
    while y < x {
        x = y;
        y = (x + n / x) / 2;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn revolution_at_3600_rpm_is_16_67_ms() {
        assert_eq!(DiskTiming::TRIDENT_T300.revolution_us(), 16_666);
    }

    #[test]
    fn sector_time_divides_revolution() {
        let t = DiskTiming::TRIDENT_T300;
        assert_eq!(t.sector_us(), 16_666 / 38);
    }

    #[test]
    fn latency_is_half_revolution() {
        let t = DiskTiming::TRIDENT_T300;
        assert_eq!(t.latency_us(), t.revolution_us() / 2);
    }

    #[test]
    fn zero_seek_is_free() {
        assert_eq!(DiskTiming::TRIDENT_T300.seek_us(0), 0);
    }

    #[test]
    fn short_seek_is_flat() {
        let t = DiskTiming::TRIDENT_T300;
        assert_eq!(t.seek_us(1), t.short_seek_us);
        assert_eq!(t.seek_us(5), t.short_seek_us);
    }

    #[test]
    fn long_seeks_grow_with_distance() {
        let t = DiskTiming::TRIDENT_T300;
        assert!(t.seek_us(100) < t.seek_us(400));
        assert!(t.seek_us(400) < t.seek_us(814));
    }

    #[test]
    fn average_seek_is_about_28ms() {
        let t = DiskTiming::TRIDENT_T300;
        let avg = t.average_seek_us(815);
        assert!((25_000..31_000).contains(&avg), "{avg}");
    }

    #[test]
    fn isqrt_exact_and_floor() {
        assert_eq!(isqrt(0), 0);
        assert_eq!(isqrt(1), 1);
        assert_eq!(isqrt(15), 3);
        assert_eq!(isqrt(16), 4);
        assert_eq!(isqrt(815), 28);
    }
}
