//! Saving and loading disk images to host files.
//!
//! A [`crate::SimDisk`] is an in-memory object; persisting it lets tools
//! (like the `cedarfs` CLI) keep a volume across process runs, move
//! images between machines, or archive the state of an experiment.
//!
//! The format is a simple stream: header (magic, geometry, timing), then
//! one record per *materialized* sector (address, label, damage flag,
//! data). Never-written sectors are omitted, so an image's size tracks
//! its contents rather than the volume capacity.

use crate::clock::SimClock;
use crate::disk::SimDisk;
use crate::geometry::DiskGeometry;
use crate::label::{Label, PageKind};
use crate::timing::DiskTiming;
use crate::SECTOR_BYTES;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const IMAGE_MAGIC: &[u8; 8] = b"CEDARIMG";
const VERSION: u32 = 1;

fn io_err(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn put_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn get_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

impl SimDisk {
    /// Writes the disk's persistent state (geometry, timing, sector
    /// contents, labels, damage flags) to a host file. Volatile state —
    /// the clock, statistics, head position, crash plans — is not saved,
    /// matching what survives a power cycle.
    pub fn save_image(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        w.write_all(IMAGE_MAGIC)?;
        put_u32(&mut w, VERSION)?;
        let g = self.geometry();
        put_u32(&mut w, g.cylinders)?;
        put_u32(&mut w, g.heads)?;
        put_u32(&mut w, g.sectors_per_track)?;
        let t = self.timing();
        put_u32(&mut w, t.rpm)?;
        put_u32(&mut w, t.short_seek_cylinders)?;
        put_u64(&mut w, t.short_seek_us)?;
        put_u64(&mut w, t.seek_base_us)?;
        put_u64(&mut w, t.seek_per_sqrt_cyl_us)?;
        put_u64(&mut w, t.head_switch_us)?;

        for addr in 0..g.total_sectors() {
            let data = self.peek_data(addr);
            let label = self.peek_label(addr);
            let damaged = self.peek_damaged(addr);
            if data.is_none() && label.is_free() && !damaged {
                continue; // Pristine sector: omitted.
            }
            put_u32(&mut w, addr)?;
            put_u64(&mut w, label.uid)?;
            put_u32(&mut w, label.page)?;
            w.write_all(&[
                u8::from(label.kind),
                u8::from(damaged),
                u8::from(data.is_some()),
            ])?;
            if let Some(d) = data {
                w.write_all(d)?;
            }
        }
        put_u32(&mut w, u32::MAX)?; // Terminator.
        w.flush()
    }

    /// Loads a disk image saved by [`Self::save_image`], attaching it to
    /// `clock`.
    pub fn load_image(path: impl AsRef<Path>, clock: SimClock) -> io::Result<SimDisk> {
        let mut r = BufReader::new(std::fs::File::open(path)?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != IMAGE_MAGIC {
            return Err(io_err("not a cedar disk image".into()));
        }
        let version = get_u32(&mut r)?;
        if version != VERSION {
            return Err(io_err(format!("unsupported image version {version}")));
        }
        let geometry = DiskGeometry {
            cylinders: get_u32(&mut r)?,
            heads: get_u32(&mut r)?,
            sectors_per_track: get_u32(&mut r)?,
        };
        let timing = DiskTiming {
            rpm: get_u32(&mut r)?,
            sectors_per_track: geometry.sectors_per_track,
            short_seek_cylinders: get_u32(&mut r)?,
            short_seek_us: get_u64(&mut r)?,
            seek_base_us: get_u64(&mut r)?,
            seek_per_sqrt_cyl_us: get_u64(&mut r)?,
            head_switch_us: get_u64(&mut r)?,
        };
        let mut disk = SimDisk::new(geometry, timing, clock);
        loop {
            let addr = get_u32(&mut r)?;
            if addr == u32::MAX {
                break;
            }
            if addr >= geometry.total_sectors() {
                return Err(io_err(format!("sector {addr} beyond volume")));
            }
            let uid = get_u64(&mut r)?;
            let page = get_u32(&mut r)?;
            let mut flags = [0u8; 3];
            r.read_exact(&mut flags)?;
            let kind = match flags[0] {
                0 => PageKind::Free,
                1 => PageKind::Header,
                2 => PageKind::Data,
                3 => PageKind::Leader,
                4 => PageKind::NameTable,
                5 => PageKind::Log,
                6 => PageKind::Boot,
                k => return Err(io_err(format!("bad page kind {k}"))),
            };
            let mut data = None;
            if flags[2] != 0 {
                let mut buf = vec![0u8; SECTOR_BYTES];
                r.read_exact(&mut buf)?;
                data = Some(buf);
            }
            disk.restore_sector(addr, data, Label::new(uid, page, kind), flags[1] != 0);
        }
        Ok(disk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CrashPlan;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cedar-image-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_contents_labels_and_damage() {
        let mut d = SimDisk::tiny();
        d.write(10, &vec![0xAB; SECTOR_BYTES * 2]).unwrap();
        d.write_labels(10, &[Label::new(7, 0, PageKind::Data)], None)
            .unwrap();
        d.schedule_crash(CrashPlan {
            after_sector_writes: 0,
            damaged_tail: 1,
        });
        let _ = d.write(20, &vec![1; SECTOR_BYTES]);
        d.reboot();

        let path = tmp("roundtrip");
        d.save_image(&path).unwrap();
        let mut loaded = SimDisk::load_image(&path, SimClock::new()).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.read(10, 2).unwrap(), vec![0xAB; SECTOR_BYTES * 2]);
        assert_eq!(loaded.peek_label(10), Label::new(7, 0, PageKind::Data));
        assert!(loaded.peek_damaged(20));
        assert_eq!(loaded.read(100, 1).unwrap(), vec![0; SECTOR_BYTES]);
        assert_eq!(loaded.geometry(), d.geometry());
        assert_eq!(loaded.timing(), d.timing());
    }

    #[test]
    fn image_size_tracks_contents_not_capacity() {
        let d = SimDisk::tiny();
        let path = tmp("empty");
        d.save_image(&path).unwrap();
        let blank = std::fs::metadata(&path).unwrap().len();
        std::fs::remove_file(&path).ok();
        assert!(blank < 200, "blank image is tiny, got {blank} bytes");
    }

    #[test]
    fn rejects_garbage_files() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not an image").unwrap();
        assert!(SimDisk::load_image(&path, SimClock::new()).is_err());
        std::fs::remove_file(&path).ok();
    }
}
