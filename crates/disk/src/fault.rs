//! Deterministic media-fault injection.
//!
//! [`crate::CrashPlan`] models the paper's *torn write* — a machine crash
//! mid-transfer. A [`FaultPlan`] models the media itself going bad (§5.8's
//! error classes 2–5 all start from a bad sector somewhere):
//!
//! * **latent** bad sectors: the platter surface degraded while the sector
//!   sat idle; the flaw is discovered on the *first touch* (read or write),
//!   which fails with [`crate::DiskError::BadSector`]. A subsequent rewrite
//!   reformats the sector and succeeds — the paper's "rewriting it repairs
//!   it" soft-error model.
//! * **transient** read errors: a marginal sector needs one or two extra
//!   revolutions before the controller's retry reads it cleanly. Retries
//!   are invisible to software but charged through the timing model as
//!   lost revolutions and counted in [`crate::DiskStats`].
//! * **grown** defects: the sector is permanently dead. Reads and writes
//!   both fail with `BadSector` forever; rewriting does *not* repair it.
//!   These are what forces the file system to remap into a spare region.
//!
//! All three are per-sector, installed up front, and fire deterministically,
//! so a fault-injection campaign enumerating plans is reproducible.

use crate::SectorAddr;

/// A deterministic set of media faults to install on a [`crate::SimDisk`]
/// via [`crate::SimDisk::set_fault_plan`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Sectors whose flaw is discovered (and fails) on first touch.
    pub latent: Vec<SectorAddr>,
    /// `(sector, retries)` pairs: the next read of `sector` costs
    /// `retries` extra revolutions before succeeding (capped at 2 by the
    /// disk — real controllers give up long before that matters here).
    pub transient: Vec<(SectorAddr, u8)>,
    /// Permanently dead sectors: every read and write fails, rewriting
    /// does not repair.
    pub grown: Vec<SectorAddr>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// Returns `true` if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.latent.is_empty() && self.transient.is_empty() && self.grown.is_empty()
    }

    /// Adds a latent bad sector.
    pub fn with_latent(mut self, addr: SectorAddr) -> Self {
        self.latent.push(addr);
        self
    }

    /// Adds a transient read fault of `retries` extra revolutions.
    pub fn with_transient(mut self, addr: SectorAddr, retries: u8) -> Self {
        self.transient.push((addr, retries));
        self
    }

    /// Adds a grown (permanent) defect.
    pub fn with_grown(mut self, addr: SectorAddr) -> Self {
        self.grown.push(addr);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let p = FaultPlan::none()
            .with_latent(5)
            .with_transient(6, 2)
            .with_grown(7);
        assert!(!p.is_empty());
        assert_eq!(p.latent, vec![5]);
        assert_eq!(p.transient, vec![(6, 2)]);
        assert_eq!(p.grown, vec![7]);
        assert!(FaultPlan::none().is_empty());
    }
}
