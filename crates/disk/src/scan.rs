//! Pipelined scan support for the parallel scavenger.
//!
//! pFSCK-style checking splits a recovery scan into a *reader* stage —
//! large barrier-free read batches planned by [`crate::sched`] — and N
//! decode/verify workers. The two halves meet here:
//!
//! * [`ScanChannel`] is a bounded multi-producer/multi-consumer queue
//!   built on [`crate::sync`] primitives (so the in-tree `loom` model
//!   checker can enumerate its interleavings under `--features loom`).
//!   The bound is the pipeline depth: the reader blocks when the
//!   workers fall behind, workers block when the reader does, and
//!   `close` drains cleanly in either direction.
//! * [`ScanChunk`] is the unit that flows through it: one contiguous
//!   sector range with raw bytes and per-sector damage flags, stamped
//!   with its submission sequence number so downstream merges can
//!   restore address order no matter which worker finished first.
//! * [`read_chunks`] turns a list of disjoint ranges into one
//!   damage-tolerant batch read (a single barrier-free window — reads
//!   never conflict — so C-SCAN can order the whole sweep).

use crate::sched::{self, IoBatch, IoOp, IoPolicy};
use crate::sync::{Condvar, Mutex, MutexGuard};
use crate::{DiskError, Result, SectorAddr, SimDisk};
use std::collections::VecDeque;

/// One contiguous stretch of sectors read by the scan's reader stage.
#[derive(Clone, Debug)]
pub struct ScanChunk {
    /// Submission sequence number within the scan, restoring address
    /// order after out-of-order parallel processing.
    pub seq: usize,
    /// Address of the first sector in the chunk.
    pub start: SectorAddr,
    /// Raw data, [`crate::SECTOR_BYTES`] per sector. Damaged sectors
    /// read as zeroes.
    pub bytes: Vec<u8>,
    /// Per-sector damage flags (media flaw or torn write).
    pub damaged: Vec<bool>,
}

impl ScanChunk {
    /// Number of sectors in the chunk.
    pub fn sectors(&self) -> usize {
        self.damaged.len()
    }
}

/// Reads every range in `ranges` as one damage-tolerant batch and
/// returns one [`ScanChunk`] per range, in submission order (`seq`
/// numbered from `first_seq`).
///
/// Reads never conflict, so the whole batch is a single barrier-free
/// window: under [`IoPolicy::Cscan`] the scheduler services it in one
/// ascending sweep regardless of submission order.
pub fn read_chunks(
    disk: &mut SimDisk,
    policy: IoPolicy,
    ranges: &[(SectorAddr, usize)],
    first_seq: usize,
) -> Result<Vec<ScanChunk>> {
    let mut batch = IoBatch::new();
    for &(start, n) in ranges {
        batch.push(IoOp::ReadAllowDamage { start, n });
    }
    let outputs = sched::execute(disk, policy, &batch)?;
    let mut chunks = Vec::with_capacity(ranges.len());
    for (i, (out, &(start, _))) in outputs.into_iter().zip(ranges).enumerate() {
        let (bytes, damaged) = out
            .into_data_mask()
            .ok_or(DiskError::BadRequest("read produced no data"))?;
        chunks.push(ScanChunk {
            seq: first_seq + i,
            start,
            bytes,
            damaged,
        });
    }
    Ok(chunks)
}

struct ChannelState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// A bounded hand-off queue between the scan's reader and its workers.
///
/// `send` blocks while the queue is at capacity (backpressure: the
/// reader cannot run unboundedly ahead of the decoders); `recv` blocks
/// while it is empty. After [`ScanChannel::close`], `send` refuses new
/// items and `recv` drains what remains, then returns `None` — the
/// workers' termination signal.
pub struct ScanChannel<T> {
    state: Mutex<ChannelState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

/// Locks the channel mutex, recovering from poison. A worker that
/// panics mid-`recv` must not wedge the reader or its peers: the queue
/// holds only plain data chunks, which a panicking peer cannot leave
/// half-mutated, so continuing past poison is sound. The loom model
/// (`tests/loom_scan.rs`) checks the hand-off under crashing schedules.
fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

impl<T> ScanChannel<T> {
    /// Creates a channel holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(ChannelState {
                queue: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `item`, blocking while the channel is full. Returns
    /// `false` (dropping the item) if the channel is closed.
    pub fn send(&self, item: T) -> bool {
        let mut state = plock(&self.state);
        while !state.closed && state.queue.len() >= self.capacity {
            state = match self.not_full.wait(state) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        if state.closed {
            return false;
        }
        state.queue.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        true
    }

    /// Dequeues the next item, blocking while the channel is open and
    /// empty. Returns `None` once the channel is closed and drained.
    pub fn recv(&self) -> Option<T> {
        let mut state = plock(&self.state);
        loop {
            if let Some(item) = state.queue.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = match self.not_empty.wait(state) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Closes the channel: pending items remain receivable, further
    /// sends are refused, and every blocked sender and receiver wakes.
    pub fn close(&self) {
        plock(&self.state).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether the channel has been closed.
    pub fn is_closed(&self) -> bool {
        plock(&self.state).closed
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;
    use crate::sync::thread;
    use std::sync::Arc;

    #[test]
    fn channel_roundtrip_in_order() {
        let ch = ScanChannel::new(4);
        assert!(ch.send(1));
        assert!(ch.send(2));
        ch.close();
        assert!(!ch.send(3));
        assert_eq!(ch.recv(), Some(1));
        assert_eq!(ch.recv(), Some(2));
        assert_eq!(ch.recv(), None);
        assert_eq!(ch.recv(), None);
    }

    #[test]
    fn channel_backpressure_blocks_sender_until_recv() {
        let ch = Arc::new(ScanChannel::new(1));
        assert!(ch.send(10u32));
        let ch2 = Arc::clone(&ch);
        let sender = thread::spawn(move || ch2.send(20));
        // The consumer drains both items; the blocked sender must wake.
        assert_eq!(ch.recv(), Some(10));
        assert_eq!(ch.recv(), Some(20));
        assert!(sender.join().unwrap());
    }

    #[test]
    fn close_wakes_blocked_receiver() {
        let ch = Arc::new(ScanChannel::<u32>::new(2));
        let ch2 = Arc::clone(&ch);
        let receiver = thread::spawn(move || ch2.recv());
        ch.close();
        assert_eq!(receiver.join().unwrap(), None);
        assert!(ch.is_closed());
    }

    #[test]
    fn read_chunks_returns_one_chunk_per_range() {
        let mut disk = SimDisk::tiny();
        let data = vec![0xA5u8; crate::SECTOR_BYTES * 2];
        disk.write(40, &data).unwrap();
        let chunks = read_chunks(&mut disk, IoPolicy::Cscan, &[(40, 2), (8, 1)], 7).unwrap();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].seq, 7);
        assert_eq!(chunks[0].start, 40);
        assert_eq!(chunks[0].sectors(), 2);
        assert_eq!(chunks[0].bytes, data);
        assert!(chunks[0].damaged.iter().all(|&d| !d));
        assert_eq!(chunks[1].seq, 8);
        assert_eq!(chunks[1].start, 8);
        assert_eq!(chunks[1].sectors(), 1);
    }

    #[test]
    fn read_chunks_flags_damaged_sectors() {
        let mut disk = SimDisk::tiny();
        disk.damage_sector(41);
        let chunks = read_chunks(&mut disk, IoPolicy::InOrder, &[(40, 3)], 0).unwrap();
        assert_eq!(chunks[0].damaged, vec![false, true, false]);
    }
}
