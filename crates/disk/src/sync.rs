//! Synchronization primitives for the parallel scan machinery,
//! swappable for the in-tree `loom` model checker.
//!
//! [`scan`](crate::scan) takes its lock, condvar, and thread types from
//! this module instead of `std` directly. In a normal build these
//! re-exports *are* the std types — zero cost. Under `--features loom`
//! they become the model checker's shims, whose every acquisition,
//! wait, notify, spawn, and join is a scheduling point, so
//! `tests/loom_scan.rs` can enumerate the reader → worker → merge
//! hand-off interleavings exhaustively (within a preemption bound).
//! This mirrors `cedar_fsd::sync`, which does the same swap for the
//! threaded group-commit engine.

#[cfg(feature = "loom")]
pub use loom::sync::{Condvar, Mutex, MutexGuard};
#[cfg(feature = "loom")]
pub use loom::thread;

#[cfg(not(feature = "loom"))]
pub use std::sync::{Condvar, Mutex, MutexGuard};
#[cfg(not(feature = "loom"))]
pub use std::thread;
