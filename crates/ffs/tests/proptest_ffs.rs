//! Property tests for the FFS baseline: it behaves like a map of paths
//! to contents under arbitrary operation sequences, and fsck after a
//! crash never loses a completed file.

use cedar_disk::{CpuModel, SimDisk};
use cedar_ffs::{Ffs, FfsConfig, FfsError};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn config() -> FfsConfig {
    FfsConfig {
        cpu: CpuModel::FREE,
        ..FfsConfig::default()
    }
}

#[derive(Clone, Debug)]
enum Op {
    Create(u8, u16),
    Unlink(u8),
    Read(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..12, 1u16..6000).prop_map(|(n, b)| Op::Create(n, b)),
        1 => (0u8..12).prop_map(Op::Unlink),
        2 => (0u8..12).prop_map(Op::Read),
    ]
}

fn name(n: u8) -> String {
    format!("d/file{n:02}")
}

fn content(n: u8, bytes: u16) -> Vec<u8> {
    (0..bytes).map(|i| (i as u8) ^ n).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn behaves_like_a_path_map(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let mut fs = Ffs::format(SimDisk::tiny(), config()).unwrap();
        fs.mkdir("d").unwrap();
        let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();

        for op in &ops {
            match op {
                Op::Create(n, bytes) => {
                    let data = content(*n, *bytes);
                    match fs.create(&name(*n), &data) {
                        Ok(_) => {
                            prop_assert!(!model.contains_key(&name(*n)));
                            model.insert(name(*n), data);
                        }
                        Err(FfsError::Exists(_)) => {
                            prop_assert!(model.contains_key(&name(*n)));
                        }
                        Err(FfsError::NoSpace) => {}
                        Err(e) => return Err(TestCaseError::fail(format!("create: {e}"))),
                    }
                }
                Op::Unlink(n) => match fs.unlink(&name(*n)) {
                    Ok(()) => {
                        prop_assert!(model.remove(&name(*n)).is_some());
                    }
                    Err(FfsError::NotFound(_)) => {
                        prop_assert!(!model.contains_key(&name(*n)));
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("unlink: {e}"))),
                },
                Op::Read(n) => match fs.open(&name(*n)) {
                    Ok(f) => {
                        let got = fs.read_file(&f).unwrap();
                        prop_assert_eq!(Some(&got), model.get(&name(*n)));
                    }
                    Err(FfsError::NotFound(_)) => {
                        prop_assert!(!model.contains_key(&name(*n)));
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("open: {e}"))),
                },
            }
        }

        // Final listing matches the model exactly.
        let mut listed: Vec<String> =
            fs.list_names("d").unwrap().iter().map(|n| format!("d/{n}")).collect();
        listed.sort();
        let want: Vec<String> = model.keys().cloned().collect();
        prop_assert_eq!(listed, want);
    }

    #[test]
    fn fsck_after_crash_keeps_every_completed_file(
        files in proptest::collection::vec((0u8..20, 100u16..4000), 1..15),
    ) {
        let mut fs = Ffs::format(SimDisk::tiny(), config()).unwrap();
        fs.mkdir("d").unwrap();
        let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        for (n, bytes) in &files {
            let data = content(*n, *bytes);
            if fs.create(&name(*n), &data).is_ok() {
                model.insert(name(*n), data);
            }
        }
        // Power fail without sync: the delayed bitmaps are stale.
        let mut disk = fs.into_disk();
        disk.crash_now();
        disk.reboot();
        let mut fs = Ffs::mount(disk, config()).unwrap();
        fs.fsck().unwrap();
        // Every completed create survives with its contents (metadata was
        // synchronous), and allocation works again without collisions.
        for (path, want) in &model {
            let f = fs.open(path).unwrap();
            prop_assert_eq!(&fs.read_file(&f).unwrap(), want, "{}", path);
        }
        for i in 0..10 {
            if fs.create(&format!("d/new{i}"), &vec![0xEE; 2000]).is_err() {
                break;
            }
        }
        for (path, want) in &model {
            let f = fs.open(path).unwrap();
            prop_assert_eq!(&fs.read_file(&f).unwrap(), want, "{} after refill", path);
        }
    }
}
