//! [`FsBackend`] implementation for [`Ffs`].
//!
//! FFS organizes files in a directory tree and has no versions, so this
//! impl bridges the trait's flat versioned namespace: `create` makes
//! missing parent directories and replaces an existing file (version is
//! always 1), and `list` walks subdirectories recursively so a prefix
//! query sees the same names the flat backends report. Services wrap
//! the volume in `SyncFs` to expose the shared-reference `FileSystem`
//! trait (FFS has a single buffer cache, so its concurrency story is
//! one lock).

use crate::fs::Ffs;
use crate::inode::InodeKind;
use crate::{FfsError, Ino};
use cedar_vol::fs::{CedarFsError, FileInfo, FsBackend, FsStats};

impl From<FfsError> for CedarFsError {
    fn from(e: FfsError) -> Self {
        match e {
            FfsError::Disk(d) => CedarFsError::Disk(d),
            FfsError::Corrupt(m) => CedarFsError::Corrupt(m),
            FfsError::NotFound(p) => CedarFsError::NotFound(p),
            FfsError::NotADirectory(p) => CedarFsError::WrongKind(p),
            FfsError::Exists(p) => CedarFsError::Exists(p),
            FfsError::NoSpace => CedarFsError::NoSpace,
            FfsError::BadName(m) => CedarFsError::BadName(m),
            FfsError::OutOfRange => CedarFsError::OutOfRange("block beyond end of file".into()),
        }
    }
}

/// Makes every parent directory of `name` exist.
fn ensure_parents(fs: &mut Ffs, name: &str) -> Result<(), CedarFsError> {
    let comps: Vec<&str> = name.split('/').filter(|c| !c.is_empty()).collect();
    let mut path = String::new();
    for comp in comps.iter().take(comps.len().saturating_sub(1)) {
        if !path.is_empty() {
            path.push('/');
        }
        path.push_str(comp);
        match fs.lookup(&path) {
            Ok(_) => {}
            Err(FfsError::NotFound(_)) => {
                fs.mkdir(&path)?;
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

impl FsBackend for Ffs {
    fn kind(&self) -> &'static str {
        "ffs"
    }

    fn create(&mut self, name: &str, data: &[u8]) -> Result<FileInfo, CedarFsError> {
        ensure_parents(self, name)?;
        match Ffs::create(self, name, data) {
            Ok(_) => {}
            // No versions: replacing the contents means replacing the file.
            Err(FfsError::Exists(_)) => {
                Ffs::unlink(self, name)?;
                Ffs::create(self, name, data)?;
            }
            Err(e) => return Err(e.into()),
        }
        Ok(FileInfo {
            name: name.trim_matches('/').to_string(),
            version: 1,
            bytes: data.len() as u64,
        })
    }

    fn open(&mut self, name: &str) -> Result<FileInfo, CedarFsError> {
        let f = Ffs::open(self, name)?;
        if f.inode.kind != InodeKind::File {
            return Err(CedarFsError::WrongKind(name.to_string()));
        }
        Ok(FileInfo {
            name: name.trim_matches('/').to_string(),
            version: 1,
            bytes: f.inode.size,
        })
    }

    fn read(&mut self, name: &str) -> Result<Vec<u8>, CedarFsError> {
        let f = Ffs::open(self, name)?;
        if f.inode.kind != InodeKind::File {
            return Err(CedarFsError::WrongKind(name.to_string()));
        }
        Ok(self.read_file(&f)?)
    }

    fn write(&mut self, name: &str, data: &[u8]) -> Result<FileInfo, CedarFsError> {
        // No versions on FFS: overwriting means replacing the file in
        // place, which is what `create` does for an existing name.
        FsBackend::create(self, name, data)
    }

    fn delete(&mut self, name: &str) -> Result<(), CedarFsError> {
        Ok(self.unlink(name)?)
    }

    fn list(&mut self, prefix: &str) -> Result<Vec<FileInfo>, CedarFsError> {
        // Depth-first walk from the root, reporting files whose full
        // path starts with the prefix (a prefix may end mid-component,
        // so filtering happens on the assembled path, not the walk).
        let mut stack: Vec<(Ino, String)> = vec![(crate::fs::ROOT_INO, String::new())];
        let mut out = Vec::new();
        while let Some((dir, at)) = stack.pop() {
            for (ino, entry) in self.read_dir(dir)? {
                let path = if at.is_empty() {
                    entry
                } else {
                    format!("{at}/{entry}")
                };
                let inode = self.read_inode(ino)?;
                match inode.kind {
                    InodeKind::Dir => stack.push((ino, path)),
                    InodeKind::File if path.starts_with(prefix) => out.push(FileInfo {
                        name: path,
                        version: 1,
                        bytes: inode.size,
                    }),
                    _ => {}
                }
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }

    fn sync(&mut self) -> Result<(), CedarFsError> {
        Ok(Ffs::sync(self)?)
    }

    fn stats(&self) -> FsStats {
        FsStats {
            disk: self.disk_stats(),
            now_us: self.clock().now(),
            free_sectors: self.free_sectors(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::FfsConfig;
    use cedar_disk::{CpuModel, SimDisk};

    fn vol() -> Ffs {
        Ffs::format(
            SimDisk::tiny(),
            FfsConfig {
                cpu: CpuModel::FREE,
                ..FfsConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn backend_roundtrip_with_auto_mkdir_and_replace() {
        let fs: &mut dyn FsBackend = &mut vol();
        assert_eq!(fs.kind(), "ffs");
        // Parents spring into existence, as the flat backends' namespace
        // implies they must.
        fs.create("a/b/c.txt", b"one").unwrap();
        let info = fs.write("a/b/c.txt", b"two!").unwrap();
        assert_eq!((info.version, info.bytes), (1, 4));
        assert_eq!(fs.read("a/b/c.txt").unwrap(), b"two!");
        fs.delete("a/b/c.txt").unwrap();
        assert!(matches!(
            fs.read("a/b/c.txt"),
            Err(CedarFsError::NotFound(_))
        ));
    }

    #[test]
    fn list_walks_subdirectories() {
        let fs: &mut dyn FsBackend = &mut vol();
        fs.create("pkg/Source.mesa", b"m").unwrap();
        fs.create("pkg/deep/Inner.bcd", b"bb").unwrap();
        fs.create("cache/Other.bcd", b"o").unwrap();
        let names: Vec<String> = fs
            .list("pkg/")
            .unwrap()
            .into_iter()
            .map(|i| i.name)
            .collect();
        assert_eq!(names, vec!["pkg/Source.mesa", "pkg/deep/Inner.bcd"]);
        // Prefixes may end mid-component.
        assert_eq!(fs.list("pkg/S").unwrap().len(), 1);
        assert_eq!(fs.list("").unwrap().len(), 3);
    }

    #[test]
    fn errors_map_to_shared_enum() {
        let fs: &mut dyn FsBackend = &mut vol();
        assert!(matches!(fs.read("nope"), Err(CedarFsError::NotFound(_))));
        fs.create("d/f", b"x").unwrap();
        assert!(matches!(fs.read("d"), Err(CedarFsError::WrongKind(_))));
    }
}
