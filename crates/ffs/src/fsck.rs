//! `fsck`: full-structure recovery for FFS.
//!
//! After a crash the bitmaps (written lazily) may disagree with the
//! inodes and directories (written synchronously). `fsck` walks every
//! inode-table block and every directory, rebuilds the bitmaps, clears
//! orphaned inodes, and rewrites the cylinder-group headers. On the
//! paper's 300 MB volume this takes about seven minutes (§7: "PARC's
//! VAX-11/785 recovers in about seven minutes (using fsck) while FSD
//! takes 1 to 25 seconds").

use crate::alloc::{block_to_slot, CgState};
use crate::fs::{Ffs, ROOT_INO};
use crate::inode::{Inode, InodeKind, PTRS_PER_BLOCK};
use crate::{Ino, Result};
use cedar_disk::clock::Micros;
use std::collections::HashSet;

/// What an fsck pass found and fixed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Live files found.
    pub files: u64,
    /// Live directories found (including the root).
    pub dirs: u64,
    /// Allocated inodes not reachable from the root (cleared).
    pub orphan_inodes: u64,
    /// Data blocks accounted to the rebuilt bitmaps.
    pub blocks_marked: u64,
    /// Simulated duration.
    pub duration_us: Micros,
    /// Disk operations performed.
    pub ios: u64,
}

impl Ffs {
    /// Runs a full consistency check and repair.
    pub fn fsck(&mut self) -> Result<FsckReport> {
        let mut report = FsckReport::default();
        let t0 = self.clock().now();
        let io0 = self.disk_stats().total_ops();
        self.cpu().op();
        // Cold cache, as after a reboot.
        self.drop_caches()?;

        let layout = *self.layout();

        // Phase 1: read every inode (sequential inode-table scan; the
        // cache turns 8 inodes into one block read).
        let mut allocated: Vec<(Ino, Inode)> = Vec::new();
        for ino in 0..layout.total_inodes() {
            let inode = self.read_inode(ino)?;
            self.cpu().entries(1);
            if inode.kind != InodeKind::Free && ino != ROOT_INO && ino != 0 {
                allocated.push((ino, inode));
            }
        }

        // Phase 2: walk the directory tree to find reachable inodes.
        let mut reachable: HashSet<Ino> = HashSet::new();
        reachable.insert(ROOT_INO);
        let mut stack = vec![ROOT_INO];
        while let Some(dir) = stack.pop() {
            for (ino, _name) in self.read_dir(dir)? {
                if !reachable.insert(ino) {
                    continue;
                }
                if self.read_inode(ino)?.kind == InodeKind::Dir {
                    stack.push(ino);
                }
            }
        }

        // Phase 3: rebuild the bitmaps from the reachable inodes.
        let mut cgs: Vec<CgState> = (0..layout.groups).map(|_| CgState::new(&layout)).collect();
        let mark_ino = |cgs: &mut [CgState], ino: Ino| {
            let g = layout.group_of_ino(ino) as usize;
            let slot = ino % layout.inodes_per_cg;
            cgs[g].inode_bitmap[slot as usize / 64] |= 1 << (slot % 64);
        };
        let mark_block = |cgs: &mut [CgState], report: &mut FsckReport, blk: u32| {
            if let Some((g, slot)) = block_to_slot(&layout, blk) {
                cgs[g as usize].block_bitmap[slot as usize / 64] |= 1 << (slot % 64);
                report.blocks_marked += 1;
            }
        };
        mark_ino(&mut cgs, 0); // Reserved invalid slot.
        mark_ino(&mut cgs, ROOT_INO);
        report.dirs += 1; // The root.
        let root_inode = self.read_inode(ROOT_INO)?;
        for i in 0..root_inode.blocks() as usize {
            let b = self.bmap(&root_inode, i)?;
            if b != 0 {
                mark_block(&mut cgs, &mut report, b);
            }
        }
        for (ino, inode) in allocated {
            if !reachable.contains(&ino) {
                report.orphan_inodes += 1;
                self.clear_inode(ino)?;
                continue;
            }
            mark_ino(&mut cgs, ino);
            match inode.kind {
                InodeKind::Dir => report.dirs += 1,
                InodeKind::File => report.files += 1,
                InodeKind::Free => {}
            }
            for i in 0..inode.blocks() as usize {
                let b = self.bmap(&inode, i)?;
                if b != 0 {
                    mark_block(&mut cgs, &mut report, b);
                }
            }
            if inode.indirect != 0 {
                mark_block(&mut cgs, &mut report, inode.indirect);
            }
            if inode.dindirect != 0 {
                mark_block(&mut cgs, &mut report, inode.dindirect);
                let l1 = self.read_block(inode.dindirect)?;
                for k in 0..PTRS_PER_BLOCK {
                    let p = u32::from_le_bytes([
                        l1[k * 4],
                        l1[k * 4 + 1],
                        l1[k * 4 + 2],
                        l1[k * 4 + 3],
                    ]);
                    if p != 0 {
                        mark_block(&mut cgs, &mut report, p);
                    }
                }
            }
        }

        // Phase 4: install and persist the rebuilt state.
        self.install_cgs(cgs);
        self.sync()?;

        report.duration_us = self.clock().now() - t0;
        report.ios = self.disk_stats().total_ops() - io0;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::FfsConfig;
    use cedar_disk::{CpuModel, SimDisk};

    fn tiny() -> Ffs {
        Ffs::format(
            SimDisk::tiny(),
            FfsConfig {
                cpu: CpuModel::FREE,
                ..FfsConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn fsck_on_clean_volume_finds_everything() {
        let mut fs = tiny();
        fs.mkdir("d").unwrap();
        for i in 0..10 {
            fs.create(&format!("d/f{i}"), &vec![1u8; 1500]).unwrap();
        }
        fs.sync().unwrap();
        let report = fs.fsck().unwrap();
        assert_eq!(report.files, 10);
        assert_eq!(report.dirs, 2); // Root + d.
        assert_eq!(report.orphan_inodes, 0);
        assert!(report.blocks_marked >= 20); // 2 data blocks per file + dir.
                                             // Files still readable afterwards.
        let f = fs.open("d/f3").unwrap();
        assert_eq!(fs.read_file(&f).unwrap(), vec![1u8; 1500]);
    }

    #[test]
    fn fsck_rebuilds_bitmaps_after_crash() {
        let mut fs = tiny();
        fs.mkdir("d").unwrap();
        fs.create("d/keep", &vec![7u8; 3000]).unwrap();
        // Crash without sync: bitmaps on disk are stale (empty).
        let mut disk = fs.into_disk();
        disk.crash_now();
        disk.reboot();
        let mut fs2 = Ffs::mount(
            disk,
            FfsConfig {
                cpu: CpuModel::FREE,
                ..FfsConfig::default()
            },
        )
        .unwrap();
        fs2.fsck().unwrap();
        // The file survived (metadata was synchronous) and new
        // allocations don't collide with it.
        for i in 0..20 {
            fs2.create(&format!("d/new{i}"), &vec![9u8; 2000]).unwrap();
        }
        let f = fs2.open("d/keep").unwrap();
        assert_eq!(fs2.read_file(&f).unwrap(), vec![7u8; 3000]);
    }

    #[test]
    fn fsck_clears_orphan_inodes() {
        let mut fs = tiny();
        fs.create("real", b"x").unwrap();
        // Fabricate an orphan: an allocated inode with no directory entry
        // (as a crash between inode write and directory write leaves).
        let orphan_ino = 7;
        let mut orphan = Inode::new(InodeKind::File, 0);
        orphan.size = 10;
        fs.write_inode_for_test(orphan_ino, &orphan).unwrap();
        let report = fs.fsck().unwrap();
        assert_eq!(report.orphan_inodes, 1);
        assert_eq!(fs.read_inode(orphan_ino).unwrap().kind, InodeKind::Free);
        assert!(fs.open("real").is_ok());
    }

    #[test]
    fn fsck_scales_with_volume_not_files() {
        // fsck reads every inode table block regardless of use — that is
        // why it takes minutes on a big volume.
        let mut fs = tiny();
        fs.create("one", b"x").unwrap();
        fs.sync().unwrap();
        let report = fs.fsck().unwrap();
        let inode_blocks = fs.layout().groups * fs.layout().inode_blocks_per_cg();
        assert!(
            report.ios as u32 >= inode_blocks / 2,
            "ios {} < {}",
            report.ios,
            inode_blocks
        );
    }
}
