//! FFS operations: create, open, read, unlink, list, sync.
//!
//! Metadata writes are **synchronous**, per the original: "Synchronous
//! writes require that the writes be performed in a particular order
//! before an operation can complete (e.g., a file create in UNIX writes
//! the inode to disk before returning)" (§5.3). Data and bitmap blocks
//! are delayed and flushed by [`Ffs::sync`]. Data is read and written
//! **block at a time** — with rotational interleave that is what caps
//! sequential bandwidth near 50 %.

use crate::alloc::{block_to_slot, slot_to_block, slot_to_ino, CgState};
use crate::inode::{Inode, InodeKind, NDIRECT, PTRS_PER_BLOCK};
use crate::layout::FfsLayout;
use crate::{
    BlockNo, FfsError, Ino, Result, BLOCK_BYTES, BLOCK_SECTORS, BLOCK_SECTORS_U64,
    BLOCK_SECTORS_US, INODE_BYTES,
};
use cedar_disk::{Cpu, CpuModel, DiskStats, SimClock, SimDisk};
use std::collections::{BTreeSet, HashMap};

/// The root directory's inode number.
pub const ROOT_INO: Ino = 1;

/// Longest directory-entry name.
pub const MAX_NAME: usize = 255;

/// Configuration for an FFS volume.
#[derive(Clone, Copy, Debug)]
pub struct FfsConfig {
    /// Rotational interleave: free slots left between logically
    /// consecutive data blocks (4.2 BSD shipped with 1).
    pub interleave: u32,
    /// CPU cost table for metadata operations.
    pub cpu: CpuModel,
    /// Documented per-block CPU cost of the read path (buffer cache
    /// lookup, copyout) — used by the Table 5 harness.
    pub read_block_cpu_us: u64,
    /// Per-block CPU cost of the write path (alloc + copyin), which made
    /// 4.2 BSD writes nearly CPU-bound (Table 5: 95 % CPU).
    pub write_block_cpu_us: u64,
}

impl Default for FfsConfig {
    fn default() -> Self {
        Self {
            interleave: 1,
            cpu: CpuModel::DORADO,
            read_block_cpu_us: 950,
            write_block_cpu_us: 1_650,
        }
    }
}

/// An open file.
#[derive(Clone, Debug)]
pub struct FfsFile {
    /// The inode number.
    pub ino: Ino,
    /// A snapshot of the inode.
    pub inode: Inode,
}

/// A mounted FFS volume.
pub struct Ffs {
    disk: SimDisk,
    cpu: Cpu,
    layout: FfsLayout,
    interleave: u32,
    /// Buffer cache: all blocks read or written.
    cache: HashMap<BlockNo, Vec<u8>>,
    /// Blocks with delayed writes pending.
    dirty: BTreeSet<BlockNo>,
    /// In-memory cylinder-group state (header blocks are delayed-written).
    cgs: Vec<CgState>,
    /// Groups whose bitmaps changed since the last sync.
    cg_dirty: Vec<bool>,
}

impl Ffs {
    // ----- lifecycle -----------------------------------------------------------

    /// Formats a blank disk.
    pub fn format(mut disk: SimDisk, config: FfsConfig) -> Result<Ffs> {
        let layout = FfsLayout::compute(disk.geometry());
        let cpu = Cpu::new(disk.clock(), config.cpu);
        disk.write(0, &layout.encode_superblock())?;
        let cgs: Vec<CgState> = (0..layout.groups).map(|_| CgState::new(&layout)).collect();
        let mut fs = Ffs {
            disk,
            cpu,
            layout,
            interleave: config.interleave,
            cache: HashMap::new(),
            dirty: BTreeSet::new(),
            cg_dirty: vec![true; cgs.len()],
            cgs,
        };
        // Reserve inode slots 0 (invalid) and 1 (root); create the root
        // directory.
        fs.cgs[0].alloc_inode_slot(&fs.layout);
        fs.cgs[0].alloc_inode_slot(&fs.layout);
        let now = fs.disk.clock().now();
        let mut root = Inode::new(InodeKind::Dir, now);
        root.nlink = 2;
        fs.write_inode(ROOT_INO, &root)?;
        fs.sync()?;
        Ok(fs)
    }

    /// Mounts an existing volume (reads the superblock and cg headers).
    pub fn mount(mut disk: SimDisk, config: FfsConfig) -> Result<Ffs> {
        let sb = disk.read(0, BLOCK_SECTORS_US)?;
        let layout = FfsLayout::decode_superblock(&sb).map_err(FfsError::Corrupt)?;
        let cpu = Cpu::new(disk.clock(), config.cpu);
        let mut fs = Ffs {
            disk,
            cpu,
            layout,
            interleave: config.interleave,
            cache: HashMap::new(),
            dirty: BTreeSet::new(),
            cgs: Vec::new(),
            cg_dirty: vec![false; layout.groups as usize],
        };
        for g in 0..layout.groups {
            let raw = fs.read_block(layout.cg_header(g))?;
            fs.cgs
                .push(CgState::decode(&raw).map_err(FfsError::Corrupt)?);
        }
        Ok(fs)
    }

    /// Flushes all delayed writes (data blocks, changed bitmaps).
    pub fn sync(&mut self) -> Result<()> {
        for g in 0..self.layout.groups {
            if !std::mem::take(&mut self.cg_dirty[g as usize]) {
                continue;
            }
            let block = self.layout.cg_header(g);
            let bytes = self.cgs[g as usize].encode(BLOCK_BYTES);
            self.cache.insert(block, bytes);
            self.dirty.insert(block);
        }
        let dirty: Vec<BlockNo> = std::mem::take(&mut self.dirty).into_iter().collect();
        for b in dirty {
            let bytes = self.cache[&b].clone();
            self.disk.write(b * BLOCK_SECTORS, &bytes)?;
        }
        Ok(())
    }

    // ----- accessors -----------------------------------------------------------

    /// The layout.
    pub fn layout(&self) -> &FfsLayout {
        &self.layout
    }

    /// The underlying disk.
    pub fn disk_mut(&mut self) -> &mut SimDisk {
        &mut self.disk
    }

    /// Disk statistics.
    pub fn disk_stats(&self) -> DiskStats {
        self.disk.stats()
    }

    /// Free data space, in sectors.
    pub fn free_sectors(&self) -> u64 {
        self.cgs
            .iter()
            .map(|cg| cg.free_blocks(&self.layout) as u64 * BLOCK_SECTORS_U64)
            .sum()
    }

    /// The clock.
    pub fn clock(&self) -> SimClock {
        self.disk.clock()
    }

    /// The CPU charger.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Consumes the volume, returning the disk.
    pub fn into_disk(self) -> SimDisk {
        self.disk
    }

    /// Drops every cached block (simulates a cold buffer cache). Dirty
    /// delayed writes are flushed first so no data is lost.
    pub fn drop_caches(&mut self) -> Result<()> {
        let dirty: Vec<BlockNo> = std::mem::take(&mut self.dirty).into_iter().collect();
        for b in dirty {
            if let Some(bytes) = self.cache.get(&b).cloned() {
                self.disk.write(b * BLOCK_SECTORS, &bytes)?;
            }
        }
        self.cache.clear();
        Ok(())
    }

    // ----- block and inode I/O ---------------------------------------------------

    pub(crate) fn read_block(&mut self, b: BlockNo) -> Result<Vec<u8>> {
        if let Some(bytes) = self.cache.get(&b) {
            return Ok(bytes.clone());
        }
        let bytes = self.disk.read(b * BLOCK_SECTORS, BLOCK_SECTORS_US)?;
        self.cache.insert(b, bytes.clone());
        Ok(bytes)
    }

    /// Synchronous block write (metadata path).
    fn write_block_sync(&mut self, b: BlockNo, bytes: Vec<u8>) -> Result<()> {
        assert_eq!(bytes.len(), BLOCK_BYTES);
        self.disk.write(b * BLOCK_SECTORS, &bytes)?;
        self.cache.insert(b, bytes);
        self.dirty.remove(&b);
        Ok(())
    }

    /// Delayed block write (data and bitmap path).
    fn write_block_delayed(&mut self, b: BlockNo, bytes: Vec<u8>) {
        assert_eq!(bytes.len(), BLOCK_BYTES);
        self.cache.insert(b, bytes);
        self.dirty.insert(b);
    }

    /// Reads an inode.
    pub fn read_inode(&mut self, ino: Ino) -> Result<Inode> {
        let (block, off) = self.layout.inode_location(ino);
        let bytes = self.read_block(block)?;
        Inode::decode(&bytes[off..off + INODE_BYTES])
    }

    /// Clears an inode on disk (fsck orphan repair).
    pub(crate) fn clear_inode(&mut self, ino: Ino) -> Result<()> {
        self.write_inode(ino, &Inode::free())
    }

    /// Test hook: writes an inode directly (used to fabricate the orphan
    /// state a crash between inode and directory writes leaves behind).
    #[doc(hidden)]
    pub fn write_inode_for_test(&mut self, ino: Ino, inode: &Inode) -> Result<()> {
        let g = self.layout.group_of_ino(ino) as usize;
        let slot = ino % self.layout.inodes_per_cg;
        // Mark it allocated in the bitmap too, as a real create would.
        let (w, b) = (slot as usize / 64, slot % 64);
        self.cgs[g].inode_bitmap[w] |= 1 << b;
        self.write_inode(ino, inode)
    }

    /// Replaces the in-memory cylinder-group state (fsck rebuild).
    pub(crate) fn install_cgs(&mut self, cgs: Vec<CgState>) {
        self.cg_dirty = vec![true; cgs.len()];
        self.cgs = cgs;
    }

    /// Writes an inode **synchronously** — the UNIX consistency rule.
    fn write_inode(&mut self, ino: Ino, inode: &Inode) -> Result<()> {
        let (block, off) = self.layout.inode_location(ino);
        let mut bytes = self
            .cache
            .get(&block)
            .cloned()
            .unwrap_or_else(|| vec![0u8; BLOCK_BYTES]);
        bytes[off..off + INODE_BYTES].copy_from_slice(&inode.encode());
        self.write_block_sync(block, bytes)
    }

    // ----- allocation -------------------------------------------------------------

    fn alloc_inode(&mut self, preferred_group: u32) -> Result<Ino> {
        let groups = self.layout.groups;
        for i in 0..groups {
            let g = (preferred_group + i) % groups;
            if let Some(slot) = self.cgs[g as usize].alloc_inode_slot(&self.layout) {
                self.cg_dirty[g as usize] = true;
                return Ok(slot_to_ino(&self.layout, g, slot));
            }
        }
        Err(FfsError::NoSpace)
    }

    fn free_inode(&mut self, ino: Ino) {
        let g = self.layout.group_of_ino(ino);
        self.cgs[g as usize].free_inode_slot(ino % self.layout.inodes_per_cg);
        self.cg_dirty[g as usize] = true;
    }

    /// Allocates a data block near `prev` with rotational interleave.
    fn alloc_block(&mut self, preferred_group: u32, prev: Option<BlockNo>) -> Result<BlockNo> {
        let prev_slot = prev.and_then(|b| block_to_slot(&self.layout, b));
        let groups = self.layout.groups;
        for i in 0..groups {
            let g = (preferred_group + i) % groups;
            let prev_in_g = prev_slot.and_then(|(pg, s)| (pg == g).then_some(s));
            if let Some(slot) =
                self.cgs[g as usize].alloc_block_slot(&self.layout, prev_in_g, self.interleave)
            {
                self.cg_dirty[g as usize] = true;
                return Ok(slot_to_block(&self.layout, g, slot));
            }
        }
        Err(FfsError::NoSpace)
    }

    fn free_block(&mut self, b: BlockNo) {
        if let Some((g, slot)) = block_to_slot(&self.layout, b) {
            self.cgs[g as usize].free_block_slot(slot);
            self.cg_dirty[g as usize] = true;
        }
    }

    // ----- block mapping ------------------------------------------------------------

    /// Maps logical block `i` of an inode to its disk block (0 = hole).
    pub fn bmap(&mut self, inode: &Inode, i: usize) -> Result<BlockNo> {
        if i < NDIRECT {
            return Ok(inode.direct[i]);
        }
        let i = i - NDIRECT;
        if i < PTRS_PER_BLOCK {
            if inode.indirect == 0 {
                return Ok(0);
            }
            let blk = self.read_block(inode.indirect)?;
            return Ok(u32::from_le_bytes(blk_ptr(&blk, i)));
        }
        let i = i - PTRS_PER_BLOCK;
        if i >= PTRS_PER_BLOCK * PTRS_PER_BLOCK || inode.dindirect == 0 {
            return Ok(0);
        }
        let l1 = self.read_block(inode.dindirect)?;
        let p = u32::from_le_bytes(blk_ptr(&l1, i / PTRS_PER_BLOCK));
        if p == 0 {
            return Ok(0);
        }
        let l2 = self.read_block(p)?;
        let j = i % PTRS_PER_BLOCK;
        Ok(u32::from_le_bytes(blk_ptr(&l2, j)))
    }

    /// Assigns disk block `b` as logical block `i`, allocating indirect
    /// blocks as needed (written synchronously — they are metadata).
    fn bmap_assign(&mut self, ino: Ino, inode: &mut Inode, i: usize, b: BlockNo) -> Result<()> {
        let g = self.layout.group_of_ino(ino);
        if i < NDIRECT {
            inode.direct[i] = b;
            return Ok(());
        }
        let i = i - NDIRECT;
        if i < PTRS_PER_BLOCK {
            if inode.indirect == 0 {
                inode.indirect = self.alloc_block(g, None)?;
                self.write_block_delayed(inode.indirect, vec![0u8; BLOCK_BYTES]);
            }
            let mut blk = self.read_block(inode.indirect)?;
            blk[i * 4..i * 4 + 4].copy_from_slice(&b.to_le_bytes());
            self.write_block_delayed(inode.indirect, blk);
            return Ok(());
        }
        let i = i - PTRS_PER_BLOCK;
        if inode.dindirect == 0 {
            inode.dindirect = self.alloc_block(g, None)?;
            self.write_block_delayed(inode.dindirect, vec![0u8; BLOCK_BYTES]);
        }
        let mut l1 = self.read_block(inode.dindirect)?;
        let k = i / PTRS_PER_BLOCK;
        let mut p = u32::from_le_bytes(blk_ptr(&l1, k));
        if p == 0 {
            p = self.alloc_block(g, None)?;
            self.write_block_delayed(p, vec![0u8; BLOCK_BYTES]);
            l1[k * 4..k * 4 + 4].copy_from_slice(&p.to_le_bytes());
            self.write_block_delayed(inode.dindirect, l1);
        }
        let mut l2 = self.read_block(p)?;
        let j = i % PTRS_PER_BLOCK;
        l2[j * 4..j * 4 + 4].copy_from_slice(&b.to_le_bytes());
        self.write_block_delayed(p, l2);
        Ok(())
    }

    // ----- directories ----------------------------------------------------------------

    fn read_file_bytes(&mut self, inode: &Inode) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(inode.size as usize);
        for i in 0..inode.blocks() as usize {
            let b = self.bmap(inode, i)?;
            if b == 0 {
                out.extend_from_slice(&[0u8; BLOCK_BYTES]);
            } else {
                out.extend(self.read_block(b)?);
            }
        }
        out.truncate(inode.size as usize);
        Ok(out)
    }

    fn decode_dir(bytes: &[u8]) -> Result<Vec<(Ino, String)>> {
        let mut out = Vec::new();
        let mut at = 0;
        while at + 6 <= bytes.len() {
            let ino = u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
            let len = u16::from_le_bytes([bytes[at + 4], bytes[at + 5]]) as usize;
            if ino == 0 && len == 0 {
                break; // End of directory stream.
            }
            if at + 6 + len > bytes.len() {
                return Err(FfsError::Corrupt("directory entry truncated".into()));
            }
            let name = String::from_utf8(bytes[at + 6..at + 6 + len].to_vec())
                .map_err(|_| FfsError::Corrupt("directory name not UTF-8".into()))?;
            out.push((ino, name));
            at += 6 + len;
        }
        Ok(out)
    }

    fn encode_dir(entries: &[(Ino, String)]) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        for (ino, name) in entries {
            let len = u16::try_from(name.len())
                .map_err(|_| FfsError::BadName(format!("name too long: {name:?}")))?;
            out.extend_from_slice(&ino.to_le_bytes());
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(name.as_bytes());
        }
        Ok(out)
    }

    /// Reads a directory's entries.
    pub(crate) fn read_dir(&mut self, ino: Ino) -> Result<Vec<(Ino, String)>> {
        let inode = self.read_inode(ino)?;
        if inode.kind != InodeKind::Dir {
            return Err(FfsError::NotADirectory(format!("inode {ino}")));
        }
        let bytes = self.read_file_bytes(&inode)?;
        let entries = Self::decode_dir(&bytes)?;
        self.cpu.entries(entries.len() as u64);
        Ok(entries)
    }

    /// Rewrites a directory's contents; changed blocks are written
    /// synchronously (directory updates order before the create returns).
    ///
    /// As in real FFS, a directory's size is always block-rounded and
    /// entries are self-terminating within the stream, so appending an
    /// entry into an existing block leaves the directory inode untouched
    /// on disk. The inode is (synchronously) rewritten only when blocks
    /// are added or removed — the case that must survive a crash.
    fn write_dir(&mut self, ino: Ino, entries: &[(Ino, String)]) -> Result<()> {
        let mut inode = self.read_inode(ino)?;
        let old_bytes = self.read_file_bytes(&inode)?;
        let bytes = Self::encode_dir(entries)?;
        let nblocks = bytes.len().div_ceil(BLOCK_BYTES).max(1);
        let g = self.layout.group_of_ino(ino);
        let mut prev = None;
        let mut inode_dirty = false;
        for i in 0..nblocks {
            let mut chunk = vec![0u8; BLOCK_BYTES];
            let lo = i * BLOCK_BYTES;
            let hi = (lo + BLOCK_BYTES).min(bytes.len());
            if lo < bytes.len() {
                chunk[..hi - lo].copy_from_slice(&bytes[lo..hi]);
            }
            let mut b = self.bmap(&inode, i)?;
            if b == 0 {
                b = self.alloc_block(g, prev)?;
                self.bmap_assign(ino, &mut inode, i, b)?;
                inode_dirty = true;
            }
            // Only write blocks whose full contents (including the zero
            // padding that terminates the entry stream) changed.
            let mut old_chunk = vec![0u8; BLOCK_BYTES];
            if lo < old_bytes.len() {
                let ohi = (lo + BLOCK_BYTES).min(old_bytes.len());
                old_chunk[..ohi - lo].copy_from_slice(&old_bytes[lo..ohi]);
            }
            if old_chunk != chunk {
                self.write_block_sync(b, chunk)?;
            }
            prev = Some(b);
        }
        // Free surplus blocks after a shrink.
        let old_blocks = inode.blocks() as usize;
        for i in nblocks..old_blocks {
            let b = self.bmap(&inode, i)?;
            if b != 0 {
                self.free_block(b);
            }
        }
        let new_size = (nblocks * BLOCK_BYTES) as u64;
        if inode.size != new_size {
            inode.size = new_size;
            inode_dirty = true;
        }
        if inode_dirty {
            // Block pointers changed: this must be durable before the
            // operation returns, or the new tail is unreachable.
            self.write_inode(ino, &inode)?;
        }
        Ok(())
    }

    /// Resolves a path to an inode number.
    pub fn lookup(&mut self, path: &str) -> Result<Ino> {
        let mut ino = ROOT_INO;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            self.cpu.btree_nodes(1); // Namei component cost.
            let entries = self.read_dir(ino)?;
            ino = entries
                .iter()
                .find(|(_, n)| n == comp)
                .map(|(i, _)| *i)
                .ok_or_else(|| FfsError::NotFound(path.to_string()))?;
        }
        Ok(ino)
    }

    fn split_parent(path: &str) -> Result<(&str, &str)> {
        let path = path.trim_matches('/');
        if path.is_empty() {
            return Err(FfsError::BadName("empty path".into()));
        }
        match path.rfind('/') {
            Some(i) => Ok((&path[..i], &path[i + 1..])),
            None => Ok(("", path)),
        }
    }

    fn validate_name(name: &str) -> Result<()> {
        if name.is_empty() || name.len() > MAX_NAME || name.bytes().any(|b| b == 0) {
            return Err(FfsError::BadName(name.to_string()));
        }
        Ok(())
    }

    // ----- operations ---------------------------------------------------------------

    /// Creates a directory.
    pub fn mkdir(&mut self, path: &str) -> Result<Ino> {
        self.cpu.op();
        let (parent_path, name) = Self::split_parent(path)?;
        Self::validate_name(name)?;
        let parent = self.lookup(parent_path)?;
        let mut entries = self.read_dir(parent)?;
        if entries.iter().any(|(_, n)| n == name) {
            return Err(FfsError::Exists(path.to_string()));
        }
        let g = self.layout.group_of_ino(parent);
        // FFS spreads directories across groups; simplest heuristic:
        // next group round-robin by current directory count.
        let ino = self.alloc_inode((g + 1) % self.layout.groups)?;
        let now = self.disk.clock().now();
        let mut inode = Inode::new(InodeKind::Dir, now);
        inode.nlink = 2;
        self.write_inode(ino, &inode)?;
        entries.push((ino, name.to_string()));
        self.write_dir(parent, &entries)?;
        Ok(ino)
    }

    /// Creates a file holding `data`. The §5.3 synchronous-write dance:
    /// inode first, then the directory block, then the data.
    pub fn create(&mut self, path: &str, data: &[u8]) -> Result<Ino> {
        self.cpu.op();
        let (parent_path, name) = Self::split_parent(path)?;
        Self::validate_name(name)?;
        let parent = self.lookup(parent_path)?;
        let mut entries = self.read_dir(parent)?;
        if entries.iter().any(|(_, n)| n == name) {
            return Err(FfsError::Exists(path.to_string()));
        }
        // Inode in the directory's group.
        let g = self.layout.group_of_ino(parent);
        let ino = self.alloc_inode(g)?;
        let my_group = self.layout.group_of_ino(ino);
        let now = self.disk.clock().now();
        let mut inode = Inode::new(InodeKind::File, now);
        inode.size = data.len() as u64;

        // Allocate and (delayed-)write the data blocks, interleaved.
        let nblocks = data.len().div_ceil(BLOCK_BYTES);
        let mut prev = None;
        let mut my_blocks = Vec::with_capacity(nblocks);
        for i in 0..nblocks {
            let b = self.alloc_block(my_group, prev)?;
            let mut chunk = vec![0u8; BLOCK_BYTES];
            let lo = i * BLOCK_BYTES;
            let hi = (lo + BLOCK_BYTES).min(data.len());
            chunk[..hi - lo].copy_from_slice(&data[lo..hi]);
            self.write_block_delayed(b, chunk);
            self.bmap_assign(ino, &mut inode, i, b)?;
            my_blocks.push(b);
            prev = Some(b);
        }
        self.cpu.sectors(nblocks as u64 * BLOCK_SECTORS_U64);

        // Synchronous: inode before directory, directory before return.
        self.write_inode(ino, &inode)?;
        entries.push((ino, name.to_string()));
        self.write_dir(parent, &entries)?;

        // The data itself goes out before return too (write + close),
        // block at a time.
        for b in my_blocks {
            if self.dirty.remove(&b) {
                let bytes = self.cache[&b].clone();
                self.disk.write(b * BLOCK_SECTORS, &bytes)?;
            }
        }
        Ok(ino)
    }

    /// Opens a file by path.
    pub fn open(&mut self, path: &str) -> Result<FfsFile> {
        self.cpu.op();
        let ino = self.lookup(path)?;
        let inode = self.read_inode(ino)?;
        Ok(FfsFile { ino, inode })
    }

    /// Reads a whole file, block at a time (each block is its own disk
    /// request — the 4.2 BSD I/O pattern the interleave exists for).
    pub fn read_file(&mut self, file: &FfsFile) -> Result<Vec<u8>> {
        self.cpu
            .sectors(file.inode.blocks() as u64 * BLOCK_SECTORS_U64);
        self.read_file_bytes(&file.inode)
    }

    /// Reads one logical block.
    pub fn read_block_of(&mut self, file: &FfsFile, i: usize) -> Result<Vec<u8>> {
        if i >= file.inode.blocks() as usize {
            return Err(FfsError::OutOfRange);
        }
        let b = self.bmap(&file.inode, i)?;
        self.cpu.sectors(BLOCK_SECTORS_U64);
        if b == 0 {
            Ok(vec![0u8; BLOCK_BYTES])
        } else {
            self.read_block(b)
        }
    }

    /// Removes a file.
    pub fn unlink(&mut self, path: &str) -> Result<()> {
        self.cpu.op();
        let (parent_path, name) = Self::split_parent(path)?;
        let parent = self.lookup(parent_path)?;
        let mut entries = self.read_dir(parent)?;
        let pos = entries
            .iter()
            .position(|(_, n)| n == name)
            .ok_or_else(|| FfsError::NotFound(path.to_string()))?;
        let (ino, _) = entries.remove(pos);
        let inode = self.read_inode(ino)?;
        if inode.kind == InodeKind::Dir {
            return Err(FfsError::NotADirectory(format!("{path} is a directory")));
        }
        // Free the blocks (bitmaps are delayed), clear the inode (sync),
        // rewrite the directory (sync).
        for i in 0..inode.blocks() as usize {
            let b = self.bmap(&inode, i)?;
            if b != 0 {
                self.free_block(b);
            }
        }
        if inode.indirect != 0 {
            self.free_block(inode.indirect);
        }
        if inode.dindirect != 0 {
            let l1 = self.read_block(inode.dindirect)?;
            for k in 0..PTRS_PER_BLOCK {
                let p = u32::from_le_bytes(blk_ptr(&l1, k));
                if p != 0 {
                    self.free_block(p);
                }
            }
            self.free_block(inode.dindirect);
        }
        self.write_inode(ino, &Inode::free())?;
        self.free_inode(ino);
        self.write_dir(parent, &entries)?;
        Ok(())
    }

    /// Lists a directory with each entry's inode (properties) — costing
    /// one inode-block read per ~8 files, clustered by cylinder group
    /// (the Table 4 "list 100 files = 9 I/Os" shape).
    pub fn list(&mut self, path: &str) -> Result<Vec<(String, Inode)>> {
        self.cpu.op();
        let dir = self.lookup(path)?;
        let entries = self.read_dir(dir)?;
        let mut out = Vec::with_capacity(entries.len());
        for (ino, name) in entries {
            out.push((name, self.read_inode(ino)?));
        }
        Ok(out)
    }

    /// Names in a directory without reading their inodes.
    pub fn list_names(&mut self, path: &str) -> Result<Vec<String>> {
        let dir = self.lookup(path)?;
        Ok(self.read_dir(dir)?.into_iter().map(|(_, n)| n).collect())
    }
}

fn blk_ptr(blk: &[u8], i: usize) -> [u8; 4] {
    [blk[i * 4], blk[i * 4 + 1], blk[i * 4 + 2], blk[i * 4 + 3]]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Ffs {
        Ffs::format(
            SimDisk::tiny(),
            FfsConfig {
                cpu: CpuModel::FREE,
                ..FfsConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn create_open_read_roundtrip() {
        let mut fs = tiny();
        fs.create("hello.txt", b"hi there").unwrap();
        let f = fs.open("hello.txt").unwrap();
        assert_eq!(fs.read_file(&f).unwrap(), b"hi there");
    }

    #[test]
    fn nested_directories() {
        let mut fs = tiny();
        fs.mkdir("usr").unwrap();
        fs.mkdir("usr/src").unwrap();
        fs.create("usr/src/main.c", b"int main(){}").unwrap();
        let f = fs.open("usr/src/main.c").unwrap();
        assert_eq!(fs.read_file(&f).unwrap(), b"int main(){}");
        assert!(matches!(
            fs.open("usr/bin/nope"),
            Err(FfsError::NotFound(_))
        ));
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut fs = tiny();
        fs.create("f", b"1").unwrap();
        assert!(matches!(fs.create("f", b"2"), Err(FfsError::Exists(_))));
    }

    #[test]
    fn multi_block_file_roundtrip() {
        let mut fs = tiny();
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 233) as u8).collect();
        fs.create("big", &data).unwrap();
        let f = fs.open("big").unwrap();
        assert_eq!(fs.read_file(&f).unwrap(), data);
        assert_eq!(fs.read_block_of(&f, 2).unwrap()[..], data[2048..3072]);
    }

    #[test]
    fn indirect_blocks_work() {
        let mut fs = tiny();
        // > 10 KB forces the single-indirect path.
        let data = vec![7u8; 15 * BLOCK_BYTES + 3];
        fs.create("indirect", &data).unwrap();
        let f = fs.open("indirect").unwrap();
        assert!(f.inode.indirect != 0);
        assert_eq!(fs.read_file(&f).unwrap(), data);
    }

    #[test]
    fn unlink_frees_space_and_name() {
        let mut fs = tiny();
        fs.create("f", &vec![1u8; 4096]).unwrap();
        fs.unlink("f").unwrap();
        assert!(matches!(fs.open("f"), Err(FfsError::NotFound(_))));
        // The space is reusable.
        fs.create("g", &vec![2u8; 4096]).unwrap();
        let f = fs.open("g").unwrap();
        assert_eq!(fs.read_file(&f).unwrap(), vec![2u8; 4096]);
    }

    #[test]
    fn list_returns_inodes() {
        let mut fs = tiny();
        fs.mkdir("d").unwrap();
        for i in 0..10 {
            fs.create(&format!("d/f{i}"), &vec![0u8; 100 * (i + 1)])
                .unwrap();
        }
        let l = fs.list("d").unwrap();
        assert_eq!(l.len(), 10);
        assert_eq!(l[0].1.size, 100);
        assert_eq!(l[9].1.size, 1000);
    }

    #[test]
    fn data_blocks_are_interleaved() {
        let mut fs = tiny();
        let data = vec![1u8; 4 * BLOCK_BYTES];
        fs.create("inter", &data).unwrap();
        let f = fs.open("inter").unwrap();
        let b0 = fs.bmap(&f.inode, 0).unwrap();
        let b1 = fs.bmap(&f.inode, 1).unwrap();
        let b2 = fs.bmap(&f.inode, 2).unwrap();
        assert_eq!(b1, b0 + 2, "one-slot rotational gap");
        assert_eq!(b2, b1 + 2);
    }

    #[test]
    fn create_costs_about_three_ios() {
        // Table 4: 100 small creates = 308 I/Os in 4.3 BSD.
        let mut fs = tiny();
        fs.mkdir("d").unwrap();
        fs.create("d/warm", b"w").unwrap();
        let before = fs.disk_stats();
        fs.create("d/file", b"x").unwrap();
        let delta = fs.disk_stats().since(&before);
        assert!(
            (3..=4).contains(&delta.total_ops()),
            "create cost {} I/Os: {delta:?}",
            delta.total_ops()
        );
    }

    #[test]
    fn survives_sync_and_mount() {
        let mut fs = tiny();
        fs.mkdir("d").unwrap();
        fs.create("d/keep", b"persisted").unwrap();
        fs.sync().unwrap();
        let disk = fs.into_disk();
        let mut fs2 = Ffs::mount(
            disk,
            FfsConfig {
                cpu: CpuModel::FREE,
                ..FfsConfig::default()
            },
        )
        .unwrap();
        let f = fs2.open("d/keep").unwrap();
        assert_eq!(fs2.read_file(&f).unwrap(), b"persisted");
        // Allocation state survived: new files don't tramp old ones.
        fs2.create("d/new", &vec![9u8; 3000]).unwrap();
        let f = fs2.open("d/keep").unwrap();
        assert_eq!(fs2.read_file(&f).unwrap(), b"persisted");
    }

    #[test]
    fn empty_file() {
        let mut fs = tiny();
        fs.create("empty", b"").unwrap();
        let f = fs.open("empty").unwrap();
        assert_eq!(f.inode.size, 0);
        assert_eq!(fs.read_file(&f).unwrap(), b"");
    }

    #[test]
    fn bad_names_rejected() {
        let mut fs = tiny();
        assert!(fs.create("", b"").is_err());
        assert!(fs.create("/", b"").is_err());
        assert!(fs.create(&"x".repeat(300), b"").is_err());
    }
}
