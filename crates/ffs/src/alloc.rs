//! Cylinder-group allocation: inode and block bitmaps, locality policy,
//! and rotational interleave.
//!
//! FFS places a new file's inode in its directory's cylinder group and
//! its data blocks near the inode; logically consecutive data blocks are
//! spaced `interleave` block slots apart so the CPU can start on block
//! *n* while the disk spins over the gap before *n + 1* — the mechanism
//! that caps 4.2 BSD sequential transfers near half the raw bandwidth
//! (Table 5's 47 %).

use crate::layout::FfsLayout;
use crate::{BlockNo, Ino};
use cedar_vol::codec::{Reader, Writer};

/// One cylinder group's in-memory allocation state, persisted in its
/// header block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CgState {
    /// Inode bitmap (bit set ⇒ in use).
    pub inode_bitmap: Vec<u64>,
    /// Data-block bitmap, relative to the group's first data block.
    pub block_bitmap: Vec<u64>,
}

fn get(bm: &[u64], i: u32) -> bool {
    bm[i as usize / 64] >> (i % 64) & 1 == 1
}

fn set(bm: &mut [u64], i: u32, v: bool) {
    if v {
        bm[i as usize / 64] |= 1 << (i % 64);
    } else {
        bm[i as usize / 64] &= !(1 << (i % 64));
    }
}

impl CgState {
    /// A fresh, empty group.
    pub fn new(layout: &FfsLayout) -> Self {
        Self {
            inode_bitmap: vec![0; (layout.inodes_per_cg as usize).div_ceil(64)],
            block_bitmap: vec![0; (layout.data_blocks_per_cg() as usize).div_ceil(64)],
        }
    }

    /// Allocates an inode slot within the group, returning its index.
    pub fn alloc_inode_slot(&mut self, layout: &FfsLayout) -> Option<u32> {
        (0..layout.inodes_per_cg)
            .find(|&i| !get(&self.inode_bitmap, i))
            .inspect(|&i| {
                set(&mut self.inode_bitmap, i, true);
            })
    }

    /// Frees an inode slot.
    pub fn free_inode_slot(&mut self, slot: u32) {
        set(&mut self.inode_bitmap, slot, false);
    }

    /// Returns whether an inode slot is allocated.
    pub fn inode_in_use(&self, slot: u32) -> bool {
        get(&self.inode_bitmap, slot)
    }

    /// Allocates a data block, preferring the slot `interleave + 1`
    /// positions after `prev` (rotational spacing), else the first free.
    /// Returns the index relative to the group's data start.
    pub fn alloc_block_slot(
        &mut self,
        layout: &FfsLayout,
        prev: Option<u32>,
        interleave: u32,
    ) -> Option<u32> {
        let n = layout.data_blocks_per_cg();
        if let Some(p) = prev {
            let want = p + 1 + interleave;
            if want < n && !get(&self.block_bitmap, want) {
                set(&mut self.block_bitmap, want, true);
                return Some(want);
            }
        }
        (0..n).find(|&i| !get(&self.block_bitmap, i)).inspect(|&i| {
            set(&mut self.block_bitmap, i, true);
        })
    }

    /// Frees a data block slot.
    pub fn free_block_slot(&mut self, slot: u32) {
        set(&mut self.block_bitmap, slot, false);
    }

    /// Returns whether a data block slot is allocated.
    pub fn block_in_use(&self, slot: u32) -> bool {
        get(&self.block_bitmap, slot)
    }

    /// Free data blocks remaining.
    pub fn free_blocks(&self, layout: &FfsLayout) -> u32 {
        let used: u32 = self.block_bitmap.iter().map(|w| w.count_ones()).sum();
        layout.data_blocks_per_cg() - used
    }

    /// Encodes into the group's header block.
    pub fn encode(&self, block_bytes: usize) -> Vec<u8> {
        let mut w = Writer::new();
        w.u16(u16::try_from(self.inode_bitmap.len()).unwrap_or(u16::MAX));
        for word in &self.inode_bitmap {
            w.u64(*word);
        }
        w.u16(u16::try_from(self.block_bitmap.len()).unwrap_or(u16::MAX));
        for word in &self.block_bitmap {
            w.u64(*word);
        }
        let mut b = w.into_bytes();
        assert!(b.len() <= block_bytes, "cg header overflow");
        b.resize(block_bytes, 0);
        b
    }

    /// Decodes from the group's header block.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        let mut r = Reader::new(bytes);
        let ni = r.u16()? as usize;
        let mut inode_bitmap = Vec::with_capacity(ni);
        for _ in 0..ni {
            inode_bitmap.push(r.u64()?);
        }
        let nb = r.u16()? as usize;
        let mut block_bitmap = Vec::with_capacity(nb);
        for _ in 0..nb {
            block_bitmap.push(r.u64()?);
        }
        Ok(Self {
            inode_bitmap,
            block_bitmap,
        })
    }
}

/// Converts `(group, data slot)` to an absolute block number.
pub fn slot_to_block(layout: &FfsLayout, g: u32, slot: u32) -> BlockNo {
    layout.cg_data_start(g) + slot
}

/// Converts an absolute data block back to `(group, slot)`.
pub fn block_to_slot(layout: &FfsLayout, b: BlockNo) -> Option<(u32, u32)> {
    let g = layout.group_of_block(b)?;
    (b >= layout.cg_data_start(g)).then(|| (g, b - layout.cg_data_start(g)))
}

/// Converts `(group, inode slot)` to an inode number.
pub fn slot_to_ino(layout: &FfsLayout, g: u32, slot: u32) -> Ino {
    g * layout.inodes_per_cg + slot
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_disk::DiskGeometry;

    fn layout() -> FfsLayout {
        FfsLayout::compute(&DiskGeometry::TINY)
    }

    #[test]
    fn inode_alloc_free_roundtrip() {
        let l = layout();
        let mut cg = CgState::new(&l);
        let a = cg.alloc_inode_slot(&l).unwrap();
        let b = cg.alloc_inode_slot(&l).unwrap();
        assert_ne!(a, b);
        assert!(cg.inode_in_use(a));
        cg.free_inode_slot(a);
        assert!(!cg.inode_in_use(a));
        assert_eq!(cg.alloc_inode_slot(&l), Some(a));
    }

    #[test]
    fn block_alloc_respects_interleave() {
        let l = layout();
        let mut cg = CgState::new(&l);
        let first = cg.alloc_block_slot(&l, None, 1).unwrap();
        let second = cg.alloc_block_slot(&l, Some(first), 1).unwrap();
        let third = cg.alloc_block_slot(&l, Some(second), 1).unwrap();
        assert_eq!(second, first + 2, "one-slot rotational gap");
        assert_eq!(third, second + 2);
    }

    #[test]
    fn interleave_falls_back_when_slot_taken() {
        let l = layout();
        let mut cg = CgState::new(&l);
        let a = cg.alloc_block_slot(&l, None, 1).unwrap();
        // Steal the interleaved successor.
        let want = a + 2;
        assert!(!cg.block_in_use(want));
        let _ = cg.alloc_block_slot(&l, Some(want - 2), 1).unwrap(); // Takes it.
        let next = cg.alloc_block_slot(&l, Some(a), 1).unwrap();
        assert_ne!(next, want);
    }

    #[test]
    fn exhaustion_returns_none() {
        let l = layout();
        let mut cg = CgState::new(&l);
        for _ in 0..l.data_blocks_per_cg() {
            assert!(cg.alloc_block_slot(&l, None, 0).is_some());
        }
        assert_eq!(cg.alloc_block_slot(&l, None, 0), None);
        assert_eq!(cg.free_blocks(&l), 0);
    }

    #[test]
    fn cg_state_roundtrip() {
        let l = layout();
        let mut cg = CgState::new(&l);
        cg.alloc_inode_slot(&l);
        cg.alloc_block_slot(&l, None, 1);
        let decoded = CgState::decode(&cg.encode(crate::BLOCK_BYTES)).unwrap();
        assert_eq!(decoded, cg);
    }

    #[test]
    fn slot_block_conversions() {
        let l = layout();
        let b = slot_to_block(&l, 1, 5);
        assert_eq!(block_to_slot(&l, b), Some((1, 5)));
        assert_eq!(block_to_slot(&l, 0), None);
        assert_eq!(block_to_slot(&l, l.cg_header(1)), None);
    }
}
