//! Inodes: 128 bytes, 10 direct blocks, one single-indirect and one
//! double-indirect pointer (enough for ~64 MB files at 1 KB blocks).

use crate::{BlockNo, FfsError, Result, BLOCK_BYTES, INODE_BYTES};
use cedar_vol::codec::{Reader, Writer};

/// Direct block pointers per inode.
pub const NDIRECT: usize = 10;

/// Block pointers per indirect block.
pub const PTRS_PER_BLOCK: usize = BLOCK_BYTES / 4;

/// What an inode describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum InodeKind {
    /// Unallocated.
    Free = 0,
    /// Regular file.
    File = 1,
    /// Directory.
    Dir = 2,
}

impl From<InodeKind> for u8 {
    fn from(k: InodeKind) -> u8 {
        match k {
            InodeKind::Free => 0,
            InodeKind::File => 1,
            InodeKind::Dir => 2,
        }
    }
}

/// An in-memory inode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Inode {
    /// What this inode is.
    pub kind: InodeKind,
    /// Link count.
    pub nlink: u16,
    /// File size in bytes.
    pub size: u64,
    /// Modification time (simulated microseconds).
    pub mtime: u64,
    /// Direct block pointers (0 = hole/unassigned).
    pub direct: [BlockNo; NDIRECT],
    /// Single-indirect block pointer.
    pub indirect: BlockNo,
    /// Double-indirect block pointer.
    pub dindirect: BlockNo,
}

impl Inode {
    /// A zeroed, free inode.
    pub fn free() -> Self {
        Self {
            kind: InodeKind::Free,
            nlink: 0,
            size: 0,
            mtime: 0,
            direct: [0; NDIRECT],
            indirect: 0,
            dindirect: 0,
        }
    }

    /// A fresh inode of the given kind.
    pub fn new(kind: InodeKind, mtime: u64) -> Self {
        Self {
            kind,
            nlink: 1,
            mtime,
            ..Self::free()
        }
    }

    /// Number of data blocks the size implies.
    pub fn blocks(&self) -> u32 {
        (self.size as usize).div_ceil(BLOCK_BYTES) as u32
    }

    /// Largest logical block index addressable by this format.
    pub fn max_blocks() -> usize {
        NDIRECT + PTRS_PER_BLOCK + PTRS_PER_BLOCK * PTRS_PER_BLOCK
    }

    /// Encodes into its [`INODE_BYTES`]-byte on-disk slot.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(u8::from(self.kind))
            .u16(self.nlink)
            .u64(self.size)
            .u64(self.mtime);
        for d in self.direct {
            w.u32(d);
        }
        w.u32(self.indirect).u32(self.dindirect);
        let mut b = w.into_bytes();
        debug_assert!(b.len() <= INODE_BYTES);
        b.resize(INODE_BYTES, 0);
        b
    }

    /// Decodes from a 128-byte slot.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let bad = |m: String| FfsError::Corrupt(format!("inode: {m}"));
        let kind = match r.u8().map_err(bad)? {
            0 => InodeKind::Free,
            1 => InodeKind::File,
            2 => InodeKind::Dir,
            k => return Err(FfsError::Corrupt(format!("bad inode kind {k}"))),
        };
        let nlink = r.u16().map_err(bad)?;
        let size = r.u64().map_err(bad)?;
        let mtime = r.u64().map_err(bad)?;
        let mut direct = [0u32; NDIRECT];
        for d in &mut direct {
            *d = r.u32().map_err(bad)?;
        }
        Ok(Self {
            kind,
            nlink,
            size,
            mtime,
            direct,
            indirect: r.u32().map_err(bad)?,
            dindirect: r.u32().map_err(bad)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut i = Inode::new(InodeKind::File, 42);
        i.size = 12345;
        i.direct[0] = 100;
        i.direct[9] = 900;
        i.indirect = 77;
        i.dindirect = 88;
        assert_eq!(Inode::decode(&i.encode()).unwrap(), i);
    }

    #[test]
    fn free_inode_roundtrip() {
        let i = Inode::free();
        assert_eq!(Inode::decode(&i.encode()).unwrap(), i);
    }

    #[test]
    fn blocks_from_size() {
        let mut i = Inode::new(InodeKind::File, 0);
        assert_eq!(i.blocks(), 0);
        i.size = 1;
        assert_eq!(i.blocks(), 1);
        i.size = BLOCK_BYTES as u64;
        assert_eq!(i.blocks(), 1);
        i.size = BLOCK_BYTES as u64 + 1;
        assert_eq!(i.blocks(), 2);
    }

    #[test]
    fn max_file_is_large() {
        // 10 + 256 + 65536 blocks ≈ 64 MB at 1 KB blocks.
        assert!(Inode::max_blocks() * BLOCK_BYTES > 60 << 20);
    }

    #[test]
    fn decode_rejects_garbage_kind() {
        let mut b = Inode::free().encode();
        b[0] = 9;
        assert!(Inode::decode(&b).is_err());
    }
}
