//! FFS on-disk layout: superblock and cylinder groups.
//!
//! ```text
//! block 0      superblock
//! group g:     [cg header block][inode blocks][data blocks]
//! ```
//!
//! Each cylinder group carries its own inode table and free bitmaps, so
//! related metadata and data stay radially close — the locality trick
//! McKusick et al. introduced and §7 of the Cedar paper credits for the
//! small inode traffic in the list/read benchmarks.

use crate::{BlockNo, Ino, BLOCK_BYTES, BLOCK_SECTORS, INODE_BYTES};
use cedar_disk::DiskGeometry;
use cedar_vol::codec::{Reader, Writer};

/// Magic number identifying the superblock.
pub const SB_MAGIC: u32 = 0xFF5_0011;

/// Inodes per inode block ([`INODE_BYTES`]-byte inodes).
pub const INODES_PER_BLOCK: u32 = (BLOCK_BYTES / INODE_BYTES) as u32;

/// The computed FFS layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FfsLayout {
    /// Total blocks on the volume.
    pub total_blocks: u32,
    /// Blocks per cylinder group (header + inode table + data).
    pub blocks_per_cg: u32,
    /// Inodes per cylinder group.
    pub inodes_per_cg: u32,
    /// Number of cylinder groups.
    pub groups: u32,
}

impl FfsLayout {
    /// Computes a layout: one cylinder group per two physical cylinders,
    /// with one inode per four data blocks (roughly 4 KB of data per
    /// inode, the FFS default density).
    pub fn compute(geometry: &DiskGeometry) -> Self {
        let total_blocks = geometry.total_sectors() / BLOCK_SECTORS;
        let blocks_per_cg = (geometry.sectors_per_cylinder() * 2 / BLOCK_SECTORS).max(64);
        let groups = total_blocks / blocks_per_cg; // Tail blocks unused.
        let inodes_per_cg =
            ((blocks_per_cg / 4) / INODES_PER_BLOCK * INODES_PER_BLOCK).max(INODES_PER_BLOCK);
        Self {
            total_blocks,
            blocks_per_cg,
            inodes_per_cg,
            groups,
        }
    }

    /// Blocks occupied by one group's inode table.
    pub fn inode_blocks_per_cg(&self) -> u32 {
        self.inodes_per_cg / INODES_PER_BLOCK
    }

    /// First block of cylinder group `g`.
    pub fn cg_start(&self, g: u32) -> BlockNo {
        1 + g * self.blocks_per_cg // Block 0 is the superblock.
    }

    /// The cg header block of group `g`.
    pub fn cg_header(&self, g: u32) -> BlockNo {
        self.cg_start(g)
    }

    /// First inode-table block of group `g`.
    pub fn cg_inode_start(&self, g: u32) -> BlockNo {
        self.cg_start(g) + 1
    }

    /// First data block of group `g`.
    pub fn cg_data_start(&self, g: u32) -> BlockNo {
        self.cg_inode_start(g) + self.inode_blocks_per_cg()
    }

    /// One past the last block of group `g`.
    pub fn cg_end(&self, g: u32) -> BlockNo {
        self.cg_start(g) + self.blocks_per_cg
    }

    /// Data blocks per group.
    pub fn data_blocks_per_cg(&self) -> u32 {
        self.blocks_per_cg - 1 - self.inode_blocks_per_cg()
    }

    /// Total inodes on the volume.
    pub fn total_inodes(&self) -> u32 {
        self.groups * self.inodes_per_cg
    }

    /// The group holding inode `ino`.
    pub fn group_of_ino(&self, ino: Ino) -> u32 {
        ino / self.inodes_per_cg
    }

    /// The block and byte offset holding inode `ino`.
    pub fn inode_location(&self, ino: Ino) -> (BlockNo, usize) {
        let g = self.group_of_ino(ino);
        let within = ino % self.inodes_per_cg;
        let block = self.cg_inode_start(g) + within / INODES_PER_BLOCK;
        let offset = (within % INODES_PER_BLOCK) as usize * INODE_BYTES;
        (block, offset)
    }

    /// The group holding data block `b` (`None` for the superblock or
    /// trailing unused blocks).
    pub fn group_of_block(&self, b: BlockNo) -> Option<u32> {
        if b == 0 {
            return None;
        }
        let g = (b - 1) / self.blocks_per_cg;
        (g < self.groups).then_some(g)
    }

    /// Encodes the superblock into one block.
    pub fn encode_superblock(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(SB_MAGIC)
            .u32(self.total_blocks)
            .u32(self.blocks_per_cg)
            .u32(self.inodes_per_cg)
            .u32(self.groups);
        let mut b = w.into_bytes();
        b.resize(BLOCK_BYTES, 0);
        b
    }

    /// Decodes a superblock.
    pub fn decode_superblock(bytes: &[u8]) -> Result<Self, String> {
        let mut r = Reader::new(bytes);
        if r.u32()? != SB_MAGIC {
            return Err("bad superblock magic".into());
        }
        Ok(Self {
            total_blocks: r.u32()?,
            blocks_per_cg: r.u32()?,
            inodes_per_cg: r.u32()?,
            groups: r.u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_consistent_on_trident() {
        let l = FfsLayout::compute(&DiskGeometry::TRIDENT_T300);
        assert!(l.groups > 100, "{l:?}");
        assert!(l.total_inodes() > 10_000);
        assert_eq!(
            l.blocks_per_cg,
            1 + l.inode_blocks_per_cg() + l.data_blocks_per_cg()
        );
        assert!(l.cg_end(l.groups - 1) <= l.total_blocks);
    }

    #[test]
    fn inode_locations_are_within_their_group() {
        let l = FfsLayout::compute(&DiskGeometry::TINY);
        for ino in [
            0,
            1,
            l.inodes_per_cg - 1,
            l.inodes_per_cg,
            l.total_inodes() - 1,
        ] {
            let g = l.group_of_ino(ino);
            let (block, off) = l.inode_location(ino);
            assert!(block >= l.cg_inode_start(g));
            assert!(block < l.cg_data_start(g));
            assert!(off + 128 <= BLOCK_BYTES);
        }
    }

    #[test]
    fn group_of_block_roundtrip() {
        let l = FfsLayout::compute(&DiskGeometry::TINY);
        assert_eq!(l.group_of_block(0), None);
        for g in 0..l.groups {
            assert_eq!(l.group_of_block(l.cg_start(g)), Some(g));
            assert_eq!(l.group_of_block(l.cg_end(g) - 1), Some(g));
        }
    }

    #[test]
    fn superblock_roundtrip() {
        let l = FfsLayout::compute(&DiskGeometry::TINY);
        let decoded = FfsLayout::decode_superblock(&l.encode_superblock()).unwrap();
        assert_eq!(decoded, l);
        assert!(FfsLayout::decode_superblock(&[0u8; BLOCK_BYTES]).is_err());
    }
}
