//! A BSD Fast File System (FFS) style baseline.
//!
//! The paper compares FSD against 4.3 BSD on a VAX-11/785 in Tables 4
//! (disk I/Os per operation) and 5 (%CPU and %disk-bandwidth delivered),
//! and against `fsck` for recovery time. This crate reproduces the
//! *mechanisms* those numbers come from, on the same simulated disk the
//! Cedar file systems use:
//!
//! * **cylinder groups**: inodes are placed in the same group as their
//!   directory, data blocks in the same group as their inode ("Inodes in
//!   4.3 BSD are located on the same cylinder group as their directory...
//!   A disk read fetches several inodes", §7);
//! * **synchronous metadata writes** for consistency: a create writes the
//!   inode block and the directory block to disk before returning
//!   (§5.3 citing \[Bach86\]);
//! * **rotational interleave** for data blocks: logically consecutive
//!   blocks are spaced one block slot apart so the CPU can process
//!   between transfers — capping sequential bandwidth near 50 %, the
//!   shape behind Table 5's 47 %;
//! * **fsck**: full-structure recovery — read every inode, walk every
//!   directory, rebuild the bitmaps (about seven minutes on the paper's
//!   300 MB volume).

#![deny(unsafe_code)]

pub mod alloc;
pub mod fs;
pub mod fs_impl;
pub mod fsck;
pub mod inode;
pub mod layout;

pub use fs::{Ffs, FfsConfig, FfsFile};
pub use fsck::FsckReport;
pub use inode::{Inode, InodeKind};
pub use layout::FfsLayout;

use std::fmt;

/// Block number (blocks, not sectors).
pub type BlockNo = u32;

/// Inode number.
pub type Ino = u32;

/// Sectors per FFS block.
pub const BLOCK_SECTORS: u32 = 2;

/// Sectors per FFS block, as `usize` (for buffer arithmetic).
pub const BLOCK_SECTORS_US: usize = BLOCK_SECTORS as usize;

/// Sectors per FFS block, as `u64` (for byte-offset arithmetic).
pub const BLOCK_SECTORS_U64: u64 = BLOCK_SECTORS as u64;

/// Bytes per FFS block.
pub const BLOCK_BYTES: usize = BLOCK_SECTORS_US * cedar_disk::SECTOR_BYTES;

/// Bytes per on-disk inode slot.
pub const INODE_BYTES: usize = 128;

/// Errors from FFS operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FfsError {
    /// Underlying disk failure.
    Disk(cedar_disk::DiskError),
    /// Structural damage (bad magic, bad inode, inconsistent directory).
    Corrupt(String),
    /// No such file or directory.
    NotFound(String),
    /// The path component exists but is the wrong kind.
    NotADirectory(String),
    /// A directory entry with this name already exists.
    Exists(String),
    /// Out of inodes or blocks.
    NoSpace,
    /// Bad file name (empty, contains NUL, or too long).
    BadName(String),
    /// Offset beyond the end of the file.
    OutOfRange,
}

impl fmt::Display for FfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Disk(e) => write!(f, "disk: {e}"),
            Self::Corrupt(m) => write!(f, "file system corrupt: {m}"),
            Self::NotFound(p) => write!(f, "not found: {p}"),
            Self::NotADirectory(p) => write!(f, "not a directory: {p}"),
            Self::Exists(p) => write!(f, "exists: {p}"),
            Self::NoSpace => write!(f, "no space"),
            Self::BadName(m) => write!(f, "bad name: {m}"),
            Self::OutOfRange => write!(f, "offset out of range"),
        }
    }
}

impl std::error::Error for FfsError {}

impl From<cedar_disk::DiskError> for FfsError {
    fn from(e: cedar_disk::DiskError) -> Self {
        Self::Disk(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, FfsError>;
