//! A dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! in-tree shim implements exactly the subset of proptest's API the
//! workspace's property tests use: `Strategy` with `prop_map`, range and
//! tuple strategies, `Just`, `any`, weighted `prop_oneof!`,
//! `collection::{vec, btree_set}`, the `proptest!` test macro with
//! `ProptestConfig::with_cases`, and the `prop_assert*` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * cases are generated from a PRNG seeded deterministically from the
//!   test name and case index — every run explores the same inputs, so
//!   there is no regression-file persistence (`.proptest-regressions`
//!   files are ignored);
//! * there is **no shrinking**: a failure reports the panic from the
//!   offending case directly;
//! * `prop_assert!`/`prop_assert_eq!` panic instead of returning
//!   `TestCaseError`.

#![deny(unsafe_code)]

use std::ops::Range;

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name and case index, so every test explores a
    /// distinct but reproducible input sequence.
    pub fn deterministic(name: &str, case: u64) -> Self {
        let h = name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100000001b3)
        });
        Self {
            state: h ^ case.wrapping_mul(0x9E3779B97F4A7C15),
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Multiply-shift; bias is irrelevant for test-input generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A generator of test values. The object-safe core is `sample`;
/// combinators require `Sized`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64) - (self.start as u64);
                (self.start as u64 + rng.below(span)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Full-range strategy for a primitive type (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Weighted choice among boxed strategies (built by `prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u32,
}

impl<T> OneOf<T> {
    /// Builds from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Self { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as u64) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum checked in new()")
    }
}

/// Collection strategies (`proptest::collection::{vec, btree_set}`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Vec of `len` elements, `len` uniform in `range`.
    pub struct VecStrategy<S> {
        element: S,
        range: Range<usize>,
    }

    /// A `Vec` strategy with length drawn from `range`.
    pub fn vec<S: Strategy>(element: S, range: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, range }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.range.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `BTreeSet` strategy: up to the drawn size, deduplicated.
    pub struct BTreeSetStrategy<S> {
        element: S,
        range: Range<usize>,
    }

    /// A `BTreeSet` strategy with target size drawn from `range`.
    pub fn btree_set<S>(element: S, range: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, range }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let want = self.range.sample(rng).max(1);
            let mut out = BTreeSet::new();
            // Bounded attempts: a small element domain may not have
            // `want` distinct values.
            for _ in 0..want * 4 {
                if out.len() >= want {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }
}

/// A test-case failure (the `Err` of a property body). The shim panics
/// with it instead of shrinking.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }

    /// Alias kept for API compatibility: the shim has no assumption
    /// machinery, so a rejected case fails the test.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::fail(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Weighted (or unweighted) choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, Box::new($strat) as Box<dyn $crate::Strategy<Value = _>>)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Assertion inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` that runs the body over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($config:expr; $(
        #[test]
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases as u64 {
                let mut __rng = $crate::TestRng::deterministic(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                // The body may `return Err(TestCaseError::...)`, as under
                // real proptest where it runs as a fallible closure.
                let mut __case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                if let Err(e) = __case() {
                    panic!("property failed (case {case}): {e}");
                }
            }
        }
    )*};
}

/// The usual glob import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges", 0);
        for _ in 0..1000 {
            let v = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn oneof_weights_skew_choice() {
        let s = prop_oneof![9 => Just(1u8), 1 => Just(2u8)];
        let mut rng = TestRng::deterministic("weights", 1);
        let ones = (0..1000).filter(|_| s.sample(&mut rng) == 1u8).count();
        assert!(ones > 700, "{ones} of 1000 should pick the 9-weight arm");
    }

    #[test]
    fn deterministic_across_runs() {
        let s = crate::collection::vec(any::<u8>(), 1..40);
        let a: Vec<Vec<u8>> = (0..10)
            .map(|c| s.sample(&mut TestRng::deterministic("d", c)))
            .collect();
        let b: Vec<Vec<u8>> = (0..10)
            .map(|c| s.sample(&mut TestRng::deterministic("d", c)))
            .collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(xs in crate::collection::vec(0u32..100, 1..20), y in 5u8..6) {
            prop_assert!(xs.len() < 20);
            prop_assert_eq!(y, 5u8);
        }
    }
}
