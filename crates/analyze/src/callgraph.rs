//! Workspace-wide call graph over the parsed ASTs.
//!
//! Resolution is by function name with per-crate preference: a call site in
//! crate `c` to name `f` resolves to the definitions of `f` in `c` if any
//! exist, otherwise to every workspace definition of `f`. Multiple
//! candidates are returned (conservative union) — flow rules must treat an
//! ambiguous call as possibly reaching any of them.
//!
//! Only non-aux library files contribute definitions; test helpers and
//! bench drivers never shadow library functions.

use crate::ast::{Block, FnDef};
use crate::source::SourceFile;
use std::collections::HashMap;

/// One function node: which file it came from and its definition.
#[derive(Clone, Copy, Debug)]
pub struct FnNode<'a> {
    /// Index into the file slice the graph was built from.
    pub file_idx: usize,
    /// The parsed definition.
    pub def: &'a FnDef,
}

/// Name-indexed view of every function definition in the workspace.
pub struct CallGraph<'a> {
    /// All nodes, in (file, source) order.
    pub nodes: Vec<FnNode<'a>>,
    files: &'a [SourceFile],
    by_crate_name: HashMap<&'a str, HashMap<&'a str, Vec<usize>>>,
    by_name: HashMap<&'a str, Vec<usize>>,
}

impl<'a> CallGraph<'a> {
    /// Builds the graph from non-aux files (their parse results).
    pub fn build(files: &'a [SourceFile]) -> Self {
        let mut nodes = Vec::new();
        let mut by_crate_name: HashMap<&'a str, HashMap<&'a str, Vec<usize>>> = HashMap::new();
        let mut by_name: HashMap<&'a str, Vec<usize>> = HashMap::new();
        for (file_idx, f) in files.iter().enumerate() {
            if f.is_aux {
                continue;
            }
            for def in &f.ast.fns {
                let idx = nodes.len();
                nodes.push(FnNode { file_idx, def });
                by_crate_name
                    .entry(f.crate_key.as_str())
                    .or_default()
                    .entry(def.name.as_str())
                    .or_default()
                    .push(idx);
                by_name.entry(def.name.as_str()).or_default().push(idx);
            }
        }
        Self {
            nodes,
            files,
            by_crate_name,
            by_name,
        }
    }

    /// The file a node was defined in.
    pub fn file_of(&self, node: usize) -> &'a SourceFile {
        &self.files[self.nodes[node].file_idx]
    }

    /// Resolves a call to `name` made from `from_crate`: same-crate
    /// definitions win; otherwise any workspace definition. Empty when the
    /// name is not defined in the workspace (std / primitive call).
    pub fn resolve<'s>(&'s self, from_crate: &str, name: &str) -> &'s [usize] {
        let local = self.resolve_in_crate(from_crate, name);
        if !local.is_empty() {
            return local;
        }
        self.by_name.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Resolves within one crate only (no global fallback).
    pub fn resolve_in_crate<'s>(&'s self, krate: &str, name: &str) -> &'s [usize] {
        self.by_crate_name
            .get(krate)
            .and_then(|m| m.get(name))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The node defined in `file_rel` with name `name`, if unique-ish
    /// (first match in source order).
    pub fn node_in_file(&self, file_rel: &str, name: &str) -> Option<usize> {
        self.nodes
            .iter()
            .position(|n| n.def.name == name && self.files[n.file_idx].rel == file_rel)
    }

    /// Iterates `(node index, file, def)` over all nodes.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &'a SourceFile, &'a FnDef)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (i, &self.files[n.file_idx], n.def))
    }

    /// Body of a node, if present.
    pub fn body(&self, node: usize) -> Option<&'a Block> {
        self.nodes[node].def.body.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn file(rel: &str, krate: &str, src: &str) -> SourceFile {
        SourceFile::parse(rel.into(), krate.into(), false, src)
    }

    #[test]
    fn same_crate_resolution_wins() {
        let files = vec![
            file("crates/a/src/lib.rs", "a", "pub fn go() {}\nfn helper() {}"),
            file("crates/b/src/lib.rs", "b", "fn helper() {}"),
        ];
        let g = CallGraph::build(&files);
        let a_helper = g.resolve("a", "helper");
        assert_eq!(a_helper.len(), 1);
        assert_eq!(g.file_of(a_helper[0]).crate_key, "a");
        // Cross-crate fallback: crate `c` has no `helper`, sees both.
        assert_eq!(g.resolve("c", "helper").len(), 2);
        // Unknown names resolve to nothing.
        assert!(g.resolve("a", "read_to_string").is_empty());
    }

    #[test]
    fn aux_files_do_not_define_nodes() {
        let files = vec![SourceFile::parse(
            "crates/a/tests/t.rs".into(),
            "a".into(),
            true,
            "fn helper() {}",
        )];
        let g = CallGraph::build(&files);
        assert!(g.nodes.is_empty());
    }
}
