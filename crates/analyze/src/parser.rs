//! Dependency-free recursive-descent parser for the subset of Rust the
//! flow-sensitive rules need.
//!
//! Item signatures, types, generics, attributes, and patterns are skipped
//! token-wise; function bodies are parsed into [`crate::ast`] expressions
//! with evaluation order preserved. The parser is strict about structure —
//! an unrecognized construct is an error, and the parse-every-workspace-
//! file smoke test keeps that honest — but deliberately lossy about
//! operators and types (binary chains become `Seq`, casts and prefix
//! operators fold into their operand).

use crate::ast::{Arm, Ast, Block, Expr, FieldDef, FnDef, Stmt, StructDef};
use crate::lexer::{Tok, TokKind};

/// A parse failure with its source line.
#[derive(Clone, Debug)]
pub struct ParseError {
    /// 1-based line of the offending token (or last line at EOF).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// Parses one lexed file into an AST.
pub fn parse(tokens: &[Tok]) -> Result<Ast, ParseError> {
    let mut p = Parser {
        t: tokens,
        i: 0,
        fns: Vec::new(),
        structs: Vec::new(),
        module: Vec::new(),
        owner: Vec::new(),
    };
    p.items_until(false)?;
    Ok(Ast {
        fns: p.fns,
        structs: p.structs,
    })
}

/// Keywords that never bind as pattern variable names.
const PAT_KEYWORDS: [&str; 3] = ["mut", "ref", "box"];

struct Parser<'a> {
    t: &'a [Tok],
    i: usize,
    fns: Vec<FnDef>,
    structs: Vec<StructDef>,
    module: Vec<String>,
    owner: Vec<Option<String>>,
}

impl<'a> Parser<'a> {
    // ---- token primitives -------------------------------------------------

    fn peek(&self) -> Option<&Tok> {
        self.t.get(self.i)
    }

    fn at(&self, k: usize) -> Option<&Tok> {
        self.t.get(self.i + k)
    }

    fn line(&self) -> u32 {
        self.t
            .get(self.i)
            .or_else(|| self.t.last())
            .map(|t| t.line)
            .unwrap_or(1)
    }

    fn bump(&mut self) {
        self.i += 1;
    }

    fn at_end(&self) -> bool {
        self.i >= self.t.len()
    }

    fn is_ident(&self, s: &str) -> bool {
        self.peek().map(|t| t.is_ident(s)).unwrap_or(false)
    }

    fn is_any_ident(&self) -> bool {
        self.peek()
            .map(|t| t.kind == TokKind::Ident)
            .unwrap_or(false)
    }

    fn ident_text(&self) -> Option<&str> {
        match self.peek() {
            Some(t) if t.kind == TokKind::Ident => Some(t.text.as_str()),
            _ => None,
        }
    }

    fn is_punct(&self, c: char) -> bool {
        self.peek().map(|t| t.is_punct(c)).unwrap_or(false)
    }

    fn punct2(&self, a: char, b: char) -> bool {
        self.is_punct(a) && self.at(1).map(|t| t.is_punct(b)).unwrap_or(false)
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.is_punct(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if self.is_ident(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        if self.eat_punct(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{c}`, found {}", self.describe())))
        }
    }

    fn describe(&self) -> String {
        match self.peek() {
            None => "end of file".to_string(),
            Some(t) => match &t.kind {
                TokKind::Ident => format!("`{}`", t.text),
                TokKind::Num => format!("number `{}`", t.text),
                TokKind::Str => "string literal".to_string(),
                TokKind::Lifetime => format!("lifetime `'{}`", t.text),
                TokKind::Punct(c) => format!("`{c}`"),
            },
        }
    }

    // ---- structured skips -------------------------------------------------

    /// At an opening `(`, `[`, or `{`: skips past the matching closer.
    fn skip_balanced(&mut self) -> Result<(), ParseError> {
        let (open, close) = match self.peek() {
            Some(t) if t.is_punct('(') => ('(', ')'),
            Some(t) if t.is_punct('[') => ('[', ']'),
            Some(t) if t.is_punct('{') => ('{', '}'),
            _ => return Err(self.err("expected an opening bracket")),
        };
        let mut depth = 0usize;
        while !self.at_end() {
            if self.is_punct(open) {
                depth += 1;
            } else if self.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return Ok(());
                }
            }
            self.bump();
        }
        Err(self.err(format!("unclosed `{open}`")))
    }

    /// At a `<`: skips a balanced generic-argument list, treating `->` as
    /// opaque (its `>` does not close the list).
    fn skip_generics(&mut self) -> Result<(), ParseError> {
        let mut depth = 0usize;
        while !self.at_end() {
            if self.punct2('-', '>') {
                self.bump();
                self.bump();
                continue;
            }
            if self.is_punct('<') {
                depth += 1;
            } else if self.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return Ok(());
                }
            } else if self.is_punct('(') || self.is_punct('[') {
                self.skip_balanced()?;
                continue;
            }
            self.bump();
        }
        Err(self.err("unclosed `<`"))
    }

    /// Skips one `#[...]` / `#![...]` attribute (cursor at `#`).
    fn skip_attr(&mut self) -> Result<(), ParseError> {
        self.bump(); // `#`
        self.eat_punct('!');
        if self.is_punct('[') {
            self.skip_balanced()
        } else {
            Err(self.err("expected `[` after `#`"))
        }
    }

    fn skip_attrs(&mut self) -> Result<(), ParseError> {
        while self.is_punct('#') {
            self.skip_attr()?;
        }
        Ok(())
    }

    /// Skips a type where one is syntactically required, stopping at the
    /// first token that cannot continue a type.
    fn skip_type(&mut self) -> Result<(), ParseError> {
        loop {
            if self.punct2('-', '>') {
                self.bump();
                self.bump();
                continue;
            }
            if self.punct2(':', ':') {
                self.bump();
                self.bump();
                continue;
            }
            match self.peek() {
                Some(t) if t.kind == TokKind::Ident || t.kind == TokKind::Lifetime => self.bump(),
                Some(t) if t.is_punct('&') || t.is_punct('+') || t.is_punct('!') => self.bump(),
                Some(t) if t.is_punct('*') => {
                    // Raw pointer `*const T` / `*mut T` only.
                    match self.at(1) {
                        Some(n) if n.is_ident("const") || n.is_ident("mut") => {
                            self.bump();
                            self.bump();
                        }
                        _ => return Ok(()),
                    }
                }
                Some(t) if t.is_punct('<') => self.skip_generics()?,
                Some(t) if t.is_punct('(') || t.is_punct('[') => self.skip_balanced()?,
                _ => return Ok(()),
            }
        }
    }

    /// Skips the type after `as`. Cast types take no `+` bounds
    /// (`x as usize + y` is a cast then an addition), so unlike
    /// [`Self::skip_type`] this stops at `+`.
    fn skip_cast_type(&mut self) -> Result<(), ParseError> {
        loop {
            if self.punct2(':', ':') {
                self.bump();
                self.bump();
                continue;
            }
            match self.peek() {
                Some(t) if t.kind == TokKind::Ident || t.kind == TokKind::Lifetime => self.bump(),
                Some(t) if t.is_punct('&') => self.bump(),
                Some(t) if t.is_punct('*') => match self.at(1) {
                    Some(n) if n.is_ident("const") || n.is_ident("mut") => {
                        self.bump();
                        self.bump();
                    }
                    _ => return Ok(()),
                },
                Some(t) if t.is_punct('<') => self.skip_generics()?,
                Some(t) if t.is_punct('(') || t.is_punct('[') => self.skip_balanced()?,
                _ => return Ok(()),
            }
        }
    }

    /// Skips to (and past) the next `;` at bracket depth 0.
    fn skip_to_semi(&mut self) -> Result<(), ParseError> {
        while !self.at_end() {
            if self.is_punct('(') || self.is_punct('[') || self.is_punct('{') {
                self.skip_balanced()?;
                continue;
            }
            if self.eat_punct(';') {
                return Ok(());
            }
            self.bump();
        }
        Ok(()) // Tolerate a missing trailing `;` at EOF.
    }

    // ---- items ------------------------------------------------------------

    /// Parses items until EOF (`expect_close == false`) or a closing `}`.
    fn items_until(&mut self, expect_close: bool) -> Result<(), ParseError> {
        loop {
            if expect_close && self.is_punct('}') {
                self.bump();
                return Ok(());
            }
            if self.at_end() {
                if expect_close {
                    return Err(self.err("unexpected end of file in item block"));
                }
                return Ok(());
            }
            self.item()?;
        }
    }

    fn item(&mut self) -> Result<(), ParseError> {
        self.skip_attrs()?;
        if self.eat_punct(';') {
            return Ok(());
        }
        let mut is_pub = false;
        if self.eat_ident("pub") {
            is_pub = true;
            if self.is_punct('(') {
                // `pub(crate)` / `pub(super)` / `pub(in ..)` are restricted.
                is_pub = false;
                self.skip_balanced()?;
            }
        }
        // Fn modifiers; a `const` not followed by more modifiers or `fn`
        // is a const item.
        loop {
            if self.is_ident("const") {
                let next_is_mod = matches!(
                    self.at(1),
                    Some(t) if t.is_ident("fn") || t.is_ident("unsafe")
                        || t.is_ident("async") || t.is_ident("extern")
                );
                if next_is_mod {
                    self.bump();
                    continue;
                }
                self.bump(); // const item
                return self.skip_to_semi();
            }
            if self.is_ident("async") {
                self.bump();
                continue;
            }
            if self.is_ident("unsafe") {
                // `unsafe fn` / `unsafe impl` / `unsafe trait`.
                self.bump();
                continue;
            }
            if self.is_ident("extern") {
                self.bump();
                if matches!(self.peek(), Some(t) if t.kind == TokKind::Str) {
                    self.bump();
                }
                if self.is_ident("crate") {
                    return self.skip_to_semi();
                }
                if self.is_punct('{') {
                    return self.skip_balanced(); // extern block
                }
                continue;
            }
            break;
        }
        if self.is_ident("fn") {
            return self.fn_item(is_pub);
        }
        if self.eat_ident("mod") {
            let name = self.take_ident("module name")?;
            if self.eat_punct(';') {
                return Ok(());
            }
            self.expect_punct('{')?;
            // items_until expects the cursor after `{`... but we consumed it;
            // re-enter with close expectation.
            self.module.push(name);
            let r = self.items_until(true);
            self.module.pop();
            return r;
        }
        if self.eat_ident("impl") {
            return self.impl_item();
        }
        if self.eat_ident("trait") {
            let name = self.take_ident("trait name")?;
            if self.is_punct('<') {
                self.skip_generics()?;
            }
            while !self.at_end() && !self.is_punct('{') {
                if self.is_punct('(') || self.is_punct('[') {
                    self.skip_balanced()?;
                } else if self.is_punct('<') {
                    self.skip_generics()?;
                } else {
                    self.bump();
                }
            }
            self.expect_punct('{')?;
            self.owner.push(Some(name));
            let r = self.items_until(true);
            self.owner.pop();
            return r;
        }
        if self.is_ident("struct") {
            let line = self.line();
            self.bump();
            let name = self.take_ident("type name")?;
            if self.is_punct('<') {
                self.skip_generics()?;
            }
            // Unit `;`, tuple `(..) [where ..];`, or braced `{..}` — only
            // the braced form declares named fields worth recording.
            while !self.at_end() {
                if self.eat_punct(';') {
                    return Ok(());
                }
                if self.is_punct('{') {
                    return self.struct_body(name, line);
                }
                if self.is_punct('(') || self.is_punct('[') {
                    self.skip_balanced()?;
                    continue;
                }
                if self.is_punct('<') {
                    self.skip_generics()?;
                    continue;
                }
                self.bump();
            }
            return Ok(());
        }
        if self.is_ident("enum") || self.is_ident("union") {
            self.bump();
            self.take_ident("type name")?;
            if self.is_punct('<') {
                self.skip_generics()?;
            }
            // Variants / fields are opaque to the rules.
            while !self.at_end() {
                if self.eat_punct(';') {
                    return Ok(());
                }
                if self.is_punct('{') {
                    return self.skip_balanced();
                }
                if self.is_punct('(') || self.is_punct('[') {
                    self.skip_balanced()?;
                    continue;
                }
                if self.is_punct('<') {
                    self.skip_generics()?;
                    continue;
                }
                self.bump();
            }
            return Ok(());
        }
        if self.is_ident("use") || self.is_ident("static") || self.is_ident("type") {
            self.bump();
            return self.skip_to_semi();
        }
        if self.is_ident("macro_rules") {
            self.bump();
            self.expect_punct('!')?;
            self.take_ident("macro name")?;
            self.skip_balanced()?;
            self.eat_punct(';');
            return Ok(());
        }
        // Item-position macro invocation: `path::to::mac! { .. }`.
        if self.is_any_ident() {
            let mut k = 0usize;
            while matches!(self.at(k), Some(t) if t.kind == TokKind::Ident) {
                k += 1;
                if matches!(self.at(k), Some(t) if t.is_punct(':'))
                    && matches!(self.at(k + 1), Some(t) if t.is_punct(':'))
                {
                    k += 2;
                } else {
                    break;
                }
            }
            if matches!(self.at(k), Some(t) if t.is_punct('!')) {
                self.i += k + 1;
                self.skip_balanced()?;
                self.eat_punct(';');
                return Ok(());
            }
        }
        Err(self.err(format!("unrecognized item starting at {}", self.describe())))
    }

    fn take_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek() {
            Some(t) if t.kind == TokKind::Ident => {
                let s = t.text.clone();
                self.bump();
                Ok(s)
            }
            _ => Err(self.err(format!("expected {what}, found {}", self.describe()))),
        }
    }

    fn impl_item(&mut self) -> Result<(), ParseError> {
        if self.is_punct('<') {
            self.skip_generics()?;
        }
        // Scan the header: the self type is the last ident before `{`,
        // with `for` resetting (trait impls name the trait first).
        let mut owner_name: Option<String> = None;
        while !self.at_end() && !self.is_punct('{') {
            if self.is_ident("for") {
                owner_name = None;
                self.bump();
                continue;
            }
            if self.is_ident("where") {
                while !self.at_end() && !self.is_punct('{') {
                    if self.is_punct('(') || self.is_punct('[') {
                        self.skip_balanced()?;
                    } else if self.is_punct('<') {
                        self.skip_generics()?;
                    } else {
                        self.bump();
                    }
                }
                break;
            }
            match self.peek() {
                Some(t) if t.kind == TokKind::Ident && !t.is_ident("dyn") && !t.is_ident("mut") => {
                    owner_name = Some(t.text.clone());
                    self.bump();
                }
                Some(t) if t.is_punct('<') => self.skip_generics()?,
                Some(t) if t.is_punct('(') || t.is_punct('[') => self.skip_balanced()?,
                _ => self.bump(),
            }
        }
        self.expect_punct('{')?;
        self.owner.push(owner_name);
        let r = self.items_until(true);
        self.owner.pop();
        r
    }

    /// Parses a braced struct body (cursor at `{`) and records the
    /// definition. Field types are kept as flat token-text lists.
    fn struct_body(&mut self, name: String, line: u32) -> Result<(), ParseError> {
        self.bump(); // `{`
        let mut fields = Vec::new();
        loop {
            self.skip_attrs()?;
            if self.eat_punct('}') {
                break;
            }
            if self.at_end() {
                return Err(self.err("unclosed struct body"));
            }
            if self.eat_ident("pub") && self.is_punct('(') {
                self.skip_balanced()?; // `pub(crate)` etc.
            }
            let field_line = self.line();
            let fname = self.take_ident("field name")?;
            self.expect_punct(':')?;
            // Type tokens up to a `,` or the closing `}` at depth 0;
            // `<`/`>` nesting guards commas inside generic arguments.
            let mut ty = Vec::new();
            let mut depth = 0usize;
            let mut angle = 0usize;
            loop {
                if self.at_end() {
                    return Err(self.err("unclosed struct field type"));
                }
                if depth == 0 && angle == 0 && (self.is_punct(',') || self.is_punct('}')) {
                    break;
                }
                if self.punct2('-', '>') {
                    ty.push("->".to_string());
                    self.bump();
                    self.bump();
                    continue;
                }
                if let Some(t) = self.peek() {
                    if t.is_punct('(') || t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') {
                        depth = depth.saturating_sub(1);
                    } else if t.is_punct('<') {
                        angle += 1;
                    } else if t.is_punct('>') {
                        angle = angle.saturating_sub(1);
                    }
                    ty.push(t.kind_text());
                }
                self.bump();
            }
            self.eat_punct(',');
            fields.push(FieldDef {
                name: fname,
                ty,
                line: field_line,
            });
        }
        self.structs.push(StructDef { name, fields, line });
        Ok(())
    }

    /// Parses a fn parameter list (cursor at `(`), collecting bound names
    /// (same heuristic as patterns, `self` included) and the flattened
    /// type-token texts across all parameters.
    fn fn_params(&mut self) -> Result<(Vec<String>, Vec<String>), ParseError> {
        self.expect_punct('(')?;
        let mut params = Vec::new();
        let mut tys = Vec::new();
        let mut in_type = false;
        let mut depth = 0usize;
        let mut angle = 0usize;
        loop {
            if self.at_end() {
                return Err(self.err("unclosed fn parameter list"));
            }
            if depth == 0 && angle == 0 {
                if self.is_punct(')') {
                    self.bump();
                    return Ok((params, tys));
                }
                if self.is_punct(',') {
                    in_type = false;
                    self.bump();
                    continue;
                }
                if self.is_punct(':') && !self.punct2(':', ':') {
                    in_type = true;
                    self.bump();
                    continue;
                }
            }
            if self.punct2('-', '>') {
                self.bump();
                self.bump();
                continue;
            }
            if self.is_punct('#') {
                self.skip_attr()?;
                continue;
            }
            if let Some(t) = self.peek() {
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth = depth.saturating_sub(1);
                } else if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') {
                    angle = angle.saturating_sub(1);
                } else if t.kind == TokKind::Ident {
                    let txt = t.text.clone();
                    if in_type {
                        tys.push(txt);
                    } else {
                        let lower_start = txt
                            .chars()
                            .next()
                            .map(|c| c.is_ascii_lowercase())
                            .unwrap_or(false);
                        if lower_start && !PAT_KEYWORDS.contains(&txt.as_str()) {
                            params.push(txt);
                        }
                    }
                }
            }
            self.bump();
        }
    }

    fn fn_item(&mut self, is_pub: bool) -> Result<(), ParseError> {
        let line = self.line();
        self.bump(); // `fn`
        let name = self.take_ident("function name")?;
        if self.is_punct('<') {
            self.skip_generics()?;
        }
        if !self.is_punct('(') {
            return Err(self.err(format!("expected `(` after fn {name}")));
        }
        let (params, param_tys) = self.fn_params()?;
        let mut returns_result = false;
        if self.punct2('-', '>') {
            self.bump();
            self.bump();
            // Scan the return type up to `{`, `;`, or `where`.
            loop {
                if self.at_end()
                    || self.is_punct('{')
                    || self.is_punct(';')
                    || self.is_ident("where")
                {
                    break;
                }
                if self.is_ident("Result") {
                    returns_result = true;
                }
                if self.is_punct('<') {
                    self.skip_generics()?;
                } else if self.is_punct('(') || self.is_punct('[') {
                    self.skip_balanced()?;
                } else {
                    self.bump();
                }
            }
        }
        if self.is_ident("where") {
            while !self.at_end() && !self.is_punct('{') && !self.is_punct(';') {
                if self.is_punct('(') || self.is_punct('[') {
                    self.skip_balanced()?;
                } else if self.is_punct('<') {
                    self.skip_generics()?;
                } else {
                    self.bump();
                }
            }
        }
        let (body, end_line) = if self.eat_punct(';') {
            (None, line)
        } else if self.is_punct('{') {
            let (b, end) = self.block()?;
            (Some(b), end)
        } else {
            return Err(self.err(format!("expected `{{` or `;` after fn {name} signature")));
        };
        self.fns.push(FnDef {
            name,
            module: self.module.clone(),
            owner: self.owner.last().cloned().flatten(),
            is_pub,
            returns_result,
            params,
            param_tys,
            line,
            end_line,
            body,
        });
        Ok(())
    }

    // ---- statements -------------------------------------------------------

    /// Parses a `{ ... }` block (cursor at `{`). Returns the block and the
    /// line of the closing brace.
    fn block(&mut self) -> Result<(Block, u32), ParseError> {
        self.expect_punct('{')?;
        let mut stmts = Vec::new();
        loop {
            if self.is_punct('}') {
                let end = self.line();
                self.bump();
                return Ok((Block { stmts }, end));
            }
            if self.at_end() {
                return Err(self.err("unexpected end of file in block"));
            }
            if self.is_punct('#') {
                self.skip_attr()?;
                continue;
            }
            if self.eat_punct(';') {
                continue;
            }
            // Loop labels: `'name: loop { .. }`.
            if matches!(self.peek(), Some(t) if t.kind == TokKind::Lifetime)
                && matches!(self.at(1), Some(t) if t.is_punct(':'))
            {
                self.bump();
                self.bump();
                continue;
            }
            if self.is_ident("let") {
                stmts.push(self.let_stmt()?);
                continue;
            }
            if self.starts_item_in_block() {
                self.item()?;
                continue;
            }
            let e = self.expr(false)?;
            stmts.push(Stmt::Expr(e));
            self.eat_punct(';');
        }
    }

    /// True when the current token begins a nested item rather than an
    /// expression statement.
    fn starts_item_in_block(&self) -> bool {
        let Some(text) = self.ident_text() else {
            return false;
        };
        match text {
            "fn" | "pub" | "struct" | "enum" | "union" | "impl" | "trait" | "mod" | "use"
            | "static" | "macro_rules" | "type" => true,
            // `unsafe fn` is an item; `unsafe { .. }` is an expression.
            "unsafe" => matches!(self.at(1), Some(t) if t.is_ident("fn")),
            // `const fn`/`const X: T` are items; `const { .. }` would be an
            // expression (unused in this workspace).
            "const" => !matches!(self.at(1), Some(t) if t.is_punct('{')),
            _ => false,
        }
    }

    /// Scans a pattern up to a depth-0 terminator. Collects bound names
    /// (heuristic) and whether the pattern is exactly `_`. Terminators:
    /// `=` (not `..=`), plus any of `stops` idents, `:`, or `;` if enabled.
    fn scan_pattern(
        &mut self,
        stop_colon: bool,
        stop_ident: Option<&str>,
    ) -> Result<(Vec<String>, bool), ParseError> {
        let mut names = Vec::new();
        let mut count = 0usize;
        let mut only_wild = true;
        let mut depth = 0usize;
        let mut prev_dots = 0u8; // run length of consecutive `.` puncts
        loop {
            if self.at_end() {
                return Ok((names, count == 1 && only_wild));
            }
            if depth == 0 {
                if self.is_punct(';') {
                    break;
                }
                if stop_colon && self.is_punct(':') && !self.punct2(':', ':') {
                    break;
                }
                if self.is_punct('=') && prev_dots < 2 {
                    break;
                }
                if let Some(s) = stop_ident {
                    if self.is_ident(s) {
                        break;
                    }
                }
            }
            match self.peek() {
                Some(t) if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') => {
                    depth += 1;
                    prev_dots = 0;
                    self.bump();
                }
                Some(t) if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') => {
                    depth = depth.saturating_sub(1);
                    prev_dots = 0;
                    self.bump();
                }
                // `::` consumed atomically, or the second colon of
                // `Node::Internal` would look like a type annotation.
                Some(t) if t.is_punct(':') && self.punct2(':', ':') => {
                    prev_dots = 0;
                    self.bump();
                    self.bump();
                }
                Some(t) if t.is_punct('.') => {
                    prev_dots = prev_dots.saturating_add(1);
                    self.bump();
                }
                Some(t) if t.kind == TokKind::Ident => {
                    let txt = t.text.clone();
                    let lower_start = txt
                        .chars()
                        .next()
                        .map(|c| c.is_ascii_lowercase() || c == '_')
                        .unwrap_or(false);
                    if txt != "_" {
                        only_wild = false;
                    }
                    count += 1;
                    if lower_start && !PAT_KEYWORDS.contains(&txt.as_str()) && txt != "_" {
                        names.push(txt);
                    }
                    prev_dots = 0;
                    self.bump();
                }
                Some(_) => {
                    count += 1;
                    prev_dots = 0;
                    self.bump();
                }
                None => break,
            }
        }
        Ok((names, count == 1 && only_wild))
    }

    fn let_stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        self.bump(); // `let`
        let (names, wild) = self.scan_pattern(true, None)?;
        if self.is_punct(':') {
            self.bump();
            self.skip_type()?;
        }
        let init = if self.eat_punct('=') {
            Some(self.expr(false)?)
        } else {
            None
        };
        let else_block = if self.eat_ident("else") {
            let (b, _) = self.block()?;
            Some(b)
        } else {
            None
        };
        self.eat_punct(';');
        Ok(Stmt::Let {
            names,
            wild,
            init,
            else_block,
            line,
        })
    }

    // ---- expressions ------------------------------------------------------

    /// Parses a full expression at the current binary-operator level.
    /// `no_struct` suppresses struct literals (condition/scrutinee
    /// positions, where `{` starts the block instead).
    fn expr(&mut self, no_struct: bool) -> Result<Expr, ParseError> {
        let line = self.line();
        let mut items = vec![self.operand(no_struct)?];
        loop {
            if self.eat_ident("as") {
                self.skip_cast_type()?;
                continue;
            }
            if self.punct2('.', '.') {
                self.bump();
                self.bump();
                self.eat_punct('=');
                if self.can_start_operand() {
                    items.push(self.operand(no_struct)?);
                }
                continue;
            }
            if !self.binop() {
                break;
            }
            items.push(self.operand(no_struct)?);
        }
        if items.len() == 1 {
            return Ok(items.pop().unwrap_or(Expr::Atom { line }));
        }
        Ok(Expr::Seq { items, line })
    }

    /// Consumes one binary/assignment operator if present. `=>` and `=`
    /// followed by `>` are never operators.
    fn binop(&mut self) -> bool {
        const TWO: [(char, char); 16] = [
            ('=', '='),
            ('!', '='),
            ('<', '='),
            ('>', '='),
            ('&', '&'),
            ('|', '|'),
            ('<', '<'),
            ('>', '>'),
            ('+', '='),
            ('-', '='),
            ('*', '='),
            ('/', '='),
            ('%', '='),
            ('^', '='),
            ('&', '='),
            ('|', '='),
        ];
        if self.punct2('=', '>') {
            return false;
        }
        for (a, b) in TWO {
            if self.punct2(a, b) {
                self.bump();
                self.bump();
                self.eat_punct('='); // `<<=` / `>>=`
                return true;
            }
        }
        let single = "+-*/%^&|<>=";
        if let Some(TokKind::Punct(c)) = self.peek().map(|t| &t.kind) {
            if single.contains(*c) {
                self.bump();
                return true;
            }
        }
        false
    }

    /// True when the current token can begin an operand (used to decide
    /// whether a trailing `..` has a right-hand side).
    fn can_start_operand(&self) -> bool {
        match self.peek() {
            None => false,
            Some(t) => match &t.kind {
                TokKind::Ident => !matches!(t.text.as_str(), "else" | "in" | "where"),
                TokKind::Num | TokKind::Str => true,
                TokKind::Lifetime => false,
                TokKind::Punct(c) => "([&*!-|".contains(*c),
            },
        }
    }

    /// Parses one operand: prefix operators fold into the operand, postfix
    /// (`.field`, `.method()`, `(..)`, `[..]`, `?`) chains onto it.
    fn operand(&mut self, no_struct: bool) -> Result<Expr, ParseError> {
        let line = self.line();
        // Prefix operators are transparent.
        if self.is_punct('&') {
            self.bump();
            self.eat_ident("mut");
            return self.operand(no_struct);
        }
        if self.is_punct('*') || self.is_punct('!') || self.is_punct('-') {
            self.bump();
            return self.operand(no_struct);
        }
        // Leading range: `..n`, `..=n`, bare `..`.
        if self.punct2('.', '.') {
            self.bump();
            self.bump();
            self.eat_punct('=');
            if self.can_start_operand() {
                return self.operand(no_struct);
            }
            return Ok(Expr::Atom { line });
        }
        if self.is_punct('#') {
            self.skip_attr()?;
            return self.operand(no_struct);
        }
        let base = self.operand_base(no_struct, line)?;
        self.postfix(base)
    }

    fn operand_base(&mut self, no_struct: bool, line: u32) -> Result<Expr, ParseError> {
        if self.eat_ident("move") {
            if self.is_punct('|') {
                return self.closure(line, true);
            }
            return Err(self.err("expected closure after `move`"));
        }
        if self.is_punct('|') {
            return self.closure(line, false);
        }
        if self.is_ident("if") {
            return self.if_expr();
        }
        if self.is_ident("match") {
            return self.match_expr();
        }
        if self.eat_ident("loop") {
            let (body, _) = self.block()?;
            return Ok(Expr::Loop { body, line });
        }
        if self.eat_ident("while") {
            if self.eat_ident("let") {
                self.scan_pattern(false, None)?;
                self.expect_punct('=')?;
            }
            let cond = self.expr(true)?;
            let (body, _) = self.block()?;
            return Ok(Expr::While {
                cond: Box::new(cond),
                body,
                line,
            });
        }
        if self.eat_ident("for") {
            self.scan_pattern(false, Some("in"))?;
            if !self.eat_ident("in") {
                return Err(self.err("expected `in` in for loop"));
            }
            let iter = self.expr(true)?;
            let (body, _) = self.block()?;
            return Ok(Expr::For {
                iter: Box::new(iter),
                body,
                line,
            });
        }
        if self.eat_ident("unsafe") {
            let (block, _) = self.block()?;
            return Ok(Expr::Block { block, line });
        }
        if self.eat_ident("return") {
            let value = if self.can_start_operand() || self.is_ident("if") || self.is_ident("match")
            {
                Some(Box::new(self.expr(no_struct)?))
            } else {
                None
            };
            return Ok(Expr::Ret { value, line });
        }
        if self.eat_ident("break") {
            if matches!(self.peek(), Some(t) if t.kind == TokKind::Lifetime) {
                self.bump();
            }
            if self.can_start_operand() || self.is_ident("if") || self.is_ident("match") {
                return self.expr(no_struct);
            }
            return Ok(Expr::Atom { line });
        }
        if self.eat_ident("continue") {
            if matches!(self.peek(), Some(t) if t.kind == TokKind::Lifetime) {
                self.bump();
            }
            return Ok(Expr::Atom { line });
        }
        // `let` in condition position (`if let`, `while let`, let-chains).
        if self.eat_ident("let") {
            self.scan_pattern(false, None)?;
            self.expect_punct('=')?;
            return self.expr(no_struct);
        }
        // Qualified path `<T as Trait>::method`.
        if self.is_punct('<') {
            self.skip_generics()?;
            let mut segs = vec![String::new()];
            while self.punct2(':', ':') {
                self.bump();
                self.bump();
                if self.is_punct('<') {
                    self.skip_generics()?;
                    continue;
                }
                segs.push(self.take_ident("path segment")?);
            }
            return Ok(Expr::Path { segs, line });
        }
        if self.is_any_ident() {
            return self.path_operand(no_struct, line);
        }
        match self.peek().map(|t| t.kind.clone()) {
            Some(TokKind::Num) | Some(TokKind::Str) | Some(TokKind::Lifetime) => {
                self.bump();
                Ok(Expr::Atom { line })
            }
            Some(TokKind::Punct('(')) => {
                self.bump();
                let mut items = Vec::new();
                while !self.is_punct(')') {
                    if self.at_end() {
                        return Err(self.err("unclosed `(`"));
                    }
                    items.push(self.expr(false)?);
                    if !self.eat_punct(',') {
                        break;
                    }
                }
                self.expect_punct(')')?;
                if items.len() == 1 {
                    Ok(items.pop().unwrap_or(Expr::Atom { line }))
                } else {
                    Ok(Expr::Seq { items, line })
                }
            }
            Some(TokKind::Punct('[')) => {
                self.bump();
                let mut items = Vec::new();
                while !self.is_punct(']') {
                    if self.at_end() {
                        return Err(self.err("unclosed `[`"));
                    }
                    items.push(self.expr(false)?);
                    if !self.eat_punct(',') && !self.eat_punct(';') {
                        break;
                    }
                }
                self.expect_punct(']')?;
                Ok(Expr::Seq { items, line })
            }
            Some(TokKind::Punct('{')) => {
                let (block, _) = self.block()?;
                Ok(Expr::Block { block, line })
            }
            _ => Err(self.err(format!("expected expression, found {}", self.describe()))),
        }
    }

    /// Parses a path-rooted operand: path, macro call, or struct literal.
    fn path_operand(&mut self, no_struct: bool, line: u32) -> Result<Expr, ParseError> {
        let mut segs = vec![self.take_ident("path segment")?];
        loop {
            if self.punct2(':', ':') {
                self.bump();
                self.bump();
                if self.is_punct('<') {
                    self.skip_generics()?; // Turbofish.
                    continue;
                }
                segs.push(self.take_ident("path segment")?);
                continue;
            }
            break;
        }
        // Macro invocation (`name!(..)`, `name![..]`, `name!{..}`).
        if self.is_punct('!') && !self.punct2('!', '=') {
            self.bump();
            let name = segs.last().cloned().unwrap_or_default();
            self.skip_balanced()?;
            return Ok(Expr::Macro { name, line });
        }
        if self.is_punct('{') && !no_struct {
            return self.struct_literal(segs, line);
        }
        Ok(Expr::Path { segs, line })
    }

    fn struct_literal(&mut self, segs: Vec<String>, line: u32) -> Result<Expr, ParseError> {
        self.bump(); // `{`
        let mut items = vec![Expr::Path { segs, line }];
        loop {
            if self.eat_punct('}') {
                break;
            }
            if self.at_end() {
                return Err(self.err("unclosed struct literal"));
            }
            if self.punct2('.', '.') {
                // Struct update `..base`.
                self.bump();
                self.bump();
                items.push(self.expr(false)?);
                continue;
            }
            let field_line = self.line();
            let name = self.take_ident("field name")?;
            if self.eat_punct(':') {
                items.push(self.expr(false)?);
            } else {
                items.push(Expr::Path {
                    segs: vec![name],
                    line: field_line,
                });
            }
            self.eat_punct(',');
        }
        Ok(Expr::Seq { items, line })
    }

    fn closure(&mut self, line: u32, is_move: bool) -> Result<Expr, ParseError> {
        self.expect_punct('|')?;
        // Parameters: tokens to the closing `|` at depth 0, collecting
        // bound names; `:` switches to (skipped) type position until the
        // next depth-0 `,`.
        let mut params = Vec::new();
        let mut in_type = false;
        let mut depth = 0usize;
        loop {
            if self.at_end() {
                return Err(self.err("unclosed closure parameter list"));
            }
            if depth == 0 && self.is_punct('|') {
                self.bump();
                break;
            }
            if depth == 0 && self.is_punct(',') {
                in_type = false;
                self.bump();
                continue;
            }
            if depth == 0 && self.is_punct(':') && !self.punct2(':', ':') {
                in_type = true;
                self.bump();
                continue;
            }
            if self.is_punct('(') || self.is_punct('[') {
                depth += 1;
                self.bump();
            } else if self.is_punct(')') || self.is_punct(']') {
                depth = depth.saturating_sub(1);
                self.bump();
            } else if self.is_punct('<') {
                self.skip_generics()?;
            } else {
                if !in_type {
                    if let Some(txt) = self.ident_text() {
                        let lower_start = txt
                            .chars()
                            .next()
                            .map(|c| c.is_ascii_lowercase())
                            .unwrap_or(false);
                        if lower_start && !PAT_KEYWORDS.contains(&txt) && txt != "_" {
                            params.push(txt.to_string());
                        }
                    }
                }
                self.bump();
            }
        }
        if self.punct2('-', '>') {
            self.bump();
            self.bump();
            // Explicit return type requires a block body.
            while !self.at_end() && !self.is_punct('{') {
                if self.is_punct('(') || self.is_punct('[') {
                    self.skip_balanced()?;
                } else if self.is_punct('<') {
                    self.skip_generics()?;
                } else {
                    self.bump();
                }
            }
        }
        let body = self.expr(false)?;
        Ok(Expr::Closure {
            params,
            is_move,
            body: Box::new(body),
            line,
        })
    }

    fn if_expr(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        self.bump(); // `if`
        let cond = self.expr(true)?;
        let (then, _) = self.block()?;
        let alt = if self.eat_ident("else") {
            if self.is_ident("if") {
                Some(Box::new(self.if_expr()?))
            } else {
                let alt_line = self.line();
                let (block, _) = self.block()?;
                Some(Box::new(Expr::Block {
                    block,
                    line: alt_line,
                }))
            }
        } else {
            None
        };
        Ok(Expr::If {
            cond: Box::new(cond),
            then,
            alt,
            line,
        })
    }

    fn match_expr(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        self.bump(); // `match`
        let scrutinee = self.expr(true)?;
        self.expect_punct('{')?;
        let mut arms = Vec::new();
        loop {
            if self.eat_punct('}') {
                break;
            }
            if self.at_end() {
                return Err(self.err("unclosed match block"));
            }
            self.skip_attrs()?;
            let arm_line = self.line();
            // Pattern + optional guard, up to `=>` at depth 0.
            let mut pat = Vec::new();
            let mut depth = 0usize;
            loop {
                if self.at_end() {
                    return Err(self.err("match arm without `=>`"));
                }
                if depth == 0 && self.punct2('=', '>') {
                    self.bump();
                    self.bump();
                    break;
                }
                match self.peek() {
                    Some(t) if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') => {
                        depth += 1;
                        pat.push(t.kind_text());
                        self.bump();
                    }
                    Some(t) if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') => {
                        depth = depth.saturating_sub(1);
                        pat.push(t.kind_text());
                        self.bump();
                    }
                    Some(t) => {
                        pat.push(t.kind_text());
                        self.bump();
                    }
                    None => break,
                }
            }
            // A `{ … }` body ends the arm outright: the next arm's slice
            // or tuple pattern must not postfix onto it as an index/call.
            let body = if self.is_punct('{') {
                let body_line = self.line();
                let (b, _) = self.block()?;
                Expr::Block {
                    block: b,
                    line: body_line,
                }
            } else {
                self.expr(false)?
            };
            self.eat_punct(',');
            arms.push(Arm {
                pat,
                body,
                line: arm_line,
            });
        }
        Ok(Expr::Match {
            scrutinee: Box::new(scrutinee),
            arms,
            line,
        })
    }

    fn postfix(&mut self, mut e: Expr) -> Result<Expr, ParseError> {
        loop {
            if self.is_punct('.') && !self.punct2('.', '.') {
                let line = self.at(1).map(|t| t.line).unwrap_or_else(|| self.line());
                self.bump();
                match self.peek().map(|t| t.kind.clone()) {
                    Some(TokKind::Num) => {
                        let name = self.peek().map(|t| t.text.clone()).unwrap_or_default();
                        self.bump();
                        e = Expr::Field {
                            base: Box::new(e),
                            name,
                            line,
                        };
                    }
                    Some(TokKind::Ident) => {
                        if self.is_ident("await") {
                            self.bump();
                            continue;
                        }
                        let name = self.take_ident("member name")?;
                        if self.punct2(':', ':') {
                            self.bump();
                            self.bump();
                            if self.is_punct('<') {
                                self.skip_generics()?; // `.collect::<T>()`
                            }
                        }
                        if self.is_punct('(') {
                            let args = self.args()?;
                            e = Expr::MethodCall {
                                recv: Box::new(e),
                                method: name,
                                args,
                                line,
                            };
                        } else {
                            e = Expr::Field {
                                base: Box::new(e),
                                name,
                                line,
                            };
                        }
                    }
                    _ => return Err(self.err("expected member name after `.`")),
                }
                continue;
            }
            if self.is_punct('(') {
                let line = self.line();
                let args = self.args()?;
                e = Expr::Call {
                    func: Box::new(e),
                    args,
                    line,
                };
                continue;
            }
            if self.is_punct('[') {
                let line = self.line();
                self.bump();
                let idx = if self.is_punct(']') {
                    Expr::Atom { line }
                } else {
                    self.expr(false)?
                };
                self.expect_punct(']')?;
                e = Expr::Seq {
                    items: vec![e, idx],
                    line,
                };
                continue;
            }
            if self.eat_punct('?') {
                continue;
            }
            break;
        }
        Ok(e)
    }

    fn args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect_punct('(')?;
        let mut args = Vec::new();
        loop {
            if self.eat_punct(')') {
                return Ok(args);
            }
            if self.at_end() {
                return Err(self.err("unclosed argument list"));
            }
            args.push(self.expr(false)?);
            if !self.eat_punct(',') && !self.is_punct(')') {
                return Err(self.err(format!(
                    "expected `,` or `)` in arguments, found {}",
                    self.describe()
                )));
            }
        }
    }
}

impl Tok {
    /// Text form used in pattern token lists.
    fn kind_text(&self) -> String {
        match &self.kind {
            TokKind::Ident | TokKind::Num | TokKind::Lifetime => self.text.clone(),
            TokKind::Str => "\"\"".to_string(),
            TokKind::Punct(c) => c.to_string(),
        }
    }
}
