//! Per-file source model: lexed tokens plus structural annotations the
//! rules need — which lines are test code, and which function each token
//! falls in.

use crate::ast::Ast;
use crate::lexer::{lex, Comment, Tok, TokKind};
use crate::parser;
use std::path::Path;

/// A lexed workspace file with structural annotations.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
    /// Workspace crate key (`disk`, `fsd`, …, `root` for the facade crate).
    pub crate_key: String,
    /// True for files under `tests/`, `benches/`, or `examples/` — compiled
    /// only with dev-dependencies, exempt from library-code rules.
    pub is_aux: bool,
    /// Code tokens.
    pub tokens: Vec<Tok>,
    /// Stripped comments (for `// SAFETY:` checks).
    pub comments: Vec<Comment>,
    /// Parsed AST (empty on parse failure; see `parse_error`).
    pub ast: Ast,
    /// Parse failure, if any — surfaced as a `parse-error` finding.
    pub parse_error: Option<(u32, String)>,
    /// Line ranges (inclusive) covered by `#[cfg(test)]` items or
    /// `#[test]` functions.
    test_spans: Vec<(u32, u32)>,
    /// Function spans: (name, first line, last line), innermost last.
    fn_spans: Vec<(String, u32, u32)>,
}

impl SourceFile {
    /// Lexes and annotates one file.
    pub fn parse(rel: String, crate_key: String, is_aux: bool, src: &str) -> Self {
        let lexed = lex(src);
        let test_spans = find_test_spans(&lexed.tokens);
        let fn_spans = find_fn_spans(&lexed.tokens);
        let (ast, parse_error) = match parser::parse(&lexed.tokens) {
            Ok(ast) => (ast, None),
            Err(e) => (Ast::default(), Some((e.line, e.message))),
        };
        Self {
            rel,
            crate_key,
            is_aux,
            tokens: lexed.tokens,
            comments: lexed.comments,
            ast,
            parse_error,
            test_spans,
            fn_spans,
        }
    }

    /// True if `line` is inside test-only code (or the whole file is aux).
    pub fn is_test_line(&self, line: u32) -> bool {
        self.is_aux
            || self
                .test_spans
                .iter()
                .any(|&(a, b)| (a..=b).contains(&line))
    }

    /// Name of the innermost function containing `line`, or `"-"`.
    pub fn enclosing_fn(&self, line: u32) -> &str {
        self.fn_spans
            .iter()
            .filter(|&&(_, a, b)| (a..=b).contains(&line))
            .min_by_key(|&&(_, a, b)| b - a)
            .map(|(n, _, _)| n.as_str())
            .unwrap_or("-")
    }

    /// Iterates function spans (name, start line, end line).
    pub fn fn_spans(&self) -> &[(String, u32, u32)] {
        &self.fn_spans
    }

    /// True if a comment containing `needle` ends within `within` lines
    /// above `line` (or on `line` itself).
    pub fn has_comment_above(&self, line: u32, within: u32, needle: &str) -> bool {
        self.comments
            .iter()
            .any(|c| c.end_line <= line && c.end_line + within >= line && c.text.contains(needle))
    }
}

/// Derives the file name (final path component) of `rel`.
pub fn file_name(rel: &str) -> &str {
    rel.rsplit('/').next().unwrap_or(rel)
}

/// Parses a Rust integer literal's value (`512`, `0x200`, `1_024usize`).
/// Returns `None` for floats or malformed text.
pub fn int_value(text: &str) -> Option<u128> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    let t = t
        .trim_end_matches(|c: char| c.is_ascii_alphabetic())
        .to_string();
    // Stripping alphabetic suffixes from a hex literal also strips hex
    // digits, so handle prefixed forms from the raw (underscore-free) text.
    let raw: String = text.chars().filter(|&c| c != '_').collect();
    if let Some(h) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        let h = strip_int_suffix(h, 16);
        return u128::from_str_radix(h, 16).ok();
    }
    if let Some(o) = raw.strip_prefix("0o") {
        return u128::from_str_radix(strip_int_suffix(o, 8), 8).ok();
    }
    if let Some(bn) = raw.strip_prefix("0b") {
        return u128::from_str_radix(strip_int_suffix(bn, 2), 2).ok();
    }
    if t.contains('.') {
        return None;
    }
    t.parse().ok()
}

/// Strips a type suffix (`u32`, `usize`, `i8`…) from the digits of a
/// literal in the given base.
fn strip_int_suffix(digits: &str, base: u32) -> &str {
    for suffix in [
        "usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
    ] {
        if let Some(d) = digits.strip_suffix(suffix) {
            // Only strip when what remains is still a valid number — `0x8`
            // must not lose its lone digit to a bogus suffix match.
            if !d.is_empty() && d.chars().all(|c| c.is_digit(base)) {
                return d;
            }
        }
    }
    digits
}

/// Finds line spans of `#[cfg(test)]` items and `#[test]` functions.
fn find_test_spans(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            // Collect the attribute tokens to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1;
            let mut attr = Vec::new();
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                }
                if depth > 0 {
                    attr.push(&toks[j]);
                }
                j += 1;
            }
            let is_test_attr = match attr.first() {
                Some(t) if t.is_ident("test") => true,
                Some(t) if t.is_ident("cfg") => attr.iter().any(|t| t.is_ident("test")),
                _ => false,
            };
            if is_test_attr {
                // The attributed item runs to its closing brace (or `;`).
                if let Some((start, end)) = item_span(toks, j) {
                    spans.push((toks[i].line, end));
                    let _ = start;
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    spans
}

/// From `i` (start of an item after its attributes), returns the item's
/// (start line, end line): to the matching `}` of its first brace block,
/// or to a `;` that appears before any brace.
fn item_span(toks: &[Tok], i: usize) -> Option<(u32, u32)> {
    let start = toks.get(i)?.line;
    let mut j = i;
    while j < toks.len() {
        if toks[j].is_punct(';') {
            return Some((start, toks[j].line));
        }
        if toks[j].is_punct('{') {
            let mut depth = 1;
            let mut k = j + 1;
            while k < toks.len() && depth > 0 {
                if toks[k].is_punct('{') {
                    depth += 1;
                } else if toks[k].is_punct('}') {
                    depth -= 1;
                }
                k += 1;
            }
            let end = toks.get(k.saturating_sub(1)).map(|t| t.line)?;
            return Some((start, end));
        }
        j += 1;
    }
    None
}

/// Finds (name, start line, end line) for every `fn` item.
fn find_fn_spans(toks: &[Tok]) -> Vec<(String, u32, u32)> {
    let mut spans = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue; // `fn(` in a function-pointer type.
        }
        if let Some((start, end)) = item_span(toks, i) {
            spans.push((name_tok.text.clone(), start, end));
        }
    }
    spans
}

/// Classifies a workspace-relative path into (crate key, is_aux).
/// Returns `None` for paths outside any crate's source tree.
pub fn classify(rel: &str) -> Option<(String, bool)> {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates", krate, "src", ..] => Some(((*krate).to_string(), false)),
        ["crates", krate, kind, ..] if matches!(*kind, "tests" | "benches" | "examples") => {
            Some(((*krate).to_string(), true))
        }
        ["src", ..] => Some(("root".to_string(), false)),
        [kind, ..] if matches!(*kind, "tests" | "benches" | "examples") => {
            Some(("root".to_string(), true))
        }
        _ => None,
    }
}

/// Reads and parses one file under `root` given its relative path.
pub fn load(root: &Path, rel: &str) -> std::io::Result<SourceFile> {
    let src = std::fs::read_to_string(root.join(rel))?;
    let (crate_key, is_aux) = classify(rel).unwrap_or_else(|| ("root".to_string(), true));
    Ok(SourceFile::parse(rel.to_string(), crate_key, is_aux, &src))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_spans_cover_cfg_test_mod() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let f = SourceFile::parse("crates/x/src/l.rs".into(), "x".into(), false, src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn test_attr_fn_is_test() {
        let src = "#[test]\nfn t() {\n  boom();\n}\nfn lib() {}\n";
        let f = SourceFile::parse("crates/x/src/l.rs".into(), "x".into(), false, src);
        assert!(f.is_test_line(3));
        assert!(!f.is_test_line(5));
    }

    #[test]
    fn enclosing_fn_finds_innermost() {
        let src = "fn outer() {\n  fn inner() {\n    x();\n  }\n}\n";
        let f = SourceFile::parse("crates/x/src/l.rs".into(), "x".into(), false, src);
        assert_eq!(f.enclosing_fn(3), "inner");
        assert_eq!(f.enclosing_fn(1), "outer");
    }

    #[test]
    fn int_values_parse() {
        assert_eq!(int_value("512"), Some(512));
        assert_eq!(int_value("0x200"), Some(512));
        assert_eq!(int_value("1_024usize"), Some(1024));
        assert_eq!(int_value("0b1000"), Some(8));
        assert_eq!(int_value("3.5"), None);
        assert_eq!(int_value("0x8"), Some(8));
    }

    #[test]
    fn classify_paths() {
        assert_eq!(
            classify("crates/fsd/src/log.rs"),
            Some(("fsd".into(), false))
        );
        assert_eq!(
            classify("crates/fsd/tests/t.rs"),
            Some(("fsd".into(), true))
        );
        assert_eq!(classify("src/lib.rs"), Some(("root".into(), false)));
        assert_eq!(classify("examples/q.rs"), Some(("root".into(), true)));
        assert_eq!(classify("target/debug/x.rs"), None);
    }

    #[test]
    fn aux_files_are_all_test() {
        let f = SourceFile::parse("crates/x/tests/t.rs".into(), "x".into(), true, "fn a() {}");
        assert!(f.is_test_line(1));
    }
}
