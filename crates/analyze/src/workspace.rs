//! Workspace discovery: walks `crates/*/{src,tests,benches,examples}` and
//! the root crate's `src/`, `tests/`, `examples/`, loading every `.rs`
//! file in deterministic order.

use crate::config::Config;
use crate::source::{self, SourceFile};
use crate::AnalyzeError;
use std::path::{Path, PathBuf};

/// Loads every workspace source file under `root`.
pub fn load_workspace(root: &Path, _config: &Config) -> Result<Vec<SourceFile>, AnalyzeError> {
    if !root.join("crates").is_dir() {
        return Err(AnalyzeError::BadRoot(format!(
            "{} has no crates/ directory",
            root.display()
        )));
    }
    let mut rels = Vec::new();
    let crates_dir = root.join("crates");
    for krate in sorted_dirs(&crates_dir)? {
        for kind in ["src", "tests", "benches", "examples"] {
            collect_rs(
                &root.join("crates").join(&krate).join(kind),
                root,
                &mut rels,
            )?;
        }
    }
    for kind in ["src", "tests", "examples", "benches"] {
        collect_rs(&root.join(kind), root, &mut rels)?;
    }
    rels.sort();
    let mut files = Vec::with_capacity(rels.len());
    for rel in rels {
        // Fixture workspaces inside `tests/fixtures` of the analyze crate
        // are scanned as aux files of their containing crate; skip them —
        // they contain deliberate violations.
        if rel.contains("/fixtures/") {
            continue;
        }
        files.push(source::load(root, &rel).map_err(|e| AnalyzeError::Io(format!("{rel}: {e}")))?);
    }
    Ok(files)
}

/// Sorted immediate subdirectory names of `dir`.
fn sorted_dirs(dir: &Path) -> Result<Vec<String>, AnalyzeError> {
    let mut out = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| AnalyzeError::Io(format!("{}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| AnalyzeError::Io(e.to_string()))?;
        if entry.path().is_dir() {
            if let Some(name) = entry.file_name().to_str() {
                out.push(name.to_string());
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Recursively collects workspace-relative paths of `.rs` files under `dir`.
fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> Result<(), AnalyzeError> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut stack: Vec<PathBuf> = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries =
            std::fs::read_dir(&d).map_err(|e| AnalyzeError::Io(format!("{}: {e}", d.display())))?;
        for entry in entries {
            let entry = entry.map_err(|e| AnalyzeError::Io(e.to_string()))?;
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                if let Ok(rel) = p.strip_prefix(root) {
                    let rel = rel
                        .to_str()
                        .map(|s| s.replace('\\', "/"))
                        .unwrap_or_default();
                    if !rel.is_empty() {
                        out.push(rel);
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_this_workspace() {
        // The analyze crate lives at <root>/crates/analyze.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let files = load_workspace(root, &Config::cedar()).expect("load");
        assert!(files.iter().any(|f| f.rel == "crates/fsd/src/log.rs"));
        assert!(files.iter().any(|f| f.rel == "src/lib.rs"));
        // Fixture workspaces are excluded.
        assert!(files.iter().all(|f| !f.rel.contains("/fixtures/")));
        // Aux classification.
        let log = files.iter().find(|f| f.rel == "crates/fsd/src/log.rs");
        assert!(log.is_some_and(|f| !f.is_aux && f.crate_key == "fsd"));
    }
}
