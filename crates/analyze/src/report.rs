//! Finding presentation: a human-readable table grouped by rule, plus
//! hand-rolled JSON and SARIF 2.1.0 encodings (no serde — the analyzer is
//! dependency-free). The SARIF output is the machine-readable interchange
//! form CI uploads as an artifact, so code-review tooling can annotate
//! findings in place.

use crate::Finding;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A completed analysis run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Findings in deterministic (rule, file, line) order — unallowed
    /// findings plus stale-allowlist entries.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub n_files: usize,
    /// Per-family wall time in milliseconds, in execution order (empty
    /// unless the caller recorded timings — keeps the growing analyzer
    /// debuggable as families are added).
    pub timings: Vec<(String, u128)>,
}

impl Report {
    /// Assembles a report from unallowed and stale findings.
    pub fn new(kept: Vec<Finding>, stale: Vec<Finding>, n_files: usize) -> Self {
        let mut findings = kept;
        findings.extend(stale);
        findings.sort_by(|a, b| {
            (a.rule, &a.file, a.line, &a.snippet).cmp(&(b.rule, &b.file, b.line, &b.snippet))
        });
        Self {
            findings,
            n_files,
            timings: Vec::new(),
        }
    }

    /// True if the run is clean (exit code 0).
    pub fn ok(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable table, grouped by rule, with per-family wall time
    /// when the run recorded it.
    pub fn human(&self) -> String {
        let mut out = String::new();
        if !self.timings.is_empty() {
            let cells: Vec<String> = self
                .timings
                .iter()
                .map(|(fam, ms)| format!("{fam} {ms}ms"))
                .collect();
            let _ = writeln!(out, "rule timings: {}", cells.join(", "));
        }
        if self.ok() {
            let _ = writeln!(
                out,
                "cedar-lint: {} files scanned, no findings",
                self.n_files
            );
            return out;
        }
        let mut by_rule: BTreeMap<&str, Vec<&Finding>> = BTreeMap::new();
        for f in &self.findings {
            by_rule.entry(f.rule).or_default().push(f);
        }
        for (rule, group) in &by_rule {
            let _ = writeln!(out, "{rule} ({} finding(s))", group.len());
            for f in group {
                let loc = if f.line == 0 {
                    f.file.clone()
                } else {
                    format!("{}:{}", f.file, f.line)
                };
                let _ = writeln!(out, "  {loc} [{}] {}", f.item, f.message);
            }
        }
        let _ = writeln!(
            out,
            "cedar-lint: {} files scanned, {} finding(s) across {} rule(s)",
            self.n_files,
            self.findings.len(),
            by_rule.len()
        );
        out
    }

    /// JSON encoding of the report.
    pub fn json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"files_scanned\":{},\"ok\":{},\"findings\":[",
            self.n_files,
            self.ok()
        );
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"item\":\"{}\",\
                 \"snippet\":\"{}\",\"message\":\"{}\"}}",
                escape(f.rule),
                escape(&f.file),
                f.line,
                escape(&f.item),
                escape(&f.snippet),
                escape(&f.message)
            );
        }
        out.push_str("]}");
        out
    }

    /// SARIF 2.1.0 encoding: one run, one result per finding. The driver
    /// advertises the full [`crate::RULE_IDS`] registry (plus any ad-hoc
    /// rule a finding carries), so clean runs still tell downstream
    /// tooling which checks ran. Findings without a line
    /// (allowlist-level) report line 1 — SARIF regions are 1-based.
    pub fn sarif(&self) -> String {
        let mut rules: Vec<&str> = crate::RULE_IDS.to_vec();
        rules.extend(self.findings.iter().map(|f| f.rule));
        rules.sort_unstable();
        rules.dedup();
        let mut out = String::from("{");
        out.push_str("\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",");
        out.push_str("\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{");
        out.push_str("\"name\":\"cedar-lint\",\"rules\":[");
        for (i, r) in rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"id\":\"{}\"}}", escape(r));
        }
        out.push_str("]}},\"results\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"ruleId\":\"{}\",\"level\":\"error\",\
                 \"message\":{{\"text\":\"{}\"}},\"locations\":[{{\
                 \"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
                 \"region\":{{\"startLine\":{}}}}}}}]}}",
                escape(f.rule),
                escape(&f.message),
                escape(&f.file),
                f.line.max(1)
            );
        }
        out.push_str("]}]}");
        out
    }
}

/// JSON string escaping.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: u32) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line,
            item: "f".into(),
            snippet: "s".into(),
            message: "m \"quoted\"".into(),
        }
    }

    #[test]
    fn clean_report() {
        let r = Report::new(vec![], vec![], 10);
        assert!(r.ok());
        assert!(r.human().contains("no findings"));
        assert!(r.json().contains("\"ok\":true"));
    }

    #[test]
    fn findings_sorted_and_grouped() {
        let r = Report::new(
            vec![
                finding("cast-safety", "b.rs", 2),
                finding("cast-safety", "a.rs", 9),
            ],
            vec![finding("stale-allowlist", "z.rs", 0)],
            3,
        );
        assert!(!r.ok());
        assert_eq!(r.findings[0].file, "a.rs");
        let human = r.human();
        assert!(human.contains("cast-safety (2 finding(s))"));
        assert!(human.contains("stale-allowlist (1 finding(s))"));
        // Line-0 findings render without a :0 suffix.
        assert!(human.contains("  z.rs ["));
    }

    #[test]
    fn json_escapes_quotes() {
        let r = Report::new(vec![finding("x", "a.rs", 1)], vec![], 1);
        assert!(r.json().contains("m \\\"quoted\\\""));
    }

    #[test]
    fn sarif_shape_and_rule_dedup() {
        let r = Report::new(
            vec![
                finding("wal-order", "a.rs", 3),
                finding("wal-order", "b.rs", 7),
            ],
            vec![],
            2,
        );
        let s = r.sarif();
        assert!(s.contains("\"version\":\"2.1.0\""));
        assert!(s.contains("\"name\":\"cedar-lint\""));
        // One rule entry despite two findings.
        assert_eq!(s.matches("{\"id\":\"wal-order\"}").count(), 1);
        assert_eq!(s.matches("\"ruleId\":\"wal-order\"").count(), 2);
        assert!(s.contains("\"uri\":\"a.rs\""));
        assert!(s.contains("\"startLine\":3"));
    }

    #[test]
    fn sarif_clamps_line_zero() {
        let r = Report::new(vec![finding("x", "a.rs", 0)], vec![], 1);
        assert!(r.sarif().contains("\"startLine\":1"));
    }

    #[test]
    fn sarif_clean_run_has_empty_results_but_full_rule_registry() {
        let s = Report::new(vec![], vec![], 4).sarif();
        assert!(s.contains("\"results\":[]"));
        // Every registered rule id is advertised even with no findings —
        // including the concurrency family.
        for id in crate::RULE_IDS {
            assert!(s.contains(&format!("{{\"id\":\"{id}\"}}")), "missing {id}");
        }
    }
}
