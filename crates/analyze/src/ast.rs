//! Lightweight Rust AST produced by [`crate::parser`] — just enough
//! structure for flow-sensitive rules: function bodies as statement lists,
//! expressions with calls / method chains / branches, and match arms with
//! their raw pattern tokens.
//!
//! The AST is deliberately lossy: types, generics, operators, and patterns
//! are reduced to what the rules inspect. Operand order is preserved
//! (left-to-right evaluation order), which is what the write-ahead rule
//! depends on.

/// Parsed file: every `fn` found anywhere in the file (top level, inside
/// `impl`/`trait` blocks, inline modules, or nested in bodies), in source
/// order, plus every braced `struct` definition.
#[derive(Clone, Debug, Default)]
pub struct Ast {
    /// All function definitions.
    pub fns: Vec<FnDef>,
    /// All braced `struct` definitions (tuple/unit structs omitted —
    /// the concurrency rules only reason about named shared fields).
    pub structs: Vec<StructDef>,
}

/// A braced `struct` definition.
#[derive(Clone, Debug)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Named fields in declaration order.
    pub fields: Vec<FieldDef>,
    /// Line of the `struct` keyword.
    pub line: u32,
}

/// One named struct field.
#[derive(Clone, Debug)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// Type as a flat token-text list (`Mutex < Signal >` →
    /// `["Mutex", "<", "Signal", ">"]`) — enough to classify the leading
    /// wrapper and search for embedded sync types.
    pub ty: Vec<String>,
    /// Line of the field name.
    pub line: u32,
}

/// One `fn` definition.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Enclosing inline `mod` path within the file (often empty).
    pub module: Vec<String>,
    /// Enclosing `impl`/`trait` type name, if any (`FsdVolume` for
    /// `impl FsdVolume { fn f() }`).
    pub owner: Option<String>,
    /// True only for unrestricted `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// True if the declared return type mentions `Result`.
    pub returns_result: bool,
    /// Parameter binding names in order (`self` included for methods;
    /// pattern parameters contribute their bound idents).
    pub params: Vec<String>,
    /// Parameter type token texts, flattened across all parameters —
    /// lossy, but enough to ask "does any parameter mention `FsdVolume`".
    pub param_tys: Vec<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Line of the closing brace (or the `;` for bodyless declarations).
    pub end_line: u32,
    /// Body; `None` for trait method declarations.
    pub body: Option<Block>,
}

/// A `{ ... }` statement list.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// One statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `let pat[: ty] [= init] [else { .. }];`
    Let {
        /// Lower-case identifiers bound by the pattern (heuristic: every
        /// lowercase-initial ident that is not `mut`/`ref`/`box`).
        names: Vec<String>,
        /// True when the pattern is exactly `_`.
        wild: bool,
        /// Initializer, if present.
        init: Option<Expr>,
        /// `else` block of a let-else.
        else_block: Option<Block>,
        /// Line of the `let`.
        line: u32,
    },
    /// Expression statement (trailing `;` or not).
    Expr(Expr),
}

/// One match arm.
#[derive(Clone, Debug)]
pub struct Arm {
    /// Raw pattern (and guard) token texts; punctuation as single chars,
    /// string literals as `""`.
    pub pat: Vec<String>,
    /// Arm body.
    pub body: Expr,
    /// Line of the first pattern token.
    pub line: u32,
}

/// An expression. Prefix operators, casts, parentheses, and `?` are folded
/// into their operand; binary chains become [`Expr::Seq`].
#[derive(Clone, Debug)]
pub enum Expr {
    /// Path expression `a::b::c` (bare idents included).
    Path {
        /// Path segments.
        segs: Vec<String>,
        /// Line of the first segment.
        line: u32,
    },
    /// Call `callee(args)`.
    Call {
        /// Callee expression (usually a `Path`).
        func: Box<Expr>,
        /// Arguments in order.
        args: Vec<Expr>,
        /// Line of the opening paren.
        line: u32,
    },
    /// Method call `recv.name(args)`.
    MethodCall {
        /// Receiver.
        recv: Box<Expr>,
        /// Method name.
        method: String,
        /// Arguments in order.
        args: Vec<Expr>,
        /// Line of the method name.
        line: u32,
    },
    /// Field access `base.name` (tuple indices included).
    Field {
        /// Base expression.
        base: Box<Expr>,
        /// Field name.
        name: String,
        /// Line of the field name.
        line: u32,
    },
    /// Operand sequence in evaluation order: binary chains, tuples, array
    /// literals, struct literals (path first, then field values), and
    /// indexing (`base` then index). Operators are dropped.
    Seq {
        /// Operands in evaluation order.
        items: Vec<Expr>,
        /// Line of the first operand.
        line: u32,
    },
    /// Block expression (incl. `unsafe { .. }`).
    Block {
        /// The block.
        block: Block,
        /// Line of the opening brace.
        line: u32,
    },
    /// `if cond { then } [else alt]` (alt is a Block or a nested If).
    If {
        /// Condition (with any `let` pattern stripped).
        cond: Box<Expr>,
        /// Then block.
        then: Block,
        /// Else branch.
        alt: Option<Box<Expr>>,
        /// Line of the `if`.
        line: u32,
    },
    /// `match scrutinee { arms }`.
    Match {
        /// Scrutinee.
        scrutinee: Box<Expr>,
        /// Arms in order.
        arms: Vec<Arm>,
        /// Line of the `match`.
        line: u32,
    },
    /// `loop { body }`.
    Loop {
        /// Body.
        body: Block,
        /// Line of the `loop`.
        line: u32,
    },
    /// `while cond { body }` (incl. `while let`).
    While {
        /// Condition.
        cond: Box<Expr>,
        /// Body.
        body: Block,
        /// Line of the `while`.
        line: u32,
    },
    /// `for pat in iter { body }`.
    For {
        /// Iterated expression.
        iter: Box<Expr>,
        /// Body.
        body: Block,
        /// Line of the `for`.
        line: u32,
    },
    /// Closure `[move] |args| body`.
    Closure {
        /// Identifiers bound by the parameter list (same heuristic as
        /// `Stmt::Let` pattern names).
        params: Vec<String>,
        /// True for `move |..|` closures.
        is_move: bool,
        /// Body expression.
        body: Box<Expr>,
        /// Line of the opening `|`.
        line: u32,
    },
    /// `return [value]`.
    Ret {
        /// Returned value.
        value: Option<Box<Expr>>,
        /// Line of the `return`.
        line: u32,
    },
    /// Macro invocation; contents are opaque.
    Macro {
        /// Last path segment of the macro name.
        name: String,
        /// Line of the macro name.
        line: u32,
    },
    /// Literal, `continue`, bare `break`, or other leaf.
    Atom {
        /// Source line.
        line: u32,
    },
}

impl Expr {
    /// Source line of the expression.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Path { line, .. }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Field { line, .. }
            | Expr::Seq { line, .. }
            | Expr::Block { line, .. }
            | Expr::If { line, .. }
            | Expr::Match { line, .. }
            | Expr::Loop { line, .. }
            | Expr::While { line, .. }
            | Expr::For { line, .. }
            | Expr::Closure { line, .. }
            | Expr::Ret { line, .. }
            | Expr::Macro { line, .. }
            | Expr::Atom { line } => *line,
        }
    }

    /// The simple name an expression ends in: `self.log` → `log`,
    /// `log` → `log`, `a::b::c` → `c`. `None` for anything structured.
    pub fn last_name(&self) -> Option<&str> {
        match self {
            Expr::Path { segs, .. } => segs.last().map(|s| s.as_str()),
            Expr::Field { name, .. } => Some(name.as_str()),
            _ => None,
        }
    }

    /// For a `Call`, the callee's final path segment (`sched::execute` →
    /// `execute`). `None` for non-path callees.
    pub fn callee_name(&self) -> Option<&str> {
        match self {
            Expr::Call { func, .. } => func.last_name(),
            _ => None,
        }
    }
}

/// Calls `f` on every expression in the block, depth-first, in evaluation
/// order (receivers before arguments, scrutinees before arms).
pub fn walk_block(b: &Block, f: &mut impl FnMut(&Expr)) {
    for s in &b.stmts {
        match s {
            Stmt::Let {
                init, else_block, ..
            } => {
                if let Some(e) = init {
                    walk_expr(e, f);
                }
                if let Some(eb) = else_block {
                    walk_block(eb, f);
                }
            }
            Stmt::Expr(e) => walk_expr(e, f),
        }
    }
}

/// Calls `f` on `e` and every sub-expression, depth-first pre-order.
pub fn walk_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Path { .. } | Expr::Macro { .. } | Expr::Atom { .. } => {}
        Expr::Call { func, args, .. } => {
            walk_expr(func, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::MethodCall { recv, args, .. } => {
            walk_expr(recv, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Field { base, .. } => walk_expr(base, f),
        Expr::Seq { items, .. } => {
            for it in items {
                walk_expr(it, f);
            }
        }
        Expr::Block { block, .. } => walk_block(block, f),
        Expr::If {
            cond, then, alt, ..
        } => {
            walk_expr(cond, f);
            walk_block(then, f);
            if let Some(a) = alt {
                walk_expr(a, f);
            }
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            walk_expr(scrutinee, f);
            for arm in arms {
                walk_expr(&arm.body, f);
            }
        }
        Expr::Loop { body, .. } => walk_block(body, f),
        Expr::While { cond, body, .. } => {
            walk_expr(cond, f);
            walk_block(body, f);
        }
        Expr::For { iter, body, .. } => {
            walk_expr(iter, f);
            walk_block(body, f);
        }
        Expr::Closure { body, .. } => walk_expr(body, f),
        Expr::Ret { value, .. } => {
            if let Some(v) = value {
                walk_expr(v, f);
            }
        }
    }
}
