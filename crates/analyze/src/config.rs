//! Rule configuration: the workspace's layer map and rule scopes, as data.
//!
//! Everything repo-specific lives here so fixture tests can run the same
//! rules over synthetic workspaces.

use std::collections::BTreeMap;

/// A duplicated-constant pattern for the const-consistency rule.
#[derive(Clone, Debug)]
pub struct KnownConst {
    /// The literal value that must not be written out by hand.
    pub value: u128,
    /// The canonical constant to use instead.
    pub const_name: &'static str,
    /// Crates the rule applies in (empty = all crates).
    pub crates: Vec<&'static str>,
    /// Files allowed to spell the literal (the definition site).
    pub defining_files: Vec<&'static str>,
}

/// Full rule configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// crate key -> workspace crates it may import (by `use` ident, e.g.
    /// `cedar_disk`). Crates absent from the map are unconstrained.
    pub allowed_imports: BTreeMap<&'static str, Vec<&'static str>>,
    /// Crates whose non-test code may perform raw sector I/O on a disk
    /// receiver.
    pub raw_io_crates: Vec<&'static str>,
    /// Method names that constitute raw sector I/O on a `…disk` receiver.
    pub io_methods: Vec<&'static str>,
    /// Batch-submission discipline: (file, functions) forming the
    /// multi-sector commit/recovery hot paths. A raw disk call inside one
    /// of these functions is a finding — those paths must submit through
    /// `cedar_disk::sched` batches so barriers and C-SCAN ordering apply.
    /// Deliberate single-sector or replica-fallback readers (`read_meta`,
    /// `read_boot_page`, `read_saved_vam`) are simply not listed.
    pub batch_io_fns: Vec<(&'static str, Vec<&'static str>)>,
    /// Files (by relative path) allowed to address log-region sectors.
    pub log_region_files: Vec<&'static str>,
    /// Identifier tokens that address the log region.
    pub log_region_idents: Vec<&'static str>,
    /// Crates covered by the panic-freedom ratchet.
    pub panic_crates: Vec<&'static str>,
    /// Crates covered by the cast-safety rule.
    pub cast_crates: Vec<&'static str>,
    /// Layout constants whose width-changing `as` casts are flagged
    /// (name, defining files where the cast is permitted).
    pub cast_const_idents: Vec<(&'static str, Vec<&'static str>)>,
    /// Duplicated-constant patterns.
    pub known_consts: Vec<KnownConst>,
    /// Method names that force/write on the commit path (used by the
    /// error-flow rule's must-handle set).
    pub force_methods: Vec<&'static str>,
    /// Crates whose `src/lib.rs` must carry `#![deny(unsafe_code)]`.
    pub deny_unsafe_crates: Vec<&'static str>,
    /// wal-order: files whose unrestricted-`pub` fns are the commit-unit
    /// entry points (the `FsdVolume` public API).
    pub wal_entry_files: Vec<&'static str>,
    /// wal-order: files exempt from the rule (recovery redoes home writes
    /// from the log itself, so it writes homes without a fresh append).
    pub wal_exempt_files: Vec<&'static str>,
    /// wal-order: (receiver name, method) pairs that append to the redo
    /// log — the events that establish write-ahead protection.
    pub wal_append_calls: Vec<(&'static str, &'static str)>,
    /// wal-order: free functions that write home/leader/name-table
    /// sectors — the events that require protection.
    pub wal_write_fns: Vec<&'static str>,
    /// repl-order: files whose `pub` fns seal replication frames (the
    /// `FsdVolume` commit path).
    pub repl_entry_files: Vec<&'static str>,
    /// repl-order: calls that seal a record-carrying frame for the
    /// shipper; each must be dominated by a `wal_append_calls` event.
    pub repl_seal_fns: Vec<&'static str>,
    /// repl-order: data-only seal helpers exempt from the domination
    /// rule (their frames carry no log records).
    pub repl_opaque_fns: Vec<&'static str>,
    /// repl-order: shipping-layer files where home-sector writes are
    /// forbidden — replica redo (`repl/replica.rs`) is the only writer.
    pub repl_ship_files: Vec<&'static str>,
    /// repl-order: write calls forbidden in the shipping layer.
    pub repl_write_fns: Vec<&'static str>,
    /// barrier-discipline: (file, functions) where every `IoBatch` that is
    /// executed must have called `barrier()` first (commit-record writes
    /// go in the post-barrier window).
    pub barrier_fns: Vec<(&'static str, Vec<&'static str>)>,
    /// batch-io: callees that are deliberate single-sector/replica
    /// fallback readers, exempt from the indirect raw-I/O check.
    pub batch_io_fallback_fns: Vec<&'static str>,
    /// error-flow: files forming the force/flush/recovery paths where
    /// `Result` values must not be silently discarded.
    pub error_flow_files: Vec<&'static str>,
    /// error-flow: (file, functions) that probe replicas / torn records
    /// and legitimately treat errors as data; exempt from the rule.
    pub error_flow_fallback_fns: Vec<(&'static str, Vec<&'static str>)>,
    /// error-flow: method names (beyond `io_methods`/`force_methods`)
    /// whose `Result` must be handled on those paths.
    pub error_must_handle: Vec<&'static str>,
    /// error-flow: error-type idents whose variants a catch-all match arm
    /// must not swallow.
    pub error_type_idents: Vec<&'static str>,
    /// fs-api: (file, trait name) of the shared-reference service trait —
    /// every method inside that trait block must take `&self`.
    pub fs_trait: (&'static str, &'static str),
    /// concurrency: files forming the threaded engine, where the
    /// guard-across-blocking-call check applies (lock-order cycles are
    /// checked workspace-wide).
    pub concurrency_files: Vec<&'static str>,
    /// concurrency: blocking method names a guard must not be live
    /// across, directly or anywhere in the callee chain. Distinct from
    /// `force_methods`: that list includes `write`, which collides with
    /// `RwLock::write` in the engine.
    pub blocking_methods: Vec<&'static str>,
    /// concurrency: free functions that acquire and return a lock guard
    /// (the engine's poison-recovering `plock`). Their own bodies are not
    /// summarized — the lock is named by the call-site argument.
    pub lock_acquire_fns: Vec<&'static str>,
    /// concurrency: leading receiver segments stripped when naming a lock
    /// (`self.shared.signal` and `shared.signal` are the same lock).
    pub lock_root_segs: Vec<&'static str>,
    /// concurrency: shared structs to verify with the field access
    /// matrix — (defining file, struct name, plain fields exempted with a
    /// documented reason). Every other field must be a `Mutex`/`RwLock`
    /// (touched only to lock it), an atomic (touched only through its
    /// methods), an `Arc` (COW clone/deref is safe), or a sync object.
    pub shared_structs: Vec<(&'static str, &'static str, Vec<&'static str>)>,
    /// concurrency: field types with interior synchronization beyond the
    /// lock/atomic wrappers (safe to touch from any thread).
    pub sync_types: Vec<&'static str>,
    /// concurrency: atomic fields that publish state before a wake —
    /// stores need `Release`/`AcqRel`/`SeqCst`, loads need
    /// `Acquire`/`SeqCst`.
    pub publish_atomics: Vec<&'static str>,
    /// concurrency: types owned by the writer thread; a function with a
    /// parameter naming one must be unreachable from client entry points.
    pub owned_types: Vec<&'static str>,
    /// concurrency: (file, type) whose methods are client-thread entry
    /// points for the role-reachability check.
    pub client_entry_owners: Vec<(&'static str, &'static str)>,
    /// concurrency: lifecycle methods exempt from role reachability —
    /// they run before the writer thread starts or after it is joined.
    pub role_setup_fns: Vec<&'static str>,
    /// taint: files forming the recovery trust boundary — the only files
    /// where taint findings are *emitted* (summaries are computed
    /// workspace-wide so flows through shared helpers still resolve).
    pub taint_files: Vec<&'static str>,
    /// taint: call names whose results are raw on-disk bytes or values
    /// decoded from them (the taint sources). Listed by last path
    /// segment; resolution-independent so taint survives plumbing the
    /// call graph cannot see (buffers, channels).
    pub taint_source_calls: Vec<&'static str>,
    /// taint: method/fn names whose *result* is safe regardless of the
    /// receiver (bounded accessors, checked conversions, in-memory
    /// lengths). `retain` additionally sanitizes its receiver in place.
    pub taint_sanitizer_methods: Vec<&'static str>,
    /// taint: validator functions — a call sanitizes the receiver and
    /// every argument (`runs_sane(layout, &entry)` vouches for `entry`;
    /// `meta.validate(log_size)` vouches for `meta`). The rule trusts
    /// the callee to reject out-of-range values with a typed error.
    pub taint_validator_calls: Vec<&'static str>,
    /// taint: sink calls — panic-prone or region-critical operations a
    /// tainted value must never steer. The second element is the
    /// dangerous argument position (`None` = any argument); for
    /// `write_checked` only the address (arg 0) matters — writing
    /// tainted *bytes* to a validated address is exactly what redo does.
    pub taint_sink_calls: Vec<(&'static str, Option<usize>)>,
    /// taint: mutating collection methods that taint their receiver when
    /// the *first* argument is tainted. First-argument-only encodes the
    /// control/data split: `map.insert(addr, img)` taints the map only
    /// if the key (an address that will steer I/O) is tainted, not when
    /// merely the payload bytes are.
    pub taint_collect_methods: Vec<&'static str>,
    /// decode-coverage: (defining file, type, field) triples naming
    /// on-disk struct fields that steer recovery. Each must be mentioned
    /// inside a validator fn body or sit adjacent to a comparison /
    /// sanitizer method somewhere in library code. A triple whose
    /// defining file or type is absent from the scanned tree is skipped
    /// (fixture workspaces stay independent).
    pub decode_fields: Vec<(&'static str, &'static str, &'static str)>,
}

impl Config {
    /// The Cedar workspace's configuration.
    pub fn cedar() -> Self {
        let mut allowed_imports: BTreeMap<&'static str, Vec<&'static str>> = BTreeMap::new();
        // The layer cake, bottom to top. A crate may import strictly
        // lower layers; `bench`, the CLI and the facade go through the
        // `FileSystem` trait for file operations (enforced separately by
        // the raw-I/O check) but may name lower crates for setup.
        // `loom` is in-tree: `disk`'s scan channel model-checks against
        // its shims under `--features loom`.
        allowed_imports.insert("disk", vec!["loom"]);
        allowed_imports.insert("btree", vec![]);
        allowed_imports.insert("proptest", vec![]);
        allowed_imports.insert("loom", vec![]);
        allowed_imports.insert("analyze", vec![]);
        allowed_imports.insert("vol", vec!["cedar_disk"]);
        allowed_imports.insert("model", vec!["cedar_disk"]);
        allowed_imports.insert("cfs", vec!["cedar_disk", "cedar_vol", "cedar_btree"]);
        // `loom` is the in-tree model checker: the engine's sync module
        // re-exports its shims under `--features loom`.
        allowed_imports.insert(
            "fsd",
            vec!["cedar_disk", "cedar_vol", "cedar_btree", "loom"],
        );
        allowed_imports.insert("ffs", vec!["cedar_disk", "cedar_vol"]);
        allowed_imports.insert("workload", vec!["cedar_disk", "cedar_vol"]);
        allowed_imports.insert(
            "bench",
            vec![
                "cedar_disk",
                "cedar_vol",
                "cedar_cfs",
                "cedar_fsd",
                "cedar_ffs",
                "cedar_model",
                "cedar_workload",
            ],
        );
        allowed_imports.insert(
            "root",
            vec![
                "cedar_disk",
                "cedar_btree",
                "cedar_vol",
                "cedar_cfs",
                "cedar_fsd",
                "cedar_ffs",
                "cedar_model",
                "cedar_workload",
                "cedar_fs_repro",
            ],
        );
        Self {
            allowed_imports,
            raw_io_crates: vec!["disk", "btree", "vol", "cfs", "fsd", "ffs"],
            io_methods: vec![
                "read",
                "write",
                "read_checked",
                "write_checked",
                "write_with_labels",
                "read_allow_damage",
                "read_labels",
                "write_labels",
            ],
            batch_io_fns: vec![
                ("crates/fsd/src/log.rs", vec!["append", "write_meta"]),
                (
                    "crates/fsd/src/volume.rs",
                    vec![
                        "force",
                        "flush_third",
                        "sync_home_all",
                        "write_boot_pages",
                        "save_vam_and_mark_valid",
                    ],
                ),
                ("crates/fsd/src/recovery.rs", vec!["redo_phase"]),
            ],
            log_region_files: vec![
                "crates/fsd/src/log.rs",
                "crates/fsd/src/recovery.rs",
                "crates/fsd/src/layout.rs",
            ],
            log_region_idents: vec!["log_start", "log_sectors"],
            panic_crates: vec!["disk", "btree", "vol", "cfs", "fsd", "ffs", "analyze"],
            cast_crates: vec!["disk", "btree", "vol", "cfs", "fsd", "ffs"],
            cast_const_idents: vec![
                ("SECTOR_BYTES", vec!["crates/disk/src/lib.rs"]),
                ("BLOCK_SECTORS", vec!["crates/ffs/src/lib.rs"]),
                ("INODES_PER_BLOCK", vec!["crates/ffs/src/layout.rs"]),
                ("INODE_BYTES", vec!["crates/ffs/src/lib.rs"]),
            ],
            known_consts: vec![
                KnownConst {
                    value: 512,
                    const_name: "cedar_disk::SECTOR_BYTES",
                    // The analyzer and the proptest shim legitimately spell
                    // 512 (this table, shrink budgets); everything that
                    // touches sectors must use the constant.
                    crates: vec![
                        "disk", "btree", "vol", "cfs", "fsd", "ffs", "model", "workload", "bench",
                        "root",
                    ],
                    defining_files: vec!["crates/disk/src/lib.rs"],
                },
                KnownConst {
                    value: 1024,
                    const_name: "cedar_ffs::BLOCK_BYTES",
                    crates: vec!["ffs"],
                    defining_files: vec!["crates/ffs/src/lib.rs"],
                },
                KnownConst {
                    value: 128,
                    const_name: "cedar_ffs::INODE_BYTES",
                    crates: vec!["ffs"],
                    defining_files: vec!["crates/ffs/src/lib.rs"],
                },
            ],
            force_methods: vec![
                "write",
                "write_checked",
                "write_with_labels",
                "write_labels",
                "force",
                "append",
                "write_meta",
            ],
            deny_unsafe_crates: vec![
                "disk", "btree", "vol", "cfs", "fsd", "ffs", "model", "workload", "bench",
                "proptest", "analyze", "loom", "root",
            ],
            wal_entry_files: vec!["crates/fsd/src/volume.rs"],
            // Recovery and scavenge rebuild home sectors from the log (or
            // from leader pages) — by construction they run before any new
            // WAL records exist, so the write-ahead obligation does not
            // apply to them.
            wal_exempt_files: vec!["crates/fsd/src/recovery.rs", "crates/fsd/src/scavenge.rs"],
            wal_append_calls: vec![("log", "append")],
            wal_write_fns: vec!["write_home_batch"],
            repl_entry_files: vec!["crates/fsd/src/volume.rs"],
            repl_seal_fns: vec!["seal_repl_frame"],
            // The data-only frame replicates unlogged data-page writes
            // (§5.2 writes them direct-to-disk); it carries no records,
            // so there is no append for it to follow.
            repl_opaque_fns: vec!["seal_repl_data_frame"],
            repl_ship_files: vec![
                "crates/fsd/src/repl/mod.rs",
                "crates/fsd/src/repl/session.rs",
                "crates/fsd/src/repl/shipper.rs",
            ],
            repl_write_fns: vec![
                "write",
                "write_checked",
                "write_with_labels",
                "write_labels",
                "write_home_batch",
                "redo_leaders",
            ],
            barrier_fns: vec![
                ("crates/fsd/src/log.rs", vec!["append"]),
                ("crates/fsd/src/layout.rs", vec!["write_replicas"]),
            ],
            batch_io_fallback_fns: vec!["read_meta", "read_boot_page", "read_saved_vam"],
            error_flow_files: vec![
                "crates/fsd/src/log.rs",
                "crates/fsd/src/volume.rs",
                "crates/fsd/src/recovery.rs",
                "crates/fsd/src/sched.rs",
                "crates/fsd/src/engine.rs",
                "crates/fsd/src/spare.rs",
                "crates/fsd/src/scavenge.rs",
                "crates/disk/src/sched.rs",
                "crates/disk/src/scan.rs",
            ],
            error_flow_fallback_fns: vec![
                (
                    "crates/fsd/src/log.rs",
                    vec!["read_meta", "read_record_at", "scan_records"],
                ),
                (
                    "crates/fsd/src/recovery.rs",
                    vec!["read_boot_page", "read_saved_vam", "redo_leaders"],
                ),
                // The scavenger is a deliberate best-effort reader: it
                // salvages what it can from damaged media and records the
                // rest as losses, so swallowed per-sector errors are the
                // point, not a bug.
                (
                    "crates/fsd/src/scavenge.rs",
                    vec!["scan_leaders", "old_boot_hint"],
                ),
                // Engine teardown joins the log-writer best-effort; a
                // panicked writer already poisoned the engine, so the
                // join result adds nothing.
                ("crates/fsd/src/engine.rs", vec!["drop"]),
            ],
            error_must_handle: vec!["execute", "execute_partial"],
            error_type_idents: vec!["DiskError", "FsdError"],
            fs_trait: ("crates/vol/src/fs.rs", "FileSystem"),
            concurrency_files: vec![
                "crates/fsd/src/engine.rs",
                "crates/fsd/src/sched.rs",
                "crates/disk/src/scan.rs",
                "crates/fsd/src/scavenge.rs",
                "crates/fsd/src/repl/shipper.rs",
            ],
            blocking_methods: vec![
                "wait",
                "wait_timeout",
                "wait_while",
                "recv",
                "recv_timeout",
                "join",
                "force",
            ],
            lock_acquire_fns: vec!["plock"],
            lock_root_segs: vec!["self", "shared"],
            shared_structs: vec![
                // `cfg` is written once in `start()` before the writer
                // thread spawns and is read-only after that.
                ("crates/fsd/src/engine.rs", "EngineShared", vec!["cfg"]),
                ("crates/fsd/src/engine.rs", "Slot", vec![]),
                ("crates/fsd/src/engine.rs", "ClientQueue", vec![]),
                ("crates/fsd/src/engine.rs", "FsdEngine", vec![]),
                // `cfg` is written once before the shipper thread spawns
                // and read-only after that (mode, retry policy).
                (
                    "crates/fsd/src/repl/shipper.rs",
                    "ShipperShared",
                    vec!["cfg"],
                ),
                // `capacity` is set at construction and never written
                // again; reads from any thread see the same value.
                ("crates/disk/src/scan.rs", "ScanChannel", vec!["capacity"]),
            ],
            // `Pacer` serializes itself on an internal `Mutex<Instant>`.
            sync_types: vec!["Condvar", "Pacer"],
            publish_atomics: vec!["epoch"],
            owned_types: vec!["FsdVolume"],
            client_entry_owners: vec![
                ("crates/fsd/src/engine.rs", "FsdEngine"),
                ("crates/vol/src/fs.rs", "Session"),
            ],
            role_setup_fns: vec![
                "start",
                "start_replicated",
                "start_inner",
                "shutdown",
                "shutdown_arc",
                "shutdown_replicated",
                "stop_writer",
                "stop_shipper",
                "drop",
            ],
            taint_files: vec![
                "crates/fsd/src/recovery.rs",
                "crates/fsd/src/scavenge.rs",
                "crates/fsd/src/log.rs",
                "crates/fsd/src/spare.rs",
                "crates/fsd/src/cache.rs",
                "crates/cfs/src/scavenge.rs",
            ],
            taint_source_calls: vec![
                "read_allow_damage",
                "read_labels",
                "into_data_mask",
                "into_labels",
                "read_chunks",
                "recv",
                "decode",
                "decode_header",
                "decode_end",
                "read_meta",
            ],
            taint_sanitizer_methods: vec![
                "retain", "min", "clamp", "len", "is_empty", "sectors", "count", "get", "try_from",
                "try_into", "position",
            ],
            taint_validator_calls: vec!["runs_sane", "validate", "check_range"],
            taint_sink_calls: vec![
                // Layout address math asserts on out-of-range pages.
                ("nt_a_sector", Some(0)),
                ("nt_b_sector", Some(0)),
                // VAM bitmap ops panic on out-of-range sectors.
                ("allocate_run", Some(0)),
                ("free_run", Some(0)),
                // Allocation sized by a tainted length is an OOM.
                ("with_capacity", Some(0)),
                ("resize", Some(0)),
                ("copy_from_slice", Some(0)),
                // Address-steered I/O: the batch/map carries the targets.
                ("write_checked", Some(0)),
                ("write_home_batch", Some(3)),
                ("scrub_batch", Some(3)),
                ("redo_leaders", Some(3)),
                ("read_allow_damage", Some(1)),
                ("with_entries", Some(1)),
                ("execute", Some(2)),
                ("execute_partial", Some(2)),
            ],
            taint_collect_methods: vec![
                "insert",
                "push",
                "push_back",
                "extend",
                "extend_from_slice",
                "append",
                "send",
            ],
            decode_fields: vec![
                ("crates/fsd/src/log.rs", "LogMeta", "oldest_offset"),
                ("crates/fsd/src/log.rs", "PageTarget", "page"),
                ("crates/fsd/src/log.rs", "PageTarget", "sector"),
                ("crates/fsd/src/log.rs", "PageTarget", "addr"),
                ("crates/fsd/src/log.rs", "PageTarget", "index"),
                ("crates/fsd/src/layout.rs", "FsdBootPage", "spare_map"),
                ("crates/fsd/src/entry.rs", "FileEntry", "leader_addr"),
                ("crates/fsd/src/entry.rs", "FileEntry", "run_table"),
                ("crates/cfs/src/header.rs", "FileHeader", "byte_size"),
                ("crates/cfs/src/header.rs", "FileHeader", "run_table"),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cedar_config_is_coherent() {
        let c = Config::cedar();
        // Every raw-I/O crate is a known crate in the import map.
        for k in &c.raw_io_crates {
            assert!(c.allowed_imports.contains_key(k), "{k} missing");
        }
        // The log module itself must be allowed to address the log.
        assert!(c.log_region_files.contains(&"crates/fsd/src/log.rs"));
        // The checker lints itself.
        assert!(c.panic_crates.contains(&"analyze"));
        assert!(c.deny_unsafe_crates.contains(&"analyze"));
    }
}
