//! `cedar-analyze`: an in-tree static invariant checker for the Cedar FS
//! workspace.
//!
//! The paper's reliability story rests on protocol obligations the Rust
//! compiler cannot see: the log append must precede the home write, only
//! the log module may address log-region sectors, the name table is
//! always double-written, recovery must never panic mid-redo. This crate
//! states those obligations as machine-checked rules over the workspace
//! source. It is dependency-free (no crates.io access, so no `syn`): a
//! hand-rolled lexer feeds both the token-level rules and a
//! recursive-descent parser ([`parser`]) whose lightweight AST ([`ast`])
//! and workspace call graph ([`callgraph`]) power the flow-sensitive
//! rules. A file the parser cannot handle is itself a finding
//! (`parse-error`) — nothing silently escapes analysis.
//!
//! Rule families (each finding carries its rule id):
//!
//! * **layering** — import DAG between workspace crates, raw sector I/O
//!   confined to the volume layer, log-region addressing confined to
//!   `cedar_fsd::{log, recovery}`.
//! * **wal-order** — every call path from a public `FsdVolume` op to a
//!   home-sector write must be dominated by a `Log::append`/force in the
//!   same commit unit (the §4 write-ahead rule, checked as a fixpoint
//!   over per-function summaries).
//! * **barrier-discipline** / **batch-io** — an `IoBatch` on a
//!   configured commit path must `barrier()` before its commit window
//!   executes; raw disk calls (direct or one helper deep) on the
//!   multi-sector hot paths must go through `cedar_disk::sched` batches.
//! * **error-flow** — no `let _ =`/`.ok()` discards of `Result` on
//!   force/flush/recovery paths, and no `_ =>` arms swallowing
//!   `DiskError`/`FsdError` variants.
//! * **panic-ratchet** — no `unwrap()/expect()/panic!()` in non-test
//!   library code; existing sites live in a checked-in allowlist that only
//!   shrinks (new sites and stale entries both fail) and covers every
//!   rule family.
//! * **lock-graph** — an interprocedural lock graph: held-lock sets are
//!   threaded through the call graph (fixpoint over function summaries),
//!   so acquisition-order cycles across files and guards live across a
//!   blocking call (`force`, condvar waits, channel recv, join) anywhere
//!   in the callee chain are findings. The condvar hand-off
//!   (`cvar.wait(guard)`) is the sanctioned exception.
//! * **thread-roles** — the engine's shared structs get a field access
//!   matrix: every touch of a shared field is through its owning
//!   `Mutex`/`RwLock`, an atomic method, or a COW `Arc`; and functions
//!   taking the writer-owned volume are unreachable from client entry
//!   points.
//! * **condvar-discipline** — every `Condvar` wait sits in a
//!   predicate-rechecking loop, every notify is preceded by a state
//!   write under the paired mutex, and the publish atomics use
//!   `Release`/`Acquire` orderings.
//! * **const-consistency** — integer literals duplicating layout constants
//!   (`SECTOR_BYTES`, FFS block/inode sizes) instead of deriving them.
//! * **cast-safety** — truncating `as` casts in sector/page arithmetic
//!   (`.len() as u16`, narrowing casts of computed values, width-changing
//!   casts of layout constants).
//! * **fs-api** — the public `FileSystem` service trait stays
//!   shared-reference (`&self` on every method; exclusive verbs belong
//!   on `FsBackend`).
//! * **unsafe-hygiene** — every library crate declares
//!   `#![deny(unsafe_code)]` (or `forbid`); any `unsafe` elsewhere needs a
//!   `// SAFETY:` comment.
//! * **disk-taint** / **decode-coverage** / **taint-arith** — bytes
//!   decoded from raw disk reads are tracked interprocedurally (fixpoint
//!   taint summaries over the call graph) and must pass a recognized
//!   sanitizer — dominating bounds check, `validate`/`runs_sane`, bounded
//!   accessor — before steering a recovery sink (layout address math,
//!   allocation lengths, VAM ops, batched I/O addresses); every
//!   configured on-disk struct field must be covered by a validator, and
//!   unchecked `+`/`*`/`<<` on tainted sector arithmetic is a finding.
//!
//! The `cedar-lint` binary scans the workspace (including this crate),
//! prints a human table, JSON, or SARIF 2.1.0 (`--format`), and exits
//! nonzero on findings — it is a tier-1 CI gate (see `ci.sh`).

#![deny(unsafe_code)]

pub mod allowlist;
pub mod ast;
pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod source;
pub mod workspace;

pub use config::Config;
pub use report::Report;

/// Every rule id the analyzer can emit, in report order. SARIF output
/// advertises this full set even on clean runs, so downstream tooling
/// sees which checks ran, not just which fired.
pub const RULE_IDS: &[&str] = &[
    "layering",
    "wal-order",
    "repl-order",
    "barrier-discipline",
    "batch-io",
    "error-flow",
    "panic-ratchet",
    "lock-graph",
    "thread-roles",
    "condvar-discipline",
    "const-consistency",
    "cast-safety",
    "fs-api",
    "unsafe-hygiene",
    "disk-taint",
    "decode-coverage",
    "taint-arith",
    "parse-error",
    "stale-allowlist",
];

/// Rule families as the CLI groups them (`cedar-lint --rule <family>`):
/// one entry per `rules::*::check` pass, mapping the family name to the
/// rule ids that pass can emit. The filter accepts either a family name
/// or any one of its rule ids.
pub const FAMILIES: &[(&str, &[&str])] = &[
    ("layering", &["layering"]),
    ("panics", &["panic-ratchet"]),
    ("consts", &["const-consistency"]),
    ("casts", &["cast-safety"]),
    ("unsafety", &["unsafe-hygiene"]),
    ("walorder", &["wal-order"]),
    ("repl", &["repl-order"]),
    ("barrier", &["barrier-discipline", "batch-io"]),
    ("errorflow", &["error-flow"]),
    ("fsapi", &["fs-api"]),
    (
        "concurrency",
        &["lock-graph", "thread-roles", "condvar-discipline"],
    ),
    ("taint", &["disk-taint", "decode-coverage", "taint-arith"]),
];

/// One finding: a rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id — one of [`RULE_IDS`].
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Enclosing function (or `-`).
    pub item: String,
    /// Short normalized snippet used as the allowlist key.
    pub snippet: String,
    /// Human explanation.
    pub message: String,
}

impl Finding {
    /// Allowlist key: identifies a site independent of line numbers.
    pub fn key(&self) -> (String, String, String, String) {
        (
            self.rule.to_string(),
            self.file.clone(),
            self.item.clone(),
            self.snippet.clone(),
        )
    }
}

/// Checker errors (I/O and usage — rules themselves never error).
#[derive(Debug)]
pub enum AnalyzeError {
    /// Filesystem error reading the workspace.
    Io(String),
    /// The root does not look like the expected workspace.
    BadRoot(String),
    /// Allowlist file is malformed.
    BadAllowlist(String),
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(m) => write!(f, "i/o error: {m}"),
            Self::BadRoot(m) => write!(f, "bad workspace root: {m}"),
            Self::BadAllowlist(m) => write!(f, "bad allowlist: {m}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Runs every rule over the workspace at `root`, applies the allowlist,
/// and returns the report. `allow` is the parsed allowlist (empty for
/// none).
pub fn run(
    root: &std::path::Path,
    config: &Config,
    allow: &allowlist::Allowlist,
) -> Result<Report, AnalyzeError> {
    run_filtered(root, config, allow, None)
}

/// Like [`run`], restricted to one rule family when `filter` is given
/// (a [`FAMILIES`] name or any rule id inside one). Partial runs skip
/// the stale-allowlist check — entries for unexecuted rules would all
/// look stale — but `parse-error` findings are always included: a file
/// the parser cannot handle escapes *every* family.
pub fn run_filtered(
    root: &std::path::Path,
    config: &Config,
    allow: &allowlist::Allowlist,
    filter: Option<&str>,
) -> Result<Report, AnalyzeError> {
    if let Some(name) = filter {
        if !FAMILIES
            .iter()
            .any(|(fam, ids)| *fam == name || ids.contains(&name))
        {
            return Err(AnalyzeError::BadRoot(format!(
                "unknown rule family `{name}` (families: {})",
                FAMILIES
                    .iter()
                    .map(|(f, _)| *f)
                    .collect::<Vec<_>>()
                    .join(", ")
            )));
        }
    }
    let selected = |fam: &str, ids: &[&str]| match filter {
        None => true,
        Some(name) => fam == name || ids.contains(&name),
    };
    let files = workspace::load_workspace(root, config)?;
    let mut findings = Vec::new();
    // A file the parser cannot handle silently escapes the flow rules, so
    // a parse failure is itself a finding.
    for f in &files {
        if let Some((line, msg)) = &f.parse_error {
            findings.push(Finding {
                rule: "parse-error",
                file: f.rel.clone(),
                line: *line,
                item: f.enclosing_fn(*line).to_string(),
                snippet: "parse error".to_string(),
                message: format!(
                    "cedar-lint's parser failed here ({msg}); the flow rules \
                     skipped this file — fix the parser or simplify the construct"
                ),
            });
        }
    }
    type CheckFn = fn(&[source::SourceFile], &Config) -> Vec<Finding>;
    let passes: &[(&str, CheckFn)] = &[
        ("layering", rules::layering::check),
        ("panics", rules::panics::check),
        ("consts", rules::consts::check),
        ("casts", rules::casts::check),
        ("unsafety", rules::unsafety::check),
        ("walorder", rules::walorder::check),
        ("repl", rules::repl::check),
        ("barrier", rules::barrier::check),
        ("errorflow", rules::errorflow::check),
        ("fsapi", rules::fsapi::check),
        ("concurrency", rules::concurrency::check),
        ("taint", rules::taint::check),
    ];
    let mut timings = Vec::new();
    for (fam, check) in passes {
        let ids = FAMILIES
            .iter()
            .find(|(f, _)| f == fam)
            .map(|(_, ids)| *ids)
            .unwrap_or(&[]);
        if !selected(fam, ids) {
            continue;
        }
        let t0 = std::time::Instant::now();
        findings.extend(check(&files, config));
        timings.push((fam.to_string(), t0.elapsed().as_millis()));
    }
    let (kept, stale) = allow.apply(findings);
    let stale = if filter.is_some() { Vec::new() } else { stale };
    let mut report = Report::new(kept, stale, files.len());
    report.timings = timings;
    Ok(report)
}
