//! `cedar-analyze`: an in-tree static invariant checker for the Cedar FS
//! workspace.
//!
//! The paper's reliability story rests on protocol obligations the Rust
//! compiler cannot see: the log append must precede the home write, only
//! the log module may address log-region sectors, the name table is
//! always double-written, recovery must never panic mid-redo. This crate
//! states those obligations as machine-checked rules over the workspace
//! source. It is dependency-free (no crates.io access, so no `syn`): a
//! hand-rolled lexer feeds both the token-level rules and a
//! recursive-descent parser ([`parser`]) whose lightweight AST ([`ast`])
//! and workspace call graph ([`callgraph`]) power the flow-sensitive
//! rules. A file the parser cannot handle is itself a finding
//! (`parse-error`) — nothing silently escapes analysis.
//!
//! Rule families (each finding carries its rule id):
//!
//! * **layering** — import DAG between workspace crates, raw sector I/O
//!   confined to the volume layer, log-region addressing confined to
//!   `cedar_fsd::{log, recovery}`.
//! * **wal-order** — every call path from a public `FsdVolume` op to a
//!   home-sector write must be dominated by a `Log::append`/force in the
//!   same commit unit (the §4 write-ahead rule, checked as a fixpoint
//!   over per-function summaries).
//! * **barrier-discipline** / **batch-io** — an `IoBatch` on a
//!   configured commit path must `barrier()` before its commit window
//!   executes; raw disk calls (direct or one helper deep) on the
//!   multi-sector hot paths must go through `cedar_disk::sched` batches.
//! * **error-flow** — no `let _ =`/`.ok()` discards of `Result` on
//!   force/flush/recovery paths, and no `_ =>` arms swallowing
//!   `DiskError`/`FsdError` variants.
//! * **panic-ratchet** — no `unwrap()/expect()/panic!()` in non-test
//!   library code; existing sites live in a checked-in allowlist that only
//!   shrinks (new sites and stale entries both fail) and covers every
//!   rule family.
//! * **lock-graph** — an interprocedural lock graph: held-lock sets are
//!   threaded through the call graph (fixpoint over function summaries),
//!   so acquisition-order cycles across files and guards live across a
//!   blocking call (`force`, condvar waits, channel recv, join) anywhere
//!   in the callee chain are findings. The condvar hand-off
//!   (`cvar.wait(guard)`) is the sanctioned exception.
//! * **thread-roles** — the engine's shared structs get a field access
//!   matrix: every touch of a shared field is through its owning
//!   `Mutex`/`RwLock`, an atomic method, or a COW `Arc`; and functions
//!   taking the writer-owned volume are unreachable from client entry
//!   points.
//! * **condvar-discipline** — every `Condvar` wait sits in a
//!   predicate-rechecking loop, every notify is preceded by a state
//!   write under the paired mutex, and the publish atomics use
//!   `Release`/`Acquire` orderings.
//! * **const-consistency** — integer literals duplicating layout constants
//!   (`SECTOR_BYTES`, FFS block/inode sizes) instead of deriving them.
//! * **cast-safety** — truncating `as` casts in sector/page arithmetic
//!   (`.len() as u16`, narrowing casts of computed values, width-changing
//!   casts of layout constants).
//! * **fs-api** — the public `FileSystem` service trait stays
//!   shared-reference (`&self` on every method; exclusive verbs belong
//!   on `FsBackend`).
//! * **unsafe-hygiene** — every library crate declares
//!   `#![deny(unsafe_code)]` (or `forbid`); any `unsafe` elsewhere needs a
//!   `// SAFETY:` comment.
//!
//! The `cedar-lint` binary scans the workspace (including this crate),
//! prints a human table, JSON, or SARIF 2.1.0 (`--format`), and exits
//! nonzero on findings — it is a tier-1 CI gate (see `ci.sh`).

#![deny(unsafe_code)]

pub mod allowlist;
pub mod ast;
pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod source;
pub mod workspace;

pub use config::Config;
pub use report::Report;

/// Every rule id the analyzer can emit, in report order. SARIF output
/// advertises this full set even on clean runs, so downstream tooling
/// sees which checks ran, not just which fired.
pub const RULE_IDS: &[&str] = &[
    "layering",
    "wal-order",
    "barrier-discipline",
    "batch-io",
    "error-flow",
    "panic-ratchet",
    "lock-graph",
    "thread-roles",
    "condvar-discipline",
    "const-consistency",
    "cast-safety",
    "fs-api",
    "unsafe-hygiene",
    "parse-error",
    "stale-allowlist",
];

/// One finding: a rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id — one of [`RULE_IDS`].
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Enclosing function (or `-`).
    pub item: String,
    /// Short normalized snippet used as the allowlist key.
    pub snippet: String,
    /// Human explanation.
    pub message: String,
}

impl Finding {
    /// Allowlist key: identifies a site independent of line numbers.
    pub fn key(&self) -> (String, String, String, String) {
        (
            self.rule.to_string(),
            self.file.clone(),
            self.item.clone(),
            self.snippet.clone(),
        )
    }
}

/// Checker errors (I/O and usage — rules themselves never error).
#[derive(Debug)]
pub enum AnalyzeError {
    /// Filesystem error reading the workspace.
    Io(String),
    /// The root does not look like the expected workspace.
    BadRoot(String),
    /// Allowlist file is malformed.
    BadAllowlist(String),
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(m) => write!(f, "i/o error: {m}"),
            Self::BadRoot(m) => write!(f, "bad workspace root: {m}"),
            Self::BadAllowlist(m) => write!(f, "bad allowlist: {m}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Runs every rule over the workspace at `root`, applies the allowlist,
/// and returns the report. `allow` is the parsed allowlist (empty for
/// none).
pub fn run(
    root: &std::path::Path,
    config: &Config,
    allow: &allowlist::Allowlist,
) -> Result<Report, AnalyzeError> {
    let files = workspace::load_workspace(root, config)?;
    let mut findings = Vec::new();
    // A file the parser cannot handle silently escapes the flow rules, so
    // a parse failure is itself a finding.
    for f in &files {
        if let Some((line, msg)) = &f.parse_error {
            findings.push(Finding {
                rule: "parse-error",
                file: f.rel.clone(),
                line: *line,
                item: f.enclosing_fn(*line).to_string(),
                snippet: "parse error".to_string(),
                message: format!(
                    "cedar-lint's parser failed here ({msg}); the flow rules \
                     skipped this file — fix the parser or simplify the construct"
                ),
            });
        }
    }
    findings.extend(rules::layering::check(&files, config));
    findings.extend(rules::panics::check(&files, config));
    findings.extend(rules::consts::check(&files, config));
    findings.extend(rules::casts::check(&files, config));
    findings.extend(rules::unsafety::check(&files, config));
    findings.extend(rules::walorder::check(&files, config));
    findings.extend(rules::barrier::check(&files, config));
    findings.extend(rules::errorflow::check(&files, config));
    findings.extend(rules::fsapi::check(&files, config));
    findings.extend(rules::concurrency::check(&files, config));
    let (kept, stale) = allow.apply(findings);
    Ok(Report::new(kept, stale, files.len()))
}
