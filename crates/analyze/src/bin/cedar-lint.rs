//! cedar-lint: the workspace's static invariant checker.
//!
//! Usage:
//!
//! ```text
//! cedar-lint [--workspace] [--root <path>] [--allowlist <path>]
//!            [--format human|json|sarif] [--emit-allow] [--rule <family>]
//! ```
//!
//! Scans the Cedar workspace for layering violations, write-ahead-order
//! and barrier-discipline breaks, swallowed errors, panic sites,
//! lock-order hazards, duplicated layout constants, truncating casts, and
//! unsafe-code hygiene. Exits 0 when clean, 1 on findings (including stale
//! allowlist entries), 2 on usage or I/O errors.
//!
//! `--format json` emits the flat machine-readable finding list;
//! `--format sarif` emits SARIF 2.1.0 for CI artifact upload and review
//! tooling (`--json` is kept as an alias for `--format json`).
//! `--emit-allow` prints the current findings in allowlist format (for
//! seeding `cedar-lint.allow`); the run itself exits 0.
//! `--rule <family>` restricts the run to one rule family (a family name
//! like `taint`/`concurrency`, or any rule id inside one); partial runs
//! skip the stale-allowlist check. The human format prints per-family
//! wall time so slow rules are visible as the analyzer grows.

use cedar_analyze::allowlist::Allowlist;
use cedar_analyze::config::Config;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

enum Format {
    Human,
    Json,
    Sarif,
}

struct Opts {
    root: Option<PathBuf>,
    allowlist: Option<PathBuf>,
    format: Format,
    emit_allow: bool,
    rule: Option<String>,
}

const USAGE: &str = "usage: cedar-lint [--workspace] [--root <path>] \
                     [--allowlist <path>] [--format human|json|sarif] \
                     [--emit-allow] [--rule <family>]";

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        root: None,
        allowlist: None,
        format: Format::Human,
        emit_allow: false,
        rule: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => {} // The default (and only) scan scope.
            "--json" => opts.format = Format::Json,
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                opts.format = match v.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format {other:?}\n{USAGE}")),
                };
            }
            "--emit-allow" => opts.emit_allow = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a path")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--allowlist" => {
                let v = it.next().ok_or("--allowlist needs a path")?;
                opts.allowlist = Some(PathBuf::from(v));
            }
            "--rule" => {
                let v = it.next().ok_or("--rule needs a family name")?;
                opts.rule = Some(v.clone());
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// Finds the workspace root: the given path, or the nearest ancestor of the
/// current directory containing both `Cargo.toml` and `crates/`.
fn find_root(explicit: Option<PathBuf>) -> Result<PathBuf, String> {
    if let Some(p) = explicit {
        return Ok(p);
    }
    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let mut dir: &Path = &cwd;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Ok(dir.to_path_buf());
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => {
                return Err(format!(
                    "no workspace root (Cargo.toml + crates/) above {}",
                    cwd.display()
                ))
            }
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let root = match find_root(opts.root) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("cedar-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let config = Config::cedar();

    if opts.emit_allow {
        // Scan with an empty allowlist and print everything found.
        return match cedar_analyze::run(&root, &config, &Allowlist::empty()) {
            Ok(report) => {
                print!("{}", Allowlist::emit(&report.findings));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cedar-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    let allow_path = opts
        .allowlist
        .unwrap_or_else(|| root.join("cedar-lint.allow"));
    let allow = match Allowlist::load(&allow_path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cedar-lint: {e}");
            return ExitCode::from(2);
        }
    };
    match cedar_analyze::run_filtered(&root, &config, &allow, opts.rule.as_deref()) {
        Ok(report) => {
            match opts.format {
                Format::Human => print!("{}", report.human()),
                Format::Json => println!("{}", report.json()),
                Format::Sarif => println!("{}", report.sarif()),
            }
            if report.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("cedar-lint: {e}");
            ExitCode::from(2)
        }
    }
}
