//! wal-order: write-ahead discipline on the commit path.
//!
//! Hagmann's protocol (§4): a home/leader/name-table sector may be written
//! only after the redo-log record covering it is on disk. This rule checks
//! that statically: starting from every unrestricted-`pub` fn in the
//! configured entry files (the `FsdVolume` public API), every call path
//! that reaches a home-sector write (`wal_write_fns`) must first pass a
//! log-append event (`wal_append_calls`), in evaluation order.
//!
//! Flow semantics, chosen to match how the commit path is actually shaped:
//!
//! * `if`/`match` merge with AND over the non-diverging branches (a branch
//!   ending in `return`/`panic!` does not veto the others).
//! * Loop bodies are assumed to execute at least once (the log force
//!   appends in a chunk loop).
//! * Closure arguments to an append call run under the append's
//!   protection (`Log::append(.., |disk, t| flush(..))` is the pattern
//!   that writes third entries inside the commit unit). Other closures
//!   neither establish nor lose protection for their definer.
//! * A call to a function that ends every path with an append counts as
//!   an append; a call to a function containing an unprotected write is a
//!   violation at the call site (reported with the callee's site).
//!
//! Recovery files are exempt: redo writes homes *from* the log, which is
//! the protection.

use crate::ast::{Block, Expr, Stmt};
use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::source::SourceFile;
use crate::Finding;

/// Per-function flow summary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Summary {
    /// Every fall-through path ends with write-ahead protection in force.
    establishes: bool,
    /// First unprotected home write reachable inside this fn (description
    /// used in call-site messages).
    unprot: Option<String>,
}

/// A domination rule the flow walker can enforce: every path from a
/// `pub` fn in `entry_files` that reaches a `write_fns` call must first
/// pass an `append_calls` event. `repl-order` reuses the machinery with
/// its own event sets (frame seals instead of home writes).
pub(crate) struct FlowSpec<'a> {
    /// Rule id stamped on findings.
    pub rule: &'static str,
    /// Files whose unrestricted-`pub` fns are the checked entry points.
    pub entry_files: &'a [&'static str],
    /// Files exempt from the rule entirely.
    pub exempt_files: &'a [&'static str],
    /// (receiver, method) pairs that establish protection.
    pub append_calls: &'a [(&'static str, &'static str)],
    /// Calls that require protection to be in force.
    pub write_fns: &'a [&'static str],
    /// Functions the rule treats as opaque: their bodies are not
    /// summarized and calls to them propagate nothing (deliberate
    /// carve-outs like the data-only frame seal).
    pub opaque_fns: &'a [&'static str],
    /// Message for a direct unprotected `write_fns` call.
    pub direct_msg: fn(&str) -> String,
    /// Message for a call that reaches one transitively (callee site
    /// description appended).
    pub via_msg: fn(&str, &str) -> String,
}

/// Runs the wal-order rule.
pub fn check(files: &[SourceFile], config: &Config) -> Vec<Finding> {
    if config.wal_entry_files.is_empty() {
        return Vec::new();
    }
    let spec = FlowSpec {
        rule: "wal-order",
        entry_files: &config.wal_entry_files,
        exempt_files: &config.wal_exempt_files,
        append_calls: &config.wal_append_calls,
        write_fns: &config.wal_write_fns,
        opaque_fns: &[],
        direct_msg: |name| {
            format!(
                "home-sector write (`{name}`) without a dominating \
                 `Log::append` on this path — the write-ahead rule (§4) \
                 requires the redo record on disk before the home write"
            )
        },
        via_msg: |name, site| {
            format!(
                "call to `{name}` reaches a home-sector write with \
                 no dominating `Log::append` on this path: {site}"
            )
        },
    };
    flow_check(files, &spec)
}

/// Runs a [`FlowSpec`] domination rule over the workspace.
pub(crate) fn flow_check(files: &[SourceFile], spec: &FlowSpec<'_>) -> Vec<Finding> {
    let cg = CallGraph::build(files);
    let mut sums = vec![Summary::default(); cg.nodes.len()];
    // Summaries to fixpoint (monotone in practice; the cap is a backstop).
    for _ in 0..10 {
        let mut next = Vec::with_capacity(sums.len());
        for (i, file, def) in cg.iter() {
            if skip_fn(file, def.line, spec) || spec.opaque_fns.iter().any(|f| *f == def.name) {
                next.push(Summary::default());
                continue;
            }
            let Some(body) = &def.body else {
                next.push(Summary::default());
                continue;
            };
            let mut w = Walker::new(&cg, spec, &sums, file);
            w.block(body);
            next.push(Summary {
                establishes: w.logged,
                unprot: w.viols.first().map(|v| {
                    format!(
                        "`{}` at {}:{} (in `{}`)",
                        v.snippet, file.rel, v.line, def.name
                    )
                }),
            });
            let _ = i;
        }
        let changed = next != sums;
        sums = next;
        if !changed {
            break;
        }
    }
    // Findings: re-walk the public entry fns with converged summaries.
    let mut out = Vec::new();
    for (_, file, def) in cg.iter() {
        if !spec.entry_files.iter().any(|p| *p == file.rel) {
            continue;
        }
        if !def.is_pub
            || skip_fn(file, def.line, spec)
            || spec.opaque_fns.iter().any(|f| *f == def.name)
        {
            continue;
        }
        let Some(body) = &def.body else { continue };
        let mut w = Walker::new(&cg, spec, &sums, file);
        w.block(body);
        for v in w.viols {
            out.push(Finding {
                rule: spec.rule,
                file: file.rel.clone(),
                line: v.line,
                item: def.name.clone(),
                snippet: v.snippet,
                message: v.message,
            });
        }
    }
    out
}

fn skip_fn(file: &SourceFile, line: u32, spec: &FlowSpec<'_>) -> bool {
    spec.exempt_files.iter().any(|p| *p == file.rel) || file.is_test_line(line)
}

#[derive(Clone, Debug)]
struct Violation {
    line: u32,
    snippet: String,
    message: String,
}

struct Walker<'a> {
    cg: &'a CallGraph<'a>,
    spec: &'a FlowSpec<'a>,
    sums: &'a [Summary],
    file: &'a SourceFile,
    /// Write-ahead protection currently in force on this path.
    logged: bool,
    /// This path has left the function (return / panic-family macro).
    diverged: bool,
    viols: Vec<Violation>,
}

impl<'a> Walker<'a> {
    fn new(
        cg: &'a CallGraph<'a>,
        spec: &'a FlowSpec<'a>,
        sums: &'a [Summary],
        file: &'a SourceFile,
    ) -> Self {
        Self {
            cg,
            spec,
            sums,
            file,
            logged: false,
            diverged: false,
            viols: Vec::new(),
        }
    }

    fn block(&mut self, b: &Block) {
        for s in &b.stmts {
            match s {
                Stmt::Let {
                    init, else_block, ..
                } => {
                    if let Some(e) = init {
                        self.expr(e);
                    }
                    // A let-else's else block always diverges; treat it as
                    // a side branch that does not affect the main path.
                    if let Some(eb) = else_block {
                        let (save_l, save_d) = (self.logged, self.diverged);
                        self.block(eb);
                        self.logged = save_l;
                        self.diverged = save_d;
                    }
                }
                Stmt::Expr(e) => self.expr(e),
            }
        }
    }

    /// Runs `f` as a branch from the current state; returns the branch's
    /// end state (logged, diverged) and restores the walker.
    fn branch(&mut self, f: impl FnOnce(&mut Self)) -> (bool, bool) {
        let (save_l, save_d) = (self.logged, self.diverged);
        f(self);
        let end = (self.logged, self.diverged);
        self.logged = save_l;
        self.diverged = save_d;
        end
    }

    fn merge2(&mut self, a: (bool, bool), b: (bool, bool)) {
        match (a.1, b.1) {
            (true, true) => self.diverged = true,
            (true, false) => self.logged = b.0,
            (false, true) => self.logged = a.0,
            (false, false) => self.logged = a.0 && b.0,
        }
    }

    fn violation(&mut self, line: u32, snippet: String, message: String) {
        if self
            .viols
            .iter()
            .any(|v| v.line == line && v.snippet == snippet)
        {
            return;
        }
        self.viols.push(Violation {
            line,
            snippet,
            message,
        });
    }

    /// Applies the events of a call once its arguments are evaluated:
    /// write-event check, then callee-summary propagation.
    fn call_events(&mut self, name: &str, line: u32, resolve: bool) {
        if self.file.is_test_line(line) {
            return;
        }
        if self.spec.write_fns.contains(&name) {
            if !self.logged {
                self.violation(
                    line,
                    format!("{name}(..) unlogged"),
                    (self.spec.direct_msg)(name),
                );
            }
            return;
        }
        if !resolve || self.spec.opaque_fns.contains(&name) {
            return;
        }
        let mut establishes = false;
        for &node in self.cg.resolve(&self.file.crate_key, name) {
            let s = &self.sums[node];
            if !self.logged {
                if let Some(site) = &s.unprot {
                    self.violation(
                        line,
                        format!("{name}(..) reaches unlogged write"),
                        (self.spec.via_msg)(name, site),
                    );
                }
            }
            establishes |= s.establishes;
        }
        if establishes {
            self.logged = true;
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Path { .. } | Expr::Atom { .. } => {}
            Expr::Macro { name, .. } => {
                if matches!(
                    name.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) {
                    self.diverged = true;
                }
            }
            Expr::Call { func, args, line } => {
                self.expr(func);
                for a in args {
                    self.expr(a);
                }
                if let Some(name) = func.last_name() {
                    let name = name.to_string();
                    self.call_events(&name, *line, true);
                }
            }
            Expr::MethodCall {
                recv,
                method,
                args,
                line,
            } => {
                self.expr(recv);
                let is_append = self
                    .spec
                    .append_calls
                    .iter()
                    .any(|(r, m)| *m == method && recv.last_name().is_some_and(|n| n == *r));
                if is_append {
                    // Closure args (the third-entry flush callback) run
                    // under the append's protection.
                    self.logged = true;
                    for a in args {
                        self.expr(a);
                    }
                    return;
                }
                for a in args {
                    self.expr(a);
                }
                // Methods resolve through the call graph only on `self`
                // (receiver typing is beyond a name-based graph).
                let on_self = recv.last_name() == Some("self");
                let method = method.clone();
                self.call_events(&method, *line, on_self);
            }
            Expr::Field { base, .. } => self.expr(base),
            Expr::Seq { items, .. } => {
                for it in items {
                    self.expr(it);
                }
            }
            Expr::Block { block, .. } => self.block(block),
            Expr::If {
                cond, then, alt, ..
            } => {
                self.expr(cond);
                let t = self.branch(|w| w.block(then));
                let a = match alt {
                    Some(alt) => self.branch(|w| w.expr(alt)),
                    None => (self.logged, false),
                };
                self.merge2(t, a);
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.expr(scrutinee);
                let ends: Vec<(bool, bool)> = arms
                    .iter()
                    .map(|arm| self.branch(|w| w.expr(&arm.body)))
                    .collect();
                if let Some(first) = ends.first().copied() {
                    let mut acc = first;
                    for e2 in ends.into_iter().skip(1) {
                        // Fold pairwise through merge2 on a scratch state.
                        let (save_l, save_d) = (self.logged, self.diverged);
                        self.merge2(acc, e2);
                        acc = (self.logged, self.diverged);
                        self.logged = save_l;
                        self.diverged = save_d;
                    }
                    self.logged = acc.0;
                    self.diverged = self.diverged || acc.1;
                }
            }
            Expr::Loop { body, .. } => self.block(body),
            Expr::While { cond, body, .. } => {
                self.expr(cond);
                self.block(body);
            }
            Expr::For { iter, body, .. } => {
                self.expr(iter);
                self.block(body);
            }
            Expr::Closure { body, .. } => {
                // Checked under the current protection, but its effects do
                // not escape to the definer (it may never run).
                let _ = self.branch(|w| w.expr(body));
            }
            Expr::Ret { value, .. } => {
                if let Some(v) = value {
                    self.expr(v);
                }
                self.diverged = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vol(src: &str) -> SourceFile {
        SourceFile::parse("crates/fsd/src/volume.rs".into(), "fsd".into(), false, src)
    }

    fn run(files: Vec<SourceFile>) -> Vec<Finding> {
        check(&files, &Config::cedar())
    }

    #[test]
    fn append_then_write_is_clean() {
        let f = vol("impl FsdVolume {\n\
             pub fn commit(&mut self) { self.log.append(1); write_home_batch(2); }\n\
             }\nfn write_home_batch(_x: u32) {}\n");
        assert!(run(vec![f]).is_empty());
    }

    #[test]
    fn unlogged_direct_write_flagged() {
        let f = vol("impl FsdVolume {\n\
             pub fn sloppy(&mut self) { write_home_batch(2); }\n\
             }\nfn write_home_batch(_x: u32) {}\n");
        let out = run(vec![f]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "wal-order");
        assert_eq!(out[0].item, "sloppy");
        assert!(out[0].message.contains("write-ahead"));
    }

    #[test]
    fn unlogged_write_via_helper_flagged_at_call_site() {
        let f = vol("impl FsdVolume {\n\
             pub fn op(&mut self) { self.sync_all(); }\n\
             fn sync_all(&mut self) { write_home_batch(2); }\n\
             }\nfn write_home_batch(_x: u32) {}\n");
        let out = run(vec![f]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].item, "op");
        assert!(out[0].message.contains("sync_all"));
    }

    #[test]
    fn force_before_helper_protects_it() {
        let f = vol("impl FsdVolume {\n\
             pub fn shutdown(&mut self) { self.force(); self.sync_all(); }\n\
             pub fn force(&mut self) { self.log.append(1); }\n\
             fn sync_all(&mut self) { write_home_batch(2); }\n\
             }\nfn write_home_batch(_x: u32) {}\n");
        assert!(run(vec![f]).is_empty());
    }

    #[test]
    fn one_branch_append_does_not_protect_merge() {
        let f = vol("impl FsdVolume {\n\
             pub fn racy(&mut self, c: bool) {\n\
               if c { self.log.append(1); }\n\
               write_home_batch(2);\n\
             }\n}\nfn write_home_batch(_x: u32) {}\n");
        let out = run(vec![f]);
        assert_eq!(out.len(), 1, "append on one branch must not dominate");
    }

    #[test]
    fn diverging_branch_does_not_veto() {
        let f = vol("impl FsdVolume {\n\
             pub fn ok_path(&mut self) -> Result<(), ()> {\n\
               if self.empty { return Ok(()); }\n\
               self.log.append(1);\n\
               write_home_batch(2);\n\
               Ok(())\n\
             }\n}\nfn write_home_batch(_x: u32) {}\n");
        assert!(run(vec![f]).is_empty());
    }

    #[test]
    fn append_in_loop_protects_after() {
        let f = vol("impl FsdVolume {\n\
             pub fn force(&mut self) {\n\
               while self.more() { self.log.append(1); }\n\
               write_home_batch(2);\n\
             }\n}\nfn write_home_batch(_x: u32) {}\n");
        assert!(run(vec![f]).is_empty());
    }

    #[test]
    fn closure_arg_of_append_is_protected() {
        let f = vol("impl FsdVolume {\n\
             pub fn force(&mut self) {\n\
               self.log.append(1, |d, t| write_home_batch(t));\n\
             }\n}\nfn write_home_batch(_x: u8) {}\n");
        assert!(run(vec![f]).is_empty());
    }

    #[test]
    fn plain_closure_write_is_flagged() {
        let f = vol("impl FsdVolume {\n\
             pub fn lazy(&mut self) {\n\
               self.defer(|| write_home_batch(2));\n\
             }\n}\nfn write_home_batch(_x: u32) {}\n");
        assert_eq!(run(vec![f]).len(), 1);
    }

    #[test]
    fn private_and_recovery_fns_not_entries() {
        let f = vol("impl FsdVolume {\n\
             pub(crate) fn internal(&mut self) { write_home_batch(2); }\n\
             fn helper(&mut self) { write_home_batch(2); }\n\
             }\nfn write_home_batch(_x: u32) {}\n");
        let rec = SourceFile::parse(
            "crates/fsd/src/recovery.rs".into(),
            "fsd".into(),
            false,
            "pub fn redo(x: u32) { write_home_batch(x); }\n",
        );
        assert!(run(vec![f, rec]).is_empty());
    }

    #[test]
    fn vec_append_is_not_a_log_append() {
        let f = vol("impl FsdVolume {\n\
             pub fn nope(&mut self, mut v: Vec<u8>) {\n\
               self.scratch.append(&mut v);\n\
               write_home_batch(2);\n\
             }\n}\nfn write_home_batch(_x: u32) {}\n");
        assert_eq!(run(vec![f]).len(), 1, "only `log.append` establishes");
    }
}
