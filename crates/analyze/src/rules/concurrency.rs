//! concurrency: whole-program verification of the workspace's thread
//! topology.
//!
//! PR 7 moved the hot path into a real multi-threaded pipeline (client
//! threads enqueue, one log-writer thread owns the volume, completion is
//! a condvar hand-off, reads go through a COW index published per
//! epoch). The §4 durability contract now depends on cross-thread
//! ordering nothing in the type system states, so three rules model it
//! over the parsed AST + call graph:
//!
//! * **lock-graph** — an interprocedural lock graph. Each function gets
//!   a fixpoint summary (locks it may acquire transitively, whether it
//!   may block on `force`/condvar-wait/`recv`/`join`); a per-function
//!   walk then threads lexically-held guard sets through calls.
//!   Acquiring lock B (directly or anywhere in a callee) while holding
//!   A is an ordering edge A→B; cycles in the edge set are findings, as
//!   is a guard live across a blocking call in the configured engine
//!   files. The condvar hand-off (`cv.wait(guard)`) is the sanctioned
//!   exception — the wait *consumes* the guard. Scope exits and
//!   `drop(guard)` release guards.
//!
//! * **thread-roles** — the engine's shared structs get a field access
//!   matrix: every touch of a `Mutex`/`RwLock` field must be a lock
//!   acquisition (`.lock()`/`.read()`/`.write()` or a configured
//!   `plock(&…)` call), every touch of an atomic field must go through
//!   an atomic method, `Arc` fields are free (COW clone/deref), and
//!   plain fields need an explicit, documented exemption. Separately,
//!   functions with a writer-owned parameter type (`FsdVolume`) must be
//!   unreachable from client entry points — the volume belongs to the
//!   log-writer thread alone.
//!
//! * **condvar-discipline** — every `Condvar::wait` sits in a
//!   predicate-rechecking loop (wakeups are spurious by contract),
//!   every notify is preceded in its function by a state write under
//!   the paired mutex, and the configured publish atomics (`epoch`)
//!   use `Release`-class stores and `Acquire`-class loads, so the COW
//!   index publication happens-before the epoch observation.

use crate::ast::{Block, Expr, FieldDef, Stmt};
use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::source::SourceFile;
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// Methods that legitimately touch a lock-classified field.
const LOCK_RECV_METHODS: [&str; 6] = ["lock", "try_lock", "read", "try_read", "write", "try_write"];

/// Atomic methods that hand out plain references (not atomic access).
const ATOMIC_ESCAPE_METHODS: [&str; 2] = ["get_mut", "into_inner"];

/// Atomic store-side methods that publish state.
const ATOMIC_STORE_METHODS: [&str; 4] = ["store", "fetch_add", "fetch_sub", "swap"];

/// Orderings acceptable on the publish (store) side.
const RELEASE_ORDERINGS: [&str; 3] = ["Release", "AcqRel", "SeqCst"];

/// Orderings acceptable on the observe (load) side.
const ACQUIRE_ORDERINGS: [&str; 2] = ["Acquire", "SeqCst"];

/// Runs the concurrency rule family.
pub fn check(files: &[SourceFile], config: &Config) -> Vec<Finding> {
    let cg = CallGraph::build(files);
    let mut out = Vec::new();
    out.extend(lock_graph(&cg, config));
    out.extend(thread_roles(files, &cg, config));
    out.extend(condvar_discipline(files, config));
    out
}

// ---- shared helpers -------------------------------------------------------

/// The dotted path an expression names (`self.shared.signal` →
/// `[self, shared, signal]`); indexing and method chains use their base.
fn expr_path(e: &Expr) -> Vec<String> {
    match e {
        Expr::Path { segs, .. } => segs.clone(),
        Expr::Field { base, name, .. } => {
            let mut p = expr_path(base);
            p.push(name.clone());
            p
        }
        Expr::Seq { items, .. } => items.first().map(expr_path).unwrap_or_default(),
        Expr::MethodCall { recv, .. } => expr_path(recv),
        _ => Vec::new(),
    }
}

/// Canonical lock name: the receiver path with configured root segments
/// (`self`, `shared`) stripped, so the same mutex reached through the
/// engine handle and through the `Arc` clone unifies.
fn lock_id(e: &Expr, config: &Config) -> Option<String> {
    let mut p = expr_path(e);
    if p.is_empty() {
        return None;
    }
    while p.len() > 1 && config.lock_root_segs.contains(&p[0].as_str()) {
        p.remove(0);
    }
    Some(p.join("."))
}

/// If `e` is a lock acquisition expression, the (lock id, line) it
/// acquires: `plock(&m)`, a 0-argument `.lock()`/`.read()`/`.write()`,
/// the poison-recovery `match m.lock() { … }`, or either re-chained
/// through `into_inner`/`unwrap`/`expect`.
fn acquisition(e: &Expr, config: &Config) -> Option<(String, u32)> {
    match e {
        Expr::Call {
            func, args, line, ..
        } if args.len() == 1
            && func
                .last_name()
                .is_some_and(|n| config.lock_acquire_fns.contains(&n)) =>
        {
            lock_id(&args[0], config).map(|l| (l, *line))
        }
        Expr::MethodCall {
            recv,
            method,
            args,
            line,
        } if args.is_empty() && LOCK_RECV_METHODS.contains(&method.as_str()) => {
            lock_id(recv, config).map(|l| (l, *line))
        }
        Expr::MethodCall { recv, method, .. }
            if matches!(method.as_str(), "into_inner" | "unwrap" | "expect") =>
        {
            acquisition(recv, config)
        }
        Expr::Match { scrutinee, .. } => acquisition(scrutinee, config),
        _ => None,
    }
}

/// True when the line is inside test code or the fn is a configured
/// lock-acquire helper (its body names the lock by parameter, which
/// would pollute the graph).
fn skip_fn(file: &SourceFile, name: &str, line: u32, config: &Config) -> bool {
    file.is_test_line(line) || config.lock_acquire_fns.contains(&name)
}

/// Every name bound inside the fn (parameters, `let` bindings, closure
/// parameters): calls to these are calls to locals, never to workspace
/// functions with the same name.
fn local_names(def: &crate::ast::FnDef) -> BTreeSet<String> {
    let mut names: BTreeSet<String> = def.params.iter().cloned().collect();
    if let Some(body) = &def.body {
        collect_locals(body, &mut names);
    }
    names
}

fn collect_locals(b: &Block, names: &mut BTreeSet<String>) {
    for s in &b.stmts {
        if let Stmt::Let {
            names: bound,
            init,
            else_block,
            ..
        } = s
        {
            names.extend(bound.iter().cloned());
            if let Some(e) = init {
                collect_locals_expr(e, names);
            }
            if let Some(eb) = else_block {
                collect_locals(eb, names);
            }
        } else if let Stmt::Expr(e) = s {
            collect_locals_expr(e, names);
        }
    }
}

fn collect_locals_expr(e: &Expr, names: &mut BTreeSet<String>) {
    crate::ast::walk_expr(e, &mut |x| {
        if let Expr::Closure { params, .. } = x {
            names.extend(params.iter().cloned());
        }
    });
}

// ---- lock-graph -----------------------------------------------------------

/// Per-function lock summary, computed to fixpoint over the call graph.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct LockSummary {
    /// Lock ids this function may acquire, directly or transitively.
    acquires: BTreeSet<String>,
    /// First blocking operation reachable from this function (site
    /// description used in call-site messages); `None` if none.
    blocks: Option<String>,
}

#[derive(Clone, Debug)]
struct GuardInfo {
    /// Binding names (a destructured guard keeps all of them).
    names: Vec<String>,
    lock: String,
    line: u32,
    /// Block depth the guard was bound at (released when its block ends).
    depth: usize,
}

/// One acquisition-order edge: `held` was locked when `then` was
/// acquired.
#[derive(Clone, Debug)]
struct EdgeSite {
    file: String,
    line: u32,
    item: String,
}

struct LockWalker<'a> {
    cg: &'a CallGraph<'a>,
    config: &'a Config,
    sums: &'a [LockSummary],
    file: &'a SourceFile,
    fn_name: &'a str,
    /// Guard-across-blocking violations only fire in the engine files.
    check_blocking: bool,
    locals: BTreeSet<String>,
    guards: Vec<GuardInfo>,
    depth: usize,
    edges: Vec<(String, String, u32)>,
    acquires: BTreeSet<String>,
    blocks: Option<String>,
    viols: Vec<Finding>,
}

impl<'a> LockWalker<'a> {
    fn acquire(&mut self, lock: String, line: u32) {
        for g in &self.guards {
            self.edges.push((g.lock.clone(), lock.clone(), line));
        }
        self.acquires.insert(lock);
    }

    fn note_block(&mut self, site: String) {
        if self.blocks.is_none() {
            self.blocks = Some(site);
        }
    }

    /// A blocking operation at `line`; `consumed` names guards handed to
    /// the wait itself. Any other live guard is a finding.
    fn blocking(&mut self, desc: &str, line: u32, consumed: &BTreeSet<String>) {
        self.note_block(format!("`{desc}` at {}:{line}", self.file.rel));
        if !self.check_blocking {
            return;
        }
        let held = self
            .guards
            .iter()
            .find(|g| !g.names.iter().any(|n| consumed.contains(n)));
        if let Some(g) = held {
            let name = g.names.first().cloned().unwrap_or_else(|| g.lock.clone());
            self.viols.push(Finding {
                rule: "lock-graph",
                file: self.file.rel.clone(),
                line,
                item: self.fn_name.to_string(),
                snippet: format!("{name} held across {desc}"),
                message: format!(
                    "lock guard `{name}` on `{}` (acquired line {}) is live \
                     across `{desc}`: a guard held across a blocking call \
                     serializes every client behind the sleeper — release it \
                     first (scope or `drop`), or hand it to the condvar \
                     (`cv.wait(guard)`)",
                    g.lock, g.line,
                ),
            });
        }
    }

    /// Call events once arguments are evaluated: propagate the callee's
    /// summary into held-guard edges and blocking checks.
    fn call_events(&mut self, qual: Option<&str>, name: &str, line: u32) {
        if self.config.lock_acquire_fns.contains(&name) || self.locals.contains(name) {
            return;
        }
        for &node in self.cg.resolve(&self.file.crate_key, name) {
            if let Some(q) = qual {
                if self.cg.nodes[node].def.owner.as_deref() != Some(q) {
                    continue;
                }
            }
            let s = self.sums[node].clone();
            for l in &s.acquires {
                self.acquire(l.clone(), line);
            }
            if let Some(site) = &s.blocks {
                self.note_block(format!("via `{name}`: {site}"));
                if self.check_blocking {
                    if let Some(g) = self.guards.first() {
                        let gname = g.names.first().cloned().unwrap_or_else(|| g.lock.clone());
                        let snippet = format!("{gname} held across {name}()");
                        if !self.viols.iter().any(|v| v.snippet == snippet) {
                            self.viols.push(Finding {
                                rule: "lock-graph",
                                file: self.file.rel.clone(),
                                line,
                                item: self.fn_name.to_string(),
                                snippet,
                                message: format!(
                                    "lock guard `{gname}` on `{}` (acquired line {}) \
                                     is live across a call to `{name}`, which blocks: \
                                     {site}",
                                    g.lock, g.line,
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    fn block(&mut self, b: &Block) {
        self.depth += 1;
        for s in &b.stmts {
            match s {
                Stmt::Let {
                    names,
                    init,
                    else_block,
                    ..
                } => {
                    if let Some(init) = init {
                        if let Some((lock, line)) = acquisition(init, self.config) {
                            self.acquire(lock.clone(), line);
                            self.guards.push(GuardInfo {
                                names: names.clone(),
                                lock,
                                line,
                                depth: self.depth,
                            });
                        } else {
                            self.expr(init);
                        }
                    }
                    if let Some(eb) = else_block {
                        self.block(eb);
                    }
                }
                Stmt::Expr(e) => self.expr(e),
            }
        }
        let d = self.depth;
        self.guards.retain(|g| g.depth < d);
        self.depth -= 1;
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Path { .. } | Expr::Atom { .. } | Expr::Macro { .. } => {}
            Expr::Call { func, args, line } => {
                // `drop(g)` / `mem::drop(g)` releases named guards.
                if func.last_name() == Some("drop") {
                    for a in args {
                        let dropped = expr_path(a);
                        self.guards
                            .retain(|g| !g.names.iter().any(|n| dropped.contains(n)));
                    }
                    return;
                }
                if let Some((lock, aline)) = acquisition(e, self.config) {
                    // Temporary acquire (`plock(&m).field = v`): an edge,
                    // released within the statement.
                    self.acquire(lock, aline);
                    return;
                }
                self.expr(func);
                for a in args {
                    self.expr(a);
                }
                if let Expr::Path { segs, .. } = func.as_ref() {
                    let qual = if segs.len() >= 2 {
                        segs.get(segs.len() - 2).map(|s| s.as_str())
                    } else {
                        None
                    };
                    if let Some(name) = segs.last() {
                        let (name, qual) = (name.clone(), qual.map(|s| s.to_string()));
                        self.call_events(qual.as_deref(), &name, *line);
                    }
                }
            }
            Expr::MethodCall {
                recv,
                method,
                args,
                line,
            } => {
                if let Some((lock, aline)) = acquisition(e, self.config) {
                    self.acquire(lock, aline);
                    return;
                }
                self.expr(recv);
                for a in args {
                    self.expr(a);
                }
                if self.config.blocking_methods.contains(&method.as_str()) {
                    let consumed: BTreeSet<String> = args.iter().flat_map(expr_path).collect();
                    let method = method.clone();
                    self.blocking(&format!("{method}()"), *line, &consumed);
                    return;
                }
                // Methods resolve through the call graph only on `self`
                // (receiver typing is beyond a name-based graph).
                if recv.last_name() == Some("self") {
                    let method = method.clone();
                    self.call_events(None, &method, *line);
                }
            }
            Expr::Field { base, .. } => self.expr(base),
            Expr::Seq { items, .. } => {
                for it in items {
                    self.expr(it);
                }
            }
            Expr::Block { block, .. } => self.block(block),
            Expr::If {
                cond, then, alt, ..
            } => {
                self.expr(cond);
                self.block(then);
                if let Some(a) = alt {
                    self.expr(a);
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.expr(scrutinee);
                for arm in arms {
                    self.expr(&arm.body);
                }
            }
            Expr::Loop { body, .. } => self.block(body),
            Expr::While { cond, body, .. } => {
                self.expr(cond);
                self.block(body);
            }
            Expr::For { iter, body, .. } => {
                self.expr(iter);
                self.block(body);
            }
            Expr::Closure { body, .. } => self.expr(body),
            Expr::Ret { value, .. } => {
                if let Some(v) = value {
                    self.expr(v);
                }
            }
        }
    }
}

/// Walks one call-graph node with the given summaries; `None` for test
/// code, lock-helper bodies, and bodyless declarations.
fn walk_node<'a>(
    cg: &'a CallGraph<'a>,
    config: &'a Config,
    sums: &'a [LockSummary],
    node: usize,
) -> Option<LockWalker<'a>> {
    let file = cg.file_of(node);
    let def = cg.nodes[node].def;
    if skip_fn(file, &def.name, def.line, config) {
        return None;
    }
    let body = def.body.as_ref()?;
    let mut w = LockWalker {
        cg,
        config,
        sums,
        file,
        fn_name: &def.name,
        check_blocking: config.concurrency_files.iter().any(|p| *p == file.rel),
        locals: local_names(def),
        guards: Vec::new(),
        depth: 0,
        edges: Vec::new(),
        acquires: BTreeSet::new(),
        blocks: None,
        viols: Vec::new(),
    };
    w.block(body);
    Some(w)
}

fn lock_graph<'a>(cg: &'a CallGraph<'a>, config: &'a Config) -> Vec<Finding> {
    // Summaries to fixpoint (monotone in practice; the cap is a backstop).
    let mut sums = vec![LockSummary::default(); cg.nodes.len()];
    for _ in 0..10 {
        let mut next = Vec::with_capacity(sums.len());
        for node in 0..cg.nodes.len() {
            next.push(match walk_node(cg, config, &sums, node) {
                Some(w) => LockSummary {
                    acquires: w.acquires,
                    blocks: w.blocks,
                },
                None => LockSummary::default(),
            });
        }
        let changed = next != sums;
        sums = next;
        if !changed {
            break;
        }
    }

    // Final pass: collect ordering edges and blocking violations.
    let mut out = Vec::new();
    let mut edges: BTreeMap<(String, String), EdgeSite> = BTreeMap::new();
    for node in 0..cg.nodes.len() {
        let Some(w) = walk_node(cg, config, &sums, node) else {
            continue;
        };
        let file = cg.file_of(node);
        let def = cg.nodes[node].def;
        for (a, b, line) in w.edges {
            edges.entry((a, b)).or_insert(EdgeSite {
                file: file.rel.clone(),
                line,
                item: def.name.clone(),
            });
        }
        out.extend(w.viols);
    }
    out.extend(cycle_findings(&edges));
    out
}

/// Enumerates simple cycles in the lock-order edge set and reports each
/// once (rooted at its lexicographically smallest lock).
fn cycle_findings(edges: &BTreeMap<(String, String), EdgeSite>) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut out = Vec::new();
    let starts: Vec<&str> = adj.keys().copied().collect();
    for start in starts {
        let mut path = vec![start];
        dfs_cycles(start, &adj, &mut path, &mut |cycle: &[&str]| {
            // Rooting at the minimum node makes each rotation unique.
            if cycle.iter().any(|n| *n < cycle[0]) {
                return;
            }
            let mut sites = Vec::new();
            for i in 0..cycle.len() {
                let (a, b) = (cycle[i], cycle[(i + 1) % cycle.len()]);
                if let Some(s) = edges.get(&(a.to_string(), b.to_string())) {
                    sites.push(format!(
                        "`{a}` then `{b}` at {}:{} (in `{}`)",
                        s.file, s.line, s.item
                    ));
                }
            }
            let first = edges
                .get(&(cycle[0].to_string(), cycle[1 % cycle.len()].to_string()))
                .cloned();
            let Some(first) = first else { return };
            out.push(Finding {
                rule: "lock-graph",
                file: first.file,
                line: first.line,
                item: first.item,
                snippet: format!("cycle:{}", cycle.join("->")),
                message: format!(
                    "lock acquisition-order cycle {} -> {}: two threads taking \
                     these locks in opposite orders deadlock; pick one global \
                     order ({})",
                    cycle.join(" -> "),
                    cycle[0],
                    sites.join("; "),
                ),
            });
        });
    }
    out
}

fn dfs_cycles<'g>(
    start: &'g str,
    adj: &BTreeMap<&'g str, Vec<&'g str>>,
    path: &mut Vec<&'g str>,
    emit: &mut impl FnMut(&[&str]),
) {
    let Some(u) = path.last().copied() else {
        return;
    };
    let Some(nexts) = adj.get(u) else { return };
    for &v in nexts {
        if v == start {
            emit(path);
        } else if v > start && !path.contains(&v) {
            path.push(v);
            dfs_cycles(start, adj, path, emit);
            path.pop();
        }
    }
}

// ---- thread-roles ---------------------------------------------------------

/// How a shared-struct field may legally be touched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FieldClass {
    /// `Mutex`/`RwLock`: only as a lock-acquisition receiver or a
    /// `plock(&…)` argument.
    Guarded,
    /// `Atomic*`: only through atomic methods.
    Atomic,
    /// `Arc<T>`: clone/deref is the COW discipline — free.
    ArcShared,
    /// Condvar, containers of locks, or configured self-synchronizing
    /// types — free (using the value still requires its own lock).
    Sync,
    /// Anything else: allowed only with an explicit config exemption.
    Plain { allowed: bool },
}

fn classify(field: &FieldDef, allowed_plain: &[&str], config: &Config) -> FieldClass {
    let mut lead = None;
    for t in &field.ty {
        let first = t.chars().next().unwrap_or(' ');
        if !(first.is_ascii_alphabetic() || first == '_') {
            continue;
        }
        if t == "Option" || t == "Box" {
            continue; // Transparent wrappers.
        }
        lead = Some(t.as_str());
        break;
    }
    match lead {
        Some("Mutex") | Some("RwLock") => FieldClass::Guarded,
        Some(t) if t.starts_with("Atomic") => FieldClass::Atomic,
        Some("Arc") => FieldClass::ArcShared,
        Some(t) if t == "Condvar" || config.sync_types.contains(&t) => FieldClass::Sync,
        _ => {
            let has_sync = field.ty.iter().any(|t| {
                t == "Mutex"
                    || t == "RwLock"
                    || t == "Condvar"
                    || config.sync_types.contains(&t.as_str())
            });
            if has_sync {
                FieldClass::Sync
            } else {
                FieldClass::Plain {
                    allowed: allowed_plain.contains(&field.name.as_str()),
                }
            }
        }
    }
}

struct MatrixWalker<'a> {
    fields: &'a BTreeMap<String, FieldClass>,
    config: &'a Config,
    file: &'a SourceFile,
    fn_name: &'a str,
    viols: Vec<Finding>,
}

impl<'a> MatrixWalker<'a> {
    fn violation(&mut self, line: u32, field: &str, why: &str) {
        self.viols.push(Finding {
            rule: "thread-roles",
            file: self.file.rel.clone(),
            line,
            item: self.fn_name.to_string(),
            snippet: format!("field {field} unsynchronized"),
            message: format!(
                "shared field `{field}` {why} — every touch of engine-shared \
                 state must go through its owning lock, an atomic method, or \
                 a COW `Arc` clone (or carry a documented exemption in the \
                 lint config)"
            ),
        });
    }

    /// Checks a direct field touch that is not a sanctioned receiver.
    fn touch(&mut self, name: &str, line: u32) {
        match self.fields.get(name) {
            Some(FieldClass::Guarded) => self.violation(
                line,
                name,
                "is a lock but is used without acquiring it (expected \
                 `.lock()`/`.read()`/`.write()` or `plock(&…)`)",
            ),
            Some(FieldClass::Atomic) => {
                self.violation(line, name, "is an atomic used without an atomic method")
            }
            Some(FieldClass::Plain { allowed: false }) => self.violation(
                line,
                name,
                "is plain data on a cross-thread struct with no owning lock",
            ),
            _ => {}
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::MethodCall {
                recv,
                method,
                args,
                line,
            } => {
                if let Expr::Field { base, name, .. } = recv.as_ref() {
                    if let Some(class) = self.fields.get(name.as_str()).copied() {
                        match class {
                            FieldClass::Guarded
                                if !LOCK_RECV_METHODS.contains(&method.as_str()) =>
                            {
                                self.violation(
                                    *line,
                                    name,
                                    &format!(
                                        "is a lock but `.{method}()` is called on it \
                                         directly (expected a lock acquisition)"
                                    ),
                                );
                            }
                            FieldClass::Atomic
                                if ATOMIC_ESCAPE_METHODS.contains(&method.as_str()) =>
                            {
                                self.violation(
                                    *line,
                                    name,
                                    &format!("escapes atomic access via `.{method}()`"),
                                );
                            }
                            _ => {}
                        }
                        self.expr(base);
                        for a in args {
                            self.expr(a);
                        }
                        return;
                    }
                }
                self.expr(recv);
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Call { func, args, .. } => {
                let sanctions = func
                    .last_name()
                    .is_some_and(|n| n == "drop" || self.config.lock_acquire_fns.contains(&n));
                self.expr(func);
                for a in args {
                    if sanctions {
                        if let Expr::Field { base, .. } = a {
                            self.expr(base);
                            continue;
                        }
                    }
                    self.expr(a);
                }
            }
            Expr::Field { base, name, line } => {
                self.touch(name, *line);
                self.expr(base);
            }
            Expr::Path { .. } | Expr::Atom { .. } | Expr::Macro { .. } => {}
            Expr::Seq { items, .. } => {
                for it in items {
                    self.expr(it);
                }
            }
            Expr::Block { block, .. } => self.walk_block(block),
            Expr::If {
                cond, then, alt, ..
            } => {
                self.expr(cond);
                self.walk_block(then);
                if let Some(a) = alt {
                    self.expr(a);
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.expr(scrutinee);
                for arm in arms {
                    self.expr(&arm.body);
                }
            }
            Expr::Loop { body, .. } => self.walk_block(body),
            Expr::While { cond, body, .. } => {
                self.expr(cond);
                self.walk_block(body);
            }
            Expr::For { iter, body, .. } => {
                self.expr(iter);
                self.walk_block(body);
            }
            Expr::Closure { body, .. } => self.expr(body),
            Expr::Ret { value, .. } => {
                if let Some(v) = value {
                    self.expr(v);
                }
            }
        }
    }

    fn walk_block(&mut self, b: &Block) {
        for s in &b.stmts {
            match s {
                Stmt::Let {
                    init, else_block, ..
                } => {
                    if let Some(e) = init {
                        self.expr(e);
                    }
                    if let Some(eb) = else_block {
                        self.walk_block(eb);
                    }
                }
                Stmt::Expr(e) => self.expr(e),
            }
        }
    }
}

fn thread_roles(files: &[SourceFile], cg: &CallGraph<'_>, config: &Config) -> Vec<Finding> {
    let mut out = Vec::new();

    // (a) Field access matrix over the configured shared structs.
    for f in files {
        let mut fields: BTreeMap<String, FieldClass> = BTreeMap::new();
        for (file_rel, sname, allowed) in &config.shared_structs {
            if *file_rel != f.rel {
                continue;
            }
            for sd in &f.ast.structs {
                if sd.name != *sname {
                    continue;
                }
                for fd in &sd.fields {
                    fields
                        .entry(fd.name.clone())
                        .or_insert_with(|| classify(fd, allowed, config));
                }
            }
        }
        if fields.is_empty() {
            continue;
        }
        // Field accesses are matched by name, so a name also declared by
        // an untracked struct in the same file is ambiguous (e.g. the
        // `EngineStats` snapshot reuses `ops`) — drop it rather than
        // flag the snapshot's plain copies.
        let tracked: BTreeSet<&str> = config
            .shared_structs
            .iter()
            .filter(|(rel, ..)| *rel == f.rel)
            .map(|(_, name, _)| *name)
            .collect();
        for sd in &f.ast.structs {
            if tracked.contains(sd.name.as_str()) {
                continue;
            }
            for fd in &sd.fields {
                fields.remove(&fd.name);
            }
        }
        if fields.is_empty() {
            continue;
        }
        for def in &f.ast.fns {
            if f.is_test_line(def.line) {
                continue;
            }
            let Some(body) = &def.body else { continue };
            let mut w = MatrixWalker {
                fields: &fields,
                config,
                file: f,
                fn_name: &def.name,
                viols: Vec::new(),
            };
            w.walk_block(body);
            out.extend(w.viols);
        }
    }

    // (b) Role reachability: writer-owned parameter types must be
    // unreachable from client entry points.
    let owned: Vec<usize> = cg
        .iter()
        .filter(|(_, _, def)| {
            def.param_tys
                .iter()
                .any(|t| config.owned_types.contains(&t.as_str()))
        })
        .map(|(i, _, _)| i)
        .collect();
    if owned.is_empty() {
        return out;
    }
    let mut reachable: BTreeSet<usize> = BTreeSet::new();
    let mut queue: Vec<(usize, Vec<String>)> = Vec::new();
    for (i, file, def) in cg.iter() {
        let is_entry = config
            .client_entry_owners
            .iter()
            .any(|(rel, owner)| *rel == file.rel && def.owner.as_deref() == Some(*owner));
        if is_entry
            && !config.role_setup_fns.contains(&def.name.as_str())
            && !file.is_test_line(def.line)
            && def.body.is_some()
            && reachable.insert(i)
        {
            queue.push((i, vec![def.name.clone()]));
        }
    }
    while let Some((node, chain)) = queue.pop() {
        let file = cg.file_of(node);
        let def = cg.nodes[node].def;
        if skip_fn(file, &def.name, def.line, config) {
            continue;
        }
        let Some(body) = &def.body else { continue };
        let locals = local_names(def);
        let mut callees: Vec<(Option<String>, String, u32)> = Vec::new();
        crate::ast::walk_block(body, &mut |e| match e {
            Expr::Call { func, line, .. } => {
                if let Expr::Path { segs, .. } = func.as_ref() {
                    if let Some(name) = segs.last() {
                        let qual = if segs.len() >= 2 {
                            segs.get(segs.len() - 2).cloned()
                        } else {
                            None
                        };
                        callees.push((qual, name.clone(), *line));
                    }
                }
            }
            // Like the other flow rules, methods resolve only on a
            // `self` receiver — a name-based graph cannot type other
            // receivers, and bare-name resolution invents paths
            // (`shared.submit(op)` is not the scheduler's `submit`).
            Expr::MethodCall {
                recv, method, line, ..
            } if recv.last_name() == Some("self") => {
                callees.push((None, method.clone(), *line));
            }
            _ => {}
        });
        for (qual, name, line) in callees {
            if locals.contains(&name) || config.lock_acquire_fns.contains(&name.as_str()) {
                continue;
            }
            for &next in cg.resolve_in_crate(&file.crate_key, &name) {
                if let Some(q) = &qual {
                    if cg.nodes[next].def.owner.as_deref() != Some(q.as_str()) {
                        continue;
                    }
                }
                let ndef = cg.nodes[next].def;
                if config.role_setup_fns.contains(&ndef.name.as_str()) {
                    continue;
                }
                let mut nchain = chain.clone();
                nchain.push(ndef.name.clone());
                if owned.contains(&next) {
                    let nfile = cg.file_of(next);
                    out.push(Finding {
                        rule: "thread-roles",
                        file: file.rel.clone(),
                        line,
                        item: def.name.clone(),
                        snippet: format!("client thread reaches {}", ndef.name),
                        message: format!(
                            "client entry path {} reaches `{}` ({}:{}), whose \
                             parameters name a writer-owned type ({}): the \
                             volume belongs to the log-writer thread; clients \
                             must go through the queue/slot hand-off",
                            nchain.join(" -> "),
                            ndef.name,
                            nfile.rel,
                            ndef.line,
                            config.owned_types.join("/"),
                        ),
                    });
                    continue;
                }
                if reachable.insert(next) {
                    queue.push((next, nchain));
                }
            }
        }
    }
    out
}

// ---- condvar-discipline ---------------------------------------------------

fn condvar_discipline(files: &[SourceFile], config: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if !config.concurrency_files.iter().any(|p| *p == f.rel) {
            continue;
        }
        // Condvar-typed field names declared in this file.
        let mut cv_fields: BTreeSet<&str> = BTreeSet::new();
        for sd in &f.ast.structs {
            for fd in &sd.fields {
                if fd.ty.first().is_some_and(|t| t == "Condvar") {
                    cv_fields.insert(fd.name.as_str());
                }
            }
        }
        for def in &f.ast.fns {
            if f.is_test_line(def.line) {
                continue;
            }
            let Some(body) = &def.body else { continue };
            let mut w = CondvarWalker {
                cv_fields: &cv_fields,
                config,
                file: f,
                fn_name: &def.name,
                locked_yet: false,
                viols: Vec::new(),
            };
            w.block(body, false);
            out.extend(w.viols);
        }
    }
    out
}

struct CondvarWalker<'a> {
    cv_fields: &'a BTreeSet<&'a str>,
    config: &'a Config,
    file: &'a SourceFile,
    fn_name: &'a str,
    /// A lock has been acquired earlier in this function (evaluation
    /// order) — the precondition for a notify.
    locked_yet: bool,
    viols: Vec<Finding>,
}

impl<'a> CondvarWalker<'a> {
    fn violation(&mut self, line: u32, snippet: String, message: String) {
        self.viols.push(Finding {
            rule: "condvar-discipline",
            file: self.file.rel.clone(),
            line,
            item: self.fn_name.to_string(),
            snippet,
            message,
        });
    }

    fn block(&mut self, b: &Block, in_loop: bool) {
        for s in &b.stmts {
            match s {
                Stmt::Let {
                    init, else_block, ..
                } => {
                    if let Some(e) = init {
                        self.expr(e, in_loop);
                    }
                    if let Some(eb) = else_block {
                        self.block(eb, in_loop);
                    }
                }
                Stmt::Expr(e) => self.expr(e, in_loop),
            }
        }
    }

    fn expr(&mut self, e: &Expr, in_loop: bool) {
        match e {
            Expr::MethodCall {
                recv,
                method,
                args,
                line,
            } => {
                self.expr(recv, in_loop);
                for a in args {
                    self.expr(a, in_loop);
                }
                let recv_name = expr_path(recv).last().cloned();
                if let Some(rn) = &recv_name {
                    if self.cv_fields.contains(rn.as_str()) {
                        match method.as_str() {
                            // `wait_while` rechecks its own predicate.
                            "wait" | "wait_timeout" if !in_loop => self.violation(
                                *line,
                                format!("{rn}.{method} outside loop"),
                                format!(
                                    "`{rn}.{method}(…)` is not inside a \
                                     predicate-rechecking loop: condvar wakeups \
                                     are spurious by contract — re-test the \
                                     predicate in a `loop`/`while` around the \
                                     wait (or use `wait_while`)"
                                ),
                            ),
                            "notify_one" | "notify_all" if !self.locked_yet => self.violation(
                                *line,
                                format!("{rn}.{method} without lock"),
                                format!(
                                    "`{rn}.{method}()` fires with no earlier \
                                     lock acquisition in this function: a \
                                     notify must be dominated by the state \
                                     write under the paired mutex, or the \
                                     waiter can miss the wakeup"
                                ),
                            ),
                            _ => {}
                        }
                    }
                    if self.config.publish_atomics.contains(&rn.as_str()) {
                        let ord = args.last().and_then(|a| a.last_name());
                        if ATOMIC_STORE_METHODS.contains(&method.as_str())
                            && !ord.is_some_and(|o| RELEASE_ORDERINGS.contains(&o))
                        {
                            self.violation(
                                *line,
                                format!("{rn}.{method} ordering"),
                                format!(
                                    "`{rn}.{method}(…)` publishes an epoch with \
                                     a non-Release ordering ({}): readers may \
                                     observe the new epoch before the index it \
                                     publishes — use `Release`/`AcqRel`",
                                    ord.unwrap_or("?"),
                                ),
                            );
                        }
                        if method == "load" && !ord.is_some_and(|o| ACQUIRE_ORDERINGS.contains(&o))
                        {
                            self.violation(
                                *line,
                                format!("{rn}.load ordering"),
                                format!(
                                    "`{rn}.load(…)` observes the publish epoch \
                                     with a non-Acquire ordering ({}): the COW \
                                     index published before the store may not \
                                     be visible — use `Acquire`",
                                    ord.unwrap_or("?"),
                                ),
                            );
                        }
                    }
                }
                if LOCK_RECV_METHODS.contains(&method.as_str()) && args.is_empty() {
                    self.locked_yet = true;
                }
            }
            Expr::Call { func, args, .. } => {
                if func
                    .last_name()
                    .is_some_and(|n| self.config.lock_acquire_fns.contains(&n))
                {
                    self.locked_yet = true;
                }
                self.expr(func, in_loop);
                for a in args {
                    self.expr(a, in_loop);
                }
            }
            Expr::Field { base, .. } => self.expr(base, in_loop),
            Expr::Path { .. } | Expr::Atom { .. } | Expr::Macro { .. } => {}
            Expr::Seq { items, .. } => {
                for it in items {
                    self.expr(it, in_loop);
                }
            }
            Expr::Block { block, .. } => self.block(block, in_loop),
            Expr::If {
                cond, then, alt, ..
            } => {
                self.expr(cond, in_loop);
                self.block(then, in_loop);
                if let Some(a) = alt {
                    self.expr(a, in_loop);
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.expr(scrutinee, in_loop);
                for arm in arms {
                    self.expr(&arm.body, in_loop);
                }
            }
            Expr::Loop { body, .. } => self.block(body, true),
            Expr::While { cond, body, .. } => {
                self.expr(cond, in_loop);
                self.block(body, true);
            }
            Expr::For { iter, body, .. } => {
                self.expr(iter, in_loop);
                self.block(body, true);
            }
            Expr::Closure { body, .. } => self.expr(body, in_loop),
            Expr::Ret { value, .. } => {
                if let Some(v) = value {
                    self.expr(v, in_loop);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_file(src: &str) -> SourceFile {
        SourceFile::parse("crates/fsd/src/engine.rs".into(), "fsd".into(), false, src)
    }

    fn other_file(rel: &str, src: &str) -> SourceFile {
        SourceFile::parse(rel.into(), "fsd".into(), false, src)
    }

    fn rule<'f>(out: &'f [Finding], id: &str) -> Vec<&'f Finding> {
        out.iter().filter(|f| f.rule == id).collect()
    }

    #[test]
    fn cross_file_lock_cycle_reported_once_with_both_sites() {
        let a = other_file(
            "crates/fsd/src/a.rs",
            "fn one(s: &S) { let g = plock(&s.alpha); let h = plock(&s.beta); }\n",
        );
        let b = other_file(
            "crates/fsd/src/b.rs",
            "fn two(s: &S) { let g = plock(&s.beta); let h = plock(&s.alpha); }\n",
        );
        let out = check(&[a, b], &Config::cedar());
        let cycles = rule(&out, "lock-graph");
        assert_eq!(cycles.len(), 1, "{out:?}");
        assert!(cycles[0].snippet.starts_with("cycle:"));
        assert!(cycles[0].message.contains("crates/fsd/src/a.rs"));
        assert!(cycles[0].message.contains("crates/fsd/src/b.rs"));
    }

    #[test]
    fn callee_acquisition_contributes_edge_to_cycle() {
        // `one` holds alpha and calls `helper`, which takes beta;
        // `two` takes them in the opposite order directly.
        let src = "fn helper(s: &S) { let g = plock(&s.beta); }\n\
                   fn one(s: &S) { let g = plock(&s.alpha); helper(s); }\n\
                   fn two(s: &S) { let g = plock(&s.beta); let h = plock(&s.alpha); }\n";
        let out = check(&[other_file("crates/fsd/src/a.rs", src)], &Config::cedar());
        assert_eq!(rule(&out, "lock-graph").len(), 1, "{out:?}");
    }

    #[test]
    fn guard_across_direct_force_flagged_in_engine_files() {
        let src = "impl E { fn publish(&self) { let g = plock(&self.signal); \
                   self.vol.force(); } }\n";
        let out = check(&[engine_file(src)], &Config::cedar());
        let v = rule(&out, "lock-graph");
        assert_eq!(v.len(), 1, "{out:?}");
        assert!(v[0].snippet.contains("g held across force()"));
    }

    #[test]
    fn guard_across_blocking_callee_flagged_interprocedurally() {
        let src = "impl E {\n\
                   fn settle(&self) { self.vol.force(); }\n\
                   fn publish(&self) { let g = plock(&self.signal); self.settle(); }\n\
                   }\n";
        let out = check(&[engine_file(src)], &Config::cedar());
        let v = rule(&out, "lock-graph");
        assert_eq!(v.len(), 1, "{out:?}");
        assert!(v[0].snippet.contains("g held across settle()"));
        assert!(v[0].message.contains("force()"));
    }

    #[test]
    fn guard_outside_engine_files_not_blocking_checked() {
        // Same shape as the direct-force case, but in a non-engine file:
        // the serial `SyncFs` wrapper legitimately holds its one lock.
        let src = "impl E { fn publish(&self) { let g = plock(&self.signal); \
                   self.vol.force(); } }\n";
        let out = check(&[other_file("crates/vol/src/fs.rs", src)], &Config::cedar());
        assert!(rule(&out, "lock-graph").is_empty(), "{out:?}");
    }

    #[test]
    fn consuming_condvar_wait_is_sanctioned() {
        let src = "impl Slot { fn wait(&self) -> R { let mut state = plock(&self.state);\n\
                   loop { if let Some(r) = state.take() { return r; }\n\
                   state = match self.cv.wait(state) { Ok(g) => g, Err(p) => p.into_inner() }; } } }\n";
        let out = check(&[engine_file(src)], &Config::cedar());
        assert!(rule(&out, "lock-graph").is_empty(), "{out:?}");
    }

    #[test]
    fn scope_exit_and_drop_release_guards() {
        let src = "impl E {\n\
                   fn a(&self) { { let g = plock(&self.signal); } self.rx.recv(); }\n\
                   fn b(&self) { let g = plock(&self.signal); drop(g); self.rx.recv(); }\n\
                   }\n";
        let out = check(&[engine_file(src)], &Config::cedar());
        assert!(rule(&out, "lock-graph").is_empty(), "{out:?}");
    }

    #[test]
    fn matrix_flags_raw_touch_of_guarded_and_atomic_fields() {
        let mut cfg = Config::cedar();
        cfg.shared_structs = vec![("crates/fsd/src/engine.rs", "Shared", vec![])];
        let src = "struct Shared { signal: Mutex<u32>, epoch: AtomicU64 }\n\
                   fn good(s: &Shared) { let g = plock(&s.signal); \
                   s.epoch.fetch_add(1, Ordering::AcqRel); }\n\
                   fn bad(s: &Shared) { let x = s.signal; let y = s.epoch; }\n";
        let out = check(&[engine_file(src)], &cfg);
        let v = rule(&out, "thread-roles");
        assert_eq!(v.len(), 2, "{out:?}");
        assert!(v.iter().all(|f| f.item == "bad"));
    }

    #[test]
    fn matrix_allows_exempted_plain_fields_and_arc() {
        let mut cfg = Config::cedar();
        cfg.shared_structs = vec![("crates/fsd/src/engine.rs", "Shared", vec!["cfg"])];
        let src = "struct Shared { cfg: EngineConfig, index: Arc<Map> }\n\
                   fn read(s: &Shared) { let n = s.cfg.max_batch_ops; let i = s.index.clone(); }\n";
        let out = check(&[engine_file(src)], &cfg);
        assert!(rule(&out, "thread-roles").is_empty(), "{out:?}");
    }

    #[test]
    fn matrix_flags_unexempted_plain_field() {
        let mut cfg = Config::cedar();
        cfg.shared_structs = vec![("crates/fsd/src/engine.rs", "Shared", vec![])];
        let src = "struct Shared { count: u64 }\n\
                   fn read(s: &Shared) { let n = s.count; }\n";
        let out = check(&[engine_file(src)], &cfg);
        assert_eq!(rule(&out, "thread-roles").len(), 1, "{out:?}");
    }

    #[test]
    fn client_entry_reaching_writer_owned_fn_flagged() {
        let mut cfg = Config::cedar();
        cfg.client_entry_owners = vec![("crates/fsd/src/engine.rs", "Session")];
        let src = "fn apply(vol: FsdVolume, n: u32) {}\n\
                   fn step(n: u32) { apply(mkvol(), n); }\n\
                   impl Session { fn read(&self, n: u32) { step(n); } }\n";
        let out = check(&[engine_file(src)], &cfg);
        let v = rule(&out, "thread-roles");
        assert_eq!(v.len(), 1, "{out:?}");
        assert!(v[0].message.contains("read -> step -> apply"));
    }

    #[test]
    fn writer_owned_fn_unreachable_from_clients_is_fine() {
        let mut cfg = Config::cedar();
        cfg.client_entry_owners = vec![("crates/fsd/src/engine.rs", "Session")];
        let src = "fn apply(vol: FsdVolume, n: u32) {}\n\
                   fn writer_loop(vol: FsdVolume) { apply(vol, 1); }\n\
                   impl Session { fn read(&self, n: u32) -> u32 { n } }\n";
        let out = check(&[engine_file(src)], &cfg);
        assert!(rule(&out, "thread-roles").is_empty(), "{out:?}");
    }

    #[test]
    fn condvar_wait_outside_loop_flagged_inside_loop_fine() {
        let src = "struct Slot { cv: Condvar, state: Mutex<u32> }\n\
                   impl Slot {\n\
                   fn bad(&self) { let g = plock(&self.state); \
                   let g = match self.cv.wait(g) { Ok(x) => x, Err(p) => p.into_inner() }; }\n\
                   fn good(&self) { let mut g = plock(&self.state); loop { \
                   g = match self.cv.wait(g) { Ok(x) => x, Err(p) => p.into_inner() }; } }\n\
                   }\n";
        let out = check(&[engine_file(src)], &Config::cedar());
        let v = rule(&out, "condvar-discipline");
        assert_eq!(v.len(), 1, "{out:?}");
        assert_eq!(v[0].item, "bad");
        assert!(v[0].snippet.contains("outside loop"));
    }

    #[test]
    fn notify_without_preceding_lock_flagged() {
        let src = "struct Slot { cv: Condvar, state: Mutex<u32> }\n\
                   impl Slot {\n\
                   fn bad(&self) { self.cv.notify_all(); }\n\
                   fn good(&self) { let mut g = plock(&self.state); *g = 1; \
                   self.cv.notify_all(); }\n\
                   }\n";
        let out = check(&[engine_file(src)], &Config::cedar());
        let v = rule(&out, "condvar-discipline");
        assert_eq!(v.len(), 1, "{out:?}");
        assert_eq!(v[0].item, "bad");
        assert!(v[0].snippet.contains("without lock"));
    }

    #[test]
    fn publish_atomic_orderings_checked() {
        let src = "impl E {\n\
                   fn bad_store(&self) { self.epoch.fetch_add(1, Ordering::Relaxed); }\n\
                   fn bad_load(&self) -> u64 { self.epoch.load(Ordering::Relaxed) }\n\
                   fn good(&self) -> u64 { self.epoch.fetch_add(1, Ordering::AcqRel); \
                   self.epoch.load(Ordering::Acquire) }\n\
                   }\n";
        let out = check(&[engine_file(src)], &Config::cedar());
        let v = rule(&out, "condvar-discipline");
        assert_eq!(v.len(), 2, "{out:?}");
        assert!(v.iter().any(|f| f.item == "bad_store"));
        assert!(v.iter().any(|f| f.item == "bad_load"));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n\
                   fn t(s: &S) { let g = plock(&s.alpha); let h = plock(&s.beta); \
                   drop(h); drop(g); let h = plock(&s.beta); let g = plock(&s.alpha); } }\n";
        let out = check(&[engine_file(src)], &Config::cedar());
        assert!(rule(&out, "lock-graph").is_empty(), "{out:?}");
    }
}
