//! Cast-safety: flag truncating `as` casts in sector/page arithmetic.
//!
//! Three patterns, in the covered crates' non-test code:
//!
//! 1. `.len() as u8|u16|u32` — a length cast that silently truncates on a
//!    large buffer; use `try_from` (or return a typed error).
//! 2. `LAYOUT_CONST as T` outside the constant's defining file — width
//!    adaptation of `SECTOR_BYTES`/`BLOCK_SECTORS`/… belongs next to the
//!    definition (e.g. a `BLOCK_SECTORS_US` companion), not scattered at
//!    use sites where a geometry change can overflow unnoticed.
//! 3. `expr as u8|u16` (expression or identifier receiver) — a narrowing
//!    cast to ≤16 bits; use `u8::from`/`u16::try_from` so intent (lossless
//!    vs saturating) is explicit.

use crate::config::Config;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Finding;

const NARROW: &[&str] = &["u8", "u16", "i8", "i16"];
const LEN_NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Runs the cast-safety check.
pub fn check(files: &[SourceFile], config: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if f.is_aux || !config.cast_crates.iter().any(|c| *c == f.crate_key) {
            continue;
        }
        let toks = &f.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_ident("as") || i == 0 || f.is_test_line(toks[i].line) {
                continue;
            }
            let Some(target) = toks.get(i + 1) else {
                continue;
            };
            if target.kind != TokKind::Ident {
                continue;
            }
            let tgt = target.text.as_str();
            let prev = &toks[i - 1];
            let line = toks[i].line;
            let item = f.enclosing_fn(line).to_string();

            // Pattern 1: `.len() as <narrow>`.
            let is_len_call = i >= 4
                && prev.is_punct(')')
                && toks[i - 2].is_punct('(')
                && toks[i - 3].is_ident("len")
                && toks[i - 4].is_punct('.');
            if is_len_call && LEN_NARROW.contains(&tgt) {
                out.push(Finding {
                    rule: "cast-safety",
                    file: f.rel.clone(),
                    line,
                    item,
                    snippet: format!("len() as {tgt}"),
                    message: format!(
                        "`.len() as {tgt}` truncates silently on a large \
                         buffer: use `{tgt}::try_from(...)` and surface the error"
                    ),
                });
                continue;
            }

            // Pattern 2: `LAYOUT_CONST as T` outside the defining file.
            if prev.kind == TokKind::Ident {
                if let Some((name, defs)) = config
                    .cast_const_idents
                    .iter()
                    .find(|(name, _)| prev.text == *name)
                {
                    if !defs.iter().any(|p| *p == f.rel) {
                        out.push(Finding {
                            rule: "cast-safety",
                            file: f.rel.clone(),
                            line,
                            item,
                            snippet: format!("{name} as {tgt}"),
                            message: format!(
                                "`{name} as {tgt}` at a use site: define a \
                                 width-correct companion constant next to \
                                 `{name}` instead of re-casting it here"
                            ),
                        });
                        continue;
                    }
                }
            }

            // Pattern 3: generic narrowing cast to <= 16 bits.
            if NARROW.contains(&tgt) && (prev.is_punct(')') || prev.kind == TokKind::Ident) {
                let what = if prev.is_punct(')') {
                    "(..)".to_string()
                } else {
                    prev.text.clone()
                };
                out.push(Finding {
                    rule: "cast-safety",
                    file: f.rel.clone(),
                    line,
                    item,
                    snippet: format!("{what} as {tgt}"),
                    message: format!(
                        "narrowing cast `{what} as {tgt}`: use `{tgt}::from` \
                         (lossless) or `{tgt}::try_from` so truncation cannot \
                         hide in sector/page arithmetic"
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, krate: &str, src: &str) -> SourceFile {
        SourceFile::parse(rel.into(), krate.into(), false, src)
    }

    #[test]
    fn len_cast_flagged() {
        let f = file(
            "crates/ffs/src/x.rs",
            "ffs",
            "fn f() { let n = b.len() as u16; }\n",
        );
        let out = check(&[f], &Config::cedar());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].snippet, "len() as u16");
    }

    #[test]
    fn len_as_u64_clean() {
        let f = file(
            "crates/ffs/src/x.rs",
            "ffs",
            "fn f() { let n = b.len() as u64; }\n",
        );
        assert!(check(&[f], &Config::cedar()).is_empty());
    }

    #[test]
    fn layout_const_recast_flagged() {
        let f = file(
            "crates/ffs/src/fs.rs",
            "ffs",
            "fn f() { let n = BLOCK_SECTORS as usize * 4; }\n",
        );
        let out = check(&[f], &Config::cedar());
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("companion constant"));
    }

    #[test]
    fn layout_const_cast_in_defining_file_clean() {
        let f = file(
            "crates/ffs/src/lib.rs",
            "ffs",
            "pub const BLOCK_BYTES: usize = BLOCK_SECTORS as usize * SECTOR_BYTES;\n",
        );
        assert!(check(&[f], &Config::cedar()).is_empty());
    }

    #[test]
    fn narrow_expr_cast_flagged() {
        let f = file(
            "crates/cfs/src/x.rs",
            "cfs",
            "fn f() { let b = valid as u8; }\n",
        );
        let out = check(&[f], &Config::cedar());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].snippet, "valid as u8");
    }

    #[test]
    fn widening_casts_clean() {
        let f = file(
            "crates/cfs/src/x.rs",
            "cfs",
            "fn f() { let a = n as u64; let b = m as usize; }\n",
        );
        assert!(check(&[f], &Config::cedar()).is_empty());
    }

    #[test]
    fn test_code_and_uncovered_crates_exempt() {
        let t = file(
            "crates/cfs/src/x.rs",
            "cfs",
            "#[cfg(test)]\nmod tests {\n fn t() { let b = v.len() as u8; }\n}\n",
        );
        assert!(check(&[t], &Config::cedar()).is_empty());
        let w = file(
            "crates/workload/src/x.rs",
            "workload",
            "fn f() { let b = x as u8; }\n",
        );
        assert!(check(&[w], &Config::cedar()).is_empty());
    }
}
