//! The rule families. Each module exposes
//! `check(&[SourceFile], &Config) -> Vec<Finding>`.

pub mod barrier;
pub mod casts;
pub mod concurrency;
pub mod consts;
pub mod errorflow;
pub mod fsapi;
pub mod layering;
pub mod panics;
pub mod repl;
pub mod taint;
pub mod unsafety;
pub mod walorder;

use crate::lexer::{Tok, TokKind};

/// Walks backward from `i` (exclusive) collecting a dotted receiver path
/// like `self.disk` or `sched.vol.disk`; returns its segments in source
/// order. Stops at anything that is not `ident . ident . …`.
pub(crate) fn receiver_path(toks: &[Tok], i: usize) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    let mut j = i;
    while let Some(k) = j.checked_sub(1) {
        let t = &toks[k];
        if t.kind != TokKind::Ident {
            break;
        }
        segs.push(t.text.clone());
        // Continue only through a `.` (fields) or `::` (paths).
        let Some(k2) = k.checked_sub(1) else { break };
        if toks[k2].is_punct('.') {
            j = k2;
        } else if toks[k2].is_punct(':') && k2 >= 1 && toks[k2 - 1].is_punct(':') {
            j = k2 - 1;
        } else {
            break;
        }
    }
    segs.reverse();
    segs
}

/// Index of the matching `)` for the `(` at `open` (or the last token).
pub(crate) fn matching_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// True if tokens `i..` begin a method call `.name(` with `name` in `set`,
/// returning the name index. `i` must point at the `.`.
pub(crate) fn method_call_at<'a>(
    toks: &'a [Tok],
    i: usize,
    set: &[&str],
) -> Option<(&'a str, usize)> {
    if !toks[i].is_punct('.') {
        return None;
    }
    let name = toks.get(i + 1)?;
    if name.kind != TokKind::Ident || !set.iter().any(|m| name.text == *m) {
        return None;
    }
    if !toks.get(i + 2)?.is_punct('(') {
        return None;
    }
    Some((name.text.as_str(), i + 1))
}
