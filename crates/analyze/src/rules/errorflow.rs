//! error-flow: no silent `Result` discards on the force/flush/recovery
//! paths, and no catch-all match arms swallowing disk/fs error variants.
//!
//! A dropped write error on the commit path is a lost durability
//! guarantee: the caller believes the record is on disk. Three shapes are
//! flagged inside the configured files:
//!
//! * `let _ = <expr containing a Result-returning call>` — discards the
//!   error.
//! * `<result call>.ok()` — same discard, expression form.
//! * A `match` that names `DiskError`/`FsdError` variants in some arms
//!   and then swallows the rest with `_ =>` or `Err(_) =>` — new error
//!   variants added later would be silently absorbed.
//!
//! Replica/torn-record probe fns (`read_meta`, `scan_records`, …) treat
//! errors as data by design and are listed in `error_flow_fallback_fns`.
//!
//! Result-ness is decided by the workspace call graph (`returns_result`
//! on the resolved definition) for plain calls and `self` method calls,
//! and by the configured I/O/force/must-handle method lists otherwise.

use crate::ast::{Block, Expr, Stmt};
use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::source::SourceFile;
use crate::Finding;

/// Runs the error-flow rule.
pub fn check(files: &[SourceFile], config: &Config) -> Vec<Finding> {
    let cg = CallGraph::build(files);
    let mut out = Vec::new();
    for f in files {
        if !config.error_flow_files.iter().any(|p| *p == f.rel) {
            continue;
        }
        let exempt: &[&str] = config
            .error_flow_fallback_fns
            .iter()
            .find(|(rel, _)| *rel == f.rel)
            .map(|(_, v)| v.as_slice())
            .unwrap_or(&[]);
        for def in &f.ast.fns {
            if exempt.iter().any(|n| *n == def.name) || f.is_test_line(def.line) {
                continue;
            }
            let Some(body) = &def.body else { continue };
            let cx = Cx {
                cg: &cg,
                config,
                file: f,
                item: &def.name,
            };
            scan_block(body, &cx, &mut out);
        }
    }
    out
}

struct Cx<'a> {
    cg: &'a CallGraph<'a>,
    config: &'a Config,
    file: &'a SourceFile,
    item: &'a str,
}

fn scan_block(b: &Block, cx: &Cx<'_>, out: &mut Vec<Finding>) {
    for s in &b.stmts {
        match s {
            Stmt::Let {
                wild,
                init,
                else_block,
                line,
                ..
            } => {
                if let Some(e) = init {
                    if *wild && !cx.file.is_test_line(*line) {
                        if let Some(desc) = find_result_call(e, cx) {
                            out.push(Finding {
                                rule: "error-flow",
                                file: cx.file.rel.clone(),
                                line: *line,
                                item: cx.item.to_string(),
                                snippet: format!("let _ = {desc}"),
                                message: format!(
                                    "`let _ =` discards the `Result` of `{desc}` \
                                     on a force/flush/recovery path — propagate \
                                     it or handle the error explicitly"
                                ),
                            });
                        }
                    }
                    scan_expr(e, cx, out);
                }
                if let Some(eb) = else_block {
                    scan_block(eb, cx, out);
                }
            }
            Stmt::Expr(e) => scan_expr(e, cx, out),
        }
    }
}

fn scan_expr(e: &Expr, cx: &Cx<'_>, out: &mut Vec<Finding>) {
    crate::ast::walk_expr(e, &mut |x| match x {
        Expr::MethodCall {
            recv,
            method,
            args,
            line,
        } if method == "ok" && args.is_empty() => {
            if cx.file.is_test_line(*line) {
                return;
            }
            if let Some(desc) = result_call_desc(recv, cx) {
                out.push(Finding {
                    rule: "error-flow",
                    file: cx.file.rel.clone(),
                    line: *line,
                    item: cx.item.to_string(),
                    snippet: format!("{desc}.ok()"),
                    message: format!(
                        "`.ok()` swallows the error of `{desc}` on a \
                         force/flush/recovery path — propagate it or handle \
                         the error explicitly"
                    ),
                });
            }
        }
        Expr::Match { arms, line, .. } => {
            if cx.file.is_test_line(*line) {
                return;
            }
            let named: Vec<&str> = cx
                .config
                .error_type_idents
                .iter()
                .filter(|id| arms.iter().any(|a| a.pat.iter().any(|t| t == *id)))
                .copied()
                .collect();
            if named.is_empty() {
                return;
            }
            for arm in arms {
                if is_catch_all(&arm.pat) {
                    out.push(Finding {
                        rule: "error-flow",
                        file: cx.file.rel.clone(),
                        line: arm.line,
                        item: cx.item.to_string(),
                        snippet: format!("_ => (match naming {})", named.join("/")),
                        message: format!(
                            "catch-all arm in a match that names {} variants: \
                             a new error variant would be silently swallowed — \
                             name the remaining variants instead",
                            named.join("/")
                        ),
                    });
                }
            }
        }
        _ => {}
    });
}

/// `_ =>` or `Err(_) =>` (ignoring a trailing guard-free shape).
fn is_catch_all(pat: &[String]) -> bool {
    let t: Vec<&str> = pat.iter().map(|s| s.as_str()).collect();
    matches!(t.as_slice(), ["_"] | ["Err", "(", "_", ")"])
}

/// If `e` is directly a call whose `Result` matters here, a short
/// description of it.
fn result_call_desc(e: &Expr, cx: &Cx<'_>) -> Option<String> {
    match e {
        Expr::Call { func, .. } => {
            let name = func.last_name()?;
            let returns_result = cx
                .cg
                .resolve(&cx.file.crate_key, name)
                .iter()
                .any(|&n| cx.cg.nodes[n].def.returns_result);
            if returns_result {
                Some(format!("{name}(..)"))
            } else {
                None
            }
        }
        Expr::MethodCall { recv, method, .. } => {
            let listed = cx.config.io_methods.iter().any(|m| *m == method)
                || cx.config.force_methods.iter().any(|m| *m == method)
                || cx.config.error_must_handle.iter().any(|m| *m == method);
            if listed {
                return Some(format!(".{method}(..)"));
            }
            if recv.last_name() == Some("self") {
                let returns_result = cx
                    .cg
                    .resolve(&cx.file.crate_key, method)
                    .iter()
                    .any(|&n| cx.cg.nodes[n].def.returns_result);
                if returns_result {
                    return Some(format!("self.{method}(..)"));
                }
            }
            None
        }
        _ => None,
    }
}

/// First Result-returning call anywhere inside `e`.
fn find_result_call(e: &Expr, cx: &Cx<'_>) -> Option<String> {
    let mut found = None;
    crate::ast::walk_expr(e, &mut |x| {
        if found.is_none() {
            found = result_call_desc(x, cx);
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logfile(src: &str) -> SourceFile {
        SourceFile::parse("crates/fsd/src/log.rs".into(), "fsd".into(), false, src)
    }

    fn run(files: Vec<SourceFile>) -> Vec<Finding> {
        check(&files, &Config::cedar())
    }

    #[test]
    fn let_underscore_discard_flagged() {
        let f = logfile(
            "impl Log {\n  fn force(&mut self, disk: &mut SimDisk) {\n\
               let _ = disk.write(0, &buf);\n\
             }\n}\n",
        );
        let out = run(vec![f]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "error-flow");
        assert!(out[0].snippet.contains("let _ ="));
    }

    #[test]
    fn ok_discard_flagged() {
        let f = logfile(
            "impl Log {\n  fn force(&mut self, disk: &mut SimDisk) {\n\
               disk.write(0, &buf).ok();\n\
             }\n}\n",
        );
        let out = run(vec![f]);
        assert_eq!(out.len(), 1);
        assert!(out[0].snippet.contains(".ok()"));
    }

    #[test]
    fn workspace_result_fn_discard_flagged() {
        let f = logfile(
            "fn encode(x: u8) -> Result<u8, ()> { Ok(x) }\n\
             fn commit() { let _ = encode(1); }\n",
        );
        let out = run(vec![f]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("encode"));
    }

    #[test]
    fn question_mark_propagation_clean() {
        let f = logfile(
            "impl Log {\n  fn force(&mut self, disk: &mut SimDisk) -> Result<(), E> {\n\
               disk.write(0, &buf)?;\n\
               Ok(())\n\
             }\n}\n",
        );
        assert!(run(vec![f]).is_empty());
    }

    #[test]
    fn fallback_reader_exempt() {
        let f = logfile(
            "impl Log {\n  fn read_meta(&mut self, disk: &mut SimDisk) {\n\
               let _ = disk.read(0, 1);\n\
             }\n}\n",
        );
        assert!(run(vec![f]).is_empty());
    }

    #[test]
    fn unconfigured_file_clean() {
        let f = SourceFile::parse(
            "crates/cfs/src/volume.rs".into(),
            "cfs".into(),
            false,
            "fn f(disk: &mut SimDisk) { let _ = disk.write(0, &b); }\n",
        );
        assert!(run(vec![f]).is_empty());
    }

    #[test]
    fn non_result_discard_clean() {
        let f = logfile("fn f(x: &T) { let _ = x.len(); let _ = &x; }\n");
        assert!(run(vec![f]).is_empty());
    }

    #[test]
    fn catch_all_swallowing_disk_error_flagged() {
        let f = logfile(
            "fn classify(e: DiskError) -> u8 {\n\
               match e {\n\
                 DiskError::Crashed => 1,\n\
                 _ => 0,\n\
               }\n\
             }\n",
        );
        let out = run(vec![f]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("DiskError"));
    }

    #[test]
    fn err_wild_arm_beside_named_variants_flagged() {
        let f = logfile(
            "fn probe(r: Result<u8, DiskError>) -> u8 {\n\
               match r {\n\
                 Ok(v) => v,\n\
                 Err(DiskError::Crashed) => 1,\n\
                 Err(_) => 0,\n\
               }\n\
             }\n",
        );
        assert_eq!(run(vec![f]).len(), 1);
    }

    #[test]
    fn exhaustive_match_clean() {
        let f = logfile(
            "fn classify(e: DiskError) -> u8 {\n\
               match e {\n\
                 DiskError::Crashed => 1,\n\
                 DiskError::BadRequest => 0,\n\
               }\n\
             }\n",
        );
        assert!(run(vec![f]).is_empty());
    }

    #[test]
    fn match_without_error_idents_clean() {
        let f = logfile("fn pick(x: Option<u8>) -> u8 { match x { Some(v) => v, _ => 0 } }\n");
        assert!(run(vec![f]).is_empty());
    }
}
