//! disk-taint / taint-arith / decode-coverage: prove that every on-disk
//! byte is validated before it steers recovery.
//!
//! Cedar's robustness story (§4) is that recovery trusts nothing but
//! self-certifying structures — but one page number or length decoded from
//! a corrupted sector becomes a panic (`nt_a_sector`'s range assert, the
//! VAM bitmap), an OOM (`with_capacity`), or a wild disk write (a spare
//! map or redo target steering an `IoBatch`) during the one phase that
//! must never fail. This family checks the discipline statically:
//!
//! * **sources** — raw disk reads and the typed decode helpers over their
//!   bytes (`taint_source_calls`). A binding initialized from one is
//!   tainted, and taint follows assignments, field accesses, method
//!   chains, `match`/`if let`/`for` pattern bindings, and call returns.
//! * **sanitizers** — a dominating `if`/`while` check whose condition
//!   compares a tainted variable, bounded accessors / checked conversions
//!   (`taint_sanitizer_methods`), and validator calls
//!   (`taint_validator_calls`: `runs_sane`, `validate`) that vouch for
//!   their receiver and arguments with a typed error.
//! * **sinks** — panic-prone or region-critical calls
//!   (`taint_sink_calls`): layout address math, VAM bitmap ops,
//!   allocation lengths, and addresses handed to batched I/O.
//!
//! Flows are tracked interprocedurally with per-function summaries
//! computed to fixpoint over the call graph (same shape as `wal-order`):
//! whether the return value is disk-derived, which parameters flow to the
//! return, and which parameters reach a sink unvalidated. A call passing
//! a tainted argument to an unsafe parameter is a finding at the call
//! site. Findings are only *emitted* for the recovery trust boundary
//! (`taint_files`); summaries cover the whole workspace.
//!
//! **taint-arith** flags `+`/`*`/`<<` token-adjacent to a tainted
//! variable before any range check — sector arithmetic that overflows in
//! debug builds or fabricates wild addresses. (The lossy AST drops
//! operators, so this is a token-level check on the variable's line;
//! field-expression arithmetic is caught once the field is bound to a
//! variable.)
//!
//! **decode-coverage** is the completeness backstop: every configured
//! on-disk struct field (`decode_fields`) must be mentioned inside a
//! validator fn body or sit adjacent to a comparison / sanitizer method
//! somewhere in library code — so adding a field to an on-disk struct
//! without teaching a validator about it is itself a finding.

use crate::ast::{self, Arm, Block, Expr, FnDef, Stmt};
use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// Taint carried by one value: a disk-byte origin (with a human
/// description of where it came from) and/or the set of parameters of the
/// current function it derives from.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Taint {
    /// `Some(origin)` when the value derives from raw disk bytes.
    src: Option<String>,
    /// Parameter indices (into `FnDef::params`) the value derives from.
    params: BTreeSet<usize>,
}

impl Taint {
    fn clean() -> Self {
        Self::default()
    }

    fn is_clean(&self) -> bool {
        self.src.is_none() && self.params.is_empty()
    }

    fn union(&mut self, other: &Taint) {
        if self.src.is_none() {
            self.src = other.src.clone();
        }
        self.params.extend(other.params.iter().copied());
    }
}

/// Per-function flow summary, computed to fixpoint.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Summary {
    /// The return value derives from raw disk bytes read inside.
    returns_src: bool,
    /// Parameters that flow (unsanitized) into the return value.
    returns_params: BTreeSet<usize>,
    /// Parameter index -> description of the first unvalidated use
    /// (sink or arithmetic) it reaches inside this function.
    unsafe_params: BTreeMap<usize, String>,
}

/// Runs the disk-taint family: `disk-taint`, `taint-arith`, and
/// `decode-coverage`.
pub fn check(files: &[SourceFile], config: &Config) -> Vec<Finding> {
    let mut out = decode_coverage(files, config);
    if config.taint_files.is_empty() {
        return out;
    }
    let cg = CallGraph::build(files);
    let mut sums = vec![Summary::default(); cg.nodes.len()];
    // Summaries to fixpoint (monotone in practice; the cap is a backstop).
    for _ in 0..10 {
        let mut next = Vec::with_capacity(sums.len());
        for (_, file, def) in cg.iter() {
            if skip_fn(file, def.line) || def.body.is_none() {
                next.push(Summary::default());
                continue;
            }
            let mut w = Walker::new(&cg, config, &sums, file, def);
            let ret = w.walk_fn();
            next.push(Summary {
                returns_src: ret.src.is_some(),
                returns_params: ret.params,
                unsafe_params: w.param_uses,
            });
        }
        let changed = next != sums;
        sums = next;
        if !changed {
            break;
        }
    }
    // Findings: re-walk the trust-boundary files with converged summaries.
    for (_, file, def) in cg.iter() {
        if !config.taint_files.iter().any(|p| *p == file.rel) {
            continue;
        }
        if skip_fn(file, def.line) || def.body.is_none() {
            continue;
        }
        let mut w = Walker::new(&cg, config, &sums, file, def);
        let _ = w.walk_fn();
        for v in w.viols {
            out.push(Finding {
                rule: v.rule,
                file: file.rel.clone(),
                line: v.line,
                item: def.name.clone(),
                snippet: v.snippet,
                message: v.message,
            });
        }
    }
    out
}

fn skip_fn(file: &SourceFile, line: u32) -> bool {
    file.is_test_line(line)
}

#[derive(Clone, Debug)]
struct Violation {
    rule: &'static str,
    line: u32,
    snippet: String,
    message: String,
}

struct Walker<'a> {
    cg: &'a CallGraph<'a>,
    config: &'a Config,
    sums: &'a [Summary],
    file: &'a SourceFile,
    def: &'a FnDef,
    /// Current taint of each live binding.
    vars: BTreeMap<String, Taint>,
    /// This path has left the function.
    diverged: bool,
    /// Taint accumulated by explicit `return value` expressions.
    ret: Taint,
    /// Source-taint violations (findings when the fn is in scope).
    viols: Vec<Violation>,
    /// Parameter-taint violations (the fn's unsafe-parameter summary).
    param_uses: BTreeMap<usize, String>,
    /// (line, var) pairs already reported for arithmetic.
    arith_seen: BTreeSet<(u32, String)>,
}

impl<'a> Walker<'a> {
    fn new(
        cg: &'a CallGraph<'a>,
        config: &'a Config,
        sums: &'a [Summary],
        file: &'a SourceFile,
        def: &'a FnDef,
    ) -> Self {
        let mut vars = BTreeMap::new();
        // Parameters start parameter-tainted (feeding the summary, never a
        // direct finding). `self` is not seeded: field flows through the
        // receiver are beyond a name-based analysis, and seeding it makes
        // every method summary unsafe.
        for (i, p) in def.params.iter().enumerate() {
            if p != "self" {
                vars.insert(
                    p.clone(),
                    Taint {
                        src: None,
                        params: BTreeSet::from([i]),
                    },
                );
            }
        }
        Self {
            cg,
            config,
            sums,
            file,
            def,
            vars,
            diverged: false,
            ret: Taint::clean(),
            viols: Vec::new(),
            param_uses: BTreeMap::new(),
            arith_seen: BTreeSet::new(),
        }
    }

    /// Walks the whole body; returns the taint of the return value.
    fn walk_fn(&mut self) -> Taint {
        let Some(body) = self.def.body.as_ref() else {
            return Taint::clean();
        };
        let mut tail = self.block(body);
        let ret = std::mem::take(&mut self.ret);
        tail.union(&ret);
        tail
    }

    /// Walks a block; returns the taint of its tail expression.
    fn block(&mut self, b: &Block) -> Taint {
        let mut tail = Taint::clean();
        for (i, s) in b.stmts.iter().enumerate() {
            let last = i + 1 == b.stmts.len();
            match s {
                Stmt::Let {
                    names,
                    init,
                    else_block,
                    ..
                } => {
                    let t = match init {
                        Some(e) => self.eval(e),
                        None => Taint::clean(),
                    };
                    // A let-else's else block always diverges; walk it as a
                    // side branch that does not affect the main path.
                    if let Some(eb) = else_block {
                        let (_, _) = self.branch(|w| w.block(eb));
                    }
                    for n in names {
                        if t.is_clean() {
                            self.vars.remove(n);
                        } else {
                            self.vars.insert(n.clone(), t.clone());
                        }
                    }
                    tail = Taint::clean();
                }
                Stmt::Expr(e) => {
                    let t = self.eval(e);
                    tail = if last { t } else { Taint::clean() };
                }
            }
        }
        tail
    }

    /// Runs `f` as a branch from the current state; returns (value taint,
    /// end state) and restores the walker's state.
    #[allow(clippy::type_complexity)]
    fn branch(
        &mut self,
        f: impl FnOnce(&mut Self) -> Taint,
    ) -> (Taint, (BTreeMap<String, Taint>, bool)) {
        let save_vars = self.vars.clone();
        let save_div = self.diverged;
        let t = f(self);
        let end = (
            std::mem::replace(&mut self.vars, save_vars),
            std::mem::replace(&mut self.diverged, save_div),
        );
        (t, end)
    }

    /// Merges branch end states: taint survives if it survives any
    /// non-diverging branch (union); all-diverged marks the path dead.
    fn merge(&mut self, ends: Vec<(BTreeMap<String, Taint>, bool)>) {
        let live: Vec<_> = ends.iter().filter(|(_, d)| !d).collect();
        if live.is_empty() {
            if !ends.is_empty() {
                self.diverged = true;
            }
            return;
        }
        let mut merged: BTreeMap<String, Taint> = BTreeMap::new();
        for (vars, _) in &live {
            for (k, v) in vars.iter() {
                merged.entry(k.clone()).or_default().union(v);
            }
        }
        self.vars = merged;
    }

    fn taint_of_var(&self, name: &str) -> Taint {
        self.vars.get(name).cloned().unwrap_or_default()
    }

    /// Removes all taint from the variable (a dominating check or a
    /// validator vouched for it).
    fn sanitize_var(&mut self, name: &str) {
        self.vars.remove(name);
    }

    fn violation(&mut self, rule: &'static str, line: u32, snippet: String, message: String) {
        if self
            .viols
            .iter()
            .any(|v| v.rule == rule && v.line == line && v.snippet == snippet)
        {
            return;
        }
        self.viols.push(Violation {
            rule,
            line,
            snippet,
            message,
        });
    }

    /// Records an unvalidated use of a tainted value: a finding for
    /// source taint, a summary entry for parameter taint.
    fn unsafe_use(
        &mut self,
        rule: &'static str,
        line: u32,
        snippet: String,
        t: &Taint,
        what: &str,
    ) {
        if let Some(origin) = &t.src {
            self.violation(
                rule,
                line,
                snippet,
                format!(
                    "{what} steered by unvalidated on-disk bytes ({origin}) — \
                     validate the decoded value (range check, `validate`, or \
                     `runs_sane`) before it reaches this point"
                ),
            );
        }
        for &p in &t.params {
            self.param_uses.entry(p).or_insert_with(|| {
                format!(
                    "{what} via parameter `{}` of `{}` at {}:{}",
                    self.def.params.get(p).map(String::as_str).unwrap_or("?"),
                    self.def.name,
                    self.file.rel,
                    line
                )
            });
        }
    }

    /// taint-arith: a tainted variable token-adjacent to `+`/`*`/`<<` on
    /// `line` is unchecked sector arithmetic.
    fn check_arith(&mut self, name: &str, line: u32, t: &Taint) {
        if t.is_clean() || self.arith_seen.contains(&(line, name.to_string())) {
            return;
        }
        let Some(op) = arith_adjacent(self.file, line, name) else {
            return;
        };
        self.arith_seen.insert((line, name.to_string()));
        self.unsafe_use(
            "taint-arith",
            line,
            format!("{name} {op} .."),
            t,
            &format!("unchecked `{op}` arithmetic on `{name}`"),
        );
    }

    /// Applies call/sink/source/sanitizer semantics once receiver and
    /// argument taints are known. `recv_t` is `None` for free calls.
    fn call(
        &mut self,
        name: &str,
        line: u32,
        recv: Option<&Expr>,
        recv_t: Option<&Taint>,
        args: &[Expr],
        arg_ts: &[Taint],
    ) -> Taint {
        let in_test = self.file.is_test_line(line);
        // Sinks first: a tainted value steering one is the core finding.
        if !in_test {
            if let Some((_, pos)) = self
                .config
                .taint_sink_calls
                .iter()
                .find(|(n, _)| *n == name)
            {
                for (i, t) in arg_ts.iter().enumerate() {
                    if pos.is_some_and(|p| p != i) || t.is_clean() {
                        continue;
                    }
                    self.unsafe_use(
                        "disk-taint",
                        line,
                        format!("{name}(arg {i})"),
                        t,
                        &format!("sink `{name}` (argument {i})"),
                    );
                }
            }
        }
        // Sources: the result is disk bytes, whatever the arguments were.
        if self.config.taint_source_calls.contains(&name) {
            return Taint {
                src: Some(format!("`{name}` at {}:{line}", self.file.rel)),
                params: BTreeSet::new(),
            };
        }
        // Validators vouch for their receiver and arguments.
        if self.config.taint_validator_calls.contains(&name) {
            if let Some(r) = recv {
                if let Some(v) = root_var(r) {
                    self.sanitize_var(&v);
                }
            }
            for a in args {
                if let Some(v) = root_var(a) {
                    self.sanitize_var(&v);
                }
            }
            return Taint::clean();
        }
        // Sanitizer methods: result is safe; `retain` prunes in place.
        if self.config.taint_sanitizer_methods.contains(&name) {
            if name == "retain" {
                if let Some(r) = recv {
                    if let Some(v) = root_var(r) {
                        self.sanitize_var(&v);
                    }
                }
            }
            return Taint::clean();
        }
        // Mutating collection methods: a tainted *first* value (the
        // key/address position — for a tuple argument, the tuple's first
        // item) taints the receiver. Payload slots do not: a clean address
        // carrying tainted bytes is exactly the safe shape.
        if self.config.taint_collect_methods.contains(&name) {
            let steer = match args.first() {
                Some(Expr::Seq { items, .. }) if !items.is_empty() => self.eval(&items[0]),
                _ => arg_ts.first().cloned().unwrap_or_default(),
            };
            if let Some(r) = recv {
                if !steer.is_clean() {
                    if let Some(v) = root_var(r) {
                        let mut cur = self.taint_of_var(&v);
                        cur.union(&steer);
                        self.vars.insert(v, cur);
                    }
                }
            }
            return Taint::clean();
        }
        // Workspace callees: use the converged summary. A name resolving
        // to many unrelated defs (`new`, `open`, `entry`) is ambiguity,
        // not knowledge — treat it like an unknown callee instead of
        // unioning every homonym's summary.
        let nodes = self.cg.resolve(&self.file.crate_key, name);
        if !nodes.is_empty() && nodes.len() <= 3 {
            let mut result = Taint::clean();
            for &node in nodes {
                let sum = &self.sums[node];
                let callee = self.cg.nodes[node].def;
                let has_self = callee.params.first().is_some_and(|p| p == "self");
                // Map call-site values onto callee parameter indices.
                let mut mapped: Vec<(usize, &Taint)> = Vec::new();
                if let (Some(t), true) = (recv_t, has_self) {
                    mapped.push((0, t));
                }
                let off = usize::from(recv_t.is_some() && has_self);
                for (i, t) in arg_ts.iter().enumerate() {
                    mapped.push((i + off, t));
                }
                if sum.returns_src {
                    result.union(&Taint {
                        src: Some(format!("`{name}` at {}:{line}", self.file.rel)),
                        params: BTreeSet::new(),
                    });
                }
                for (p, t) in &mapped {
                    if in_test || t.is_clean() {
                        continue;
                    }
                    if sum.returns_params.contains(p) {
                        result.union(t);
                    }
                    if let Some(site) = sum.unsafe_params.get(p) {
                        self.unsafe_use(
                            "disk-taint",
                            line,
                            format!("{name}(..) unvalidated"),
                            t,
                            &format!("call to `{name}` which reaches {site}"),
                        );
                    }
                }
            }
            return result;
        }
        // Unknown callee (std / primitive): conservative pass-through.
        let mut result = Taint::clean();
        if let Some(t) = recv_t {
            result.union(t);
        }
        for t in arg_ts {
            result.union(t);
        }
        result
    }

    /// Sanitizes every tainted variable mentioned in a condition, if the
    /// condition's token span contains a comparison (a real bounds/equality
    /// check — `if let Ok(x) = ..` does not sanitize).
    fn sanitize_by_cond(&mut self, cond: &Expr) {
        let (mut lo, mut hi) = (u32::MAX, 0u32);
        let mut mentioned: BTreeSet<String> = BTreeSet::new();
        ast::walk_expr(cond, &mut |e| {
            let l = e.line();
            lo = lo.min(l);
            hi = hi.max(l);
            if let Expr::Path { segs, .. } = e {
                if let Some(first) = segs.first() {
                    if self.vars.contains_key(first) {
                        mentioned.insert(first.clone());
                    }
                }
            }
        });
        if mentioned.is_empty() || !span_has_comparison(self.file, lo, hi) {
            return;
        }
        for v in mentioned {
            self.sanitize_var(&v);
        }
    }

    fn eval(&mut self, e: &Expr) -> Taint {
        match e {
            Expr::Atom { .. } => Taint::clean(),
            Expr::Macro { name, .. } => {
                if matches!(
                    name.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) {
                    self.diverged = true;
                }
                Taint::clean()
            }
            Expr::Path { segs, line } => {
                let Some(first) = segs.first() else {
                    return Taint::clean();
                };
                let t = if segs.len() == 1 {
                    self.taint_of_var(first)
                } else {
                    Taint::clean()
                };
                self.check_arith(first, *line, &t.clone());
                t
            }
            Expr::Field { base, .. } => self.eval(base),
            Expr::Seq { items, .. } => {
                let mut t = Taint::clean();
                for it in items {
                    let ti = self.eval(it);
                    t.union(&ti);
                }
                t
            }
            Expr::Call { func, args, line } => {
                let arg_ts: Vec<Taint> = args.iter().map(|a| self.eval(a)).collect();
                match func.last_name() {
                    Some(name) => {
                        let name = name.to_string();
                        self.call(&name, *line, None, None, args, &arg_ts)
                    }
                    None => {
                        let mut t = self.eval(func);
                        for ti in &arg_ts {
                            t.union(ti);
                        }
                        t
                    }
                }
            }
            Expr::MethodCall {
                recv,
                method,
                args,
                line,
            } => {
                let recv_t = self.eval(recv);
                let arg_ts: Vec<Taint> = args.iter().map(|a| self.eval(a)).collect();
                let method = method.clone();
                self.call(&method, *line, Some(recv), Some(&recv_t), args, &arg_ts)
            }
            Expr::Block { block, .. } => self.block(block),
            Expr::If {
                cond, then, alt, ..
            } => {
                let cond_t = self.eval(cond);
                self.sanitize_by_cond(cond);
                // `if let` bindings live in the then-branch with the
                // scrutinee's taint (pattern names come from the tokens —
                // the AST strips let patterns from conditions).
                let bind = let_pattern_names(self.file, e.line());
                let (tt, te) = self.branch(|w| {
                    for n in &bind {
                        if cond_t.is_clean() {
                            w.vars.remove(n);
                        } else {
                            w.vars.insert(n.clone(), cond_t.clone());
                        }
                    }
                    w.block(then)
                });
                let (at, ae) = match alt {
                    Some(a) => self.branch(|w| w.eval(a)),
                    None => (Taint::clean(), (self.vars.clone(), false)),
                };
                let mut t = Taint::clean();
                if !te.1 {
                    t.union(&tt);
                }
                if !ae.1 {
                    t.union(&at);
                }
                self.merge(vec![te, ae]);
                t
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                let st = self.eval(scrutinee);
                let mut ends = Vec::with_capacity(arms.len());
                let mut t = Taint::clean();
                for arm in arms {
                    let bind = arm_pattern_names(arm);
                    let (at, end) = self.branch(|w| {
                        for n in &bind {
                            if st.is_clean() {
                                w.vars.remove(n);
                            } else {
                                w.vars.insert(n.clone(), st.clone());
                            }
                        }
                        w.eval(&arm.body)
                    });
                    if !end.1 {
                        t.union(&at);
                    }
                    ends.push(end);
                }
                self.merge(ends);
                t
            }
            Expr::Loop { body, .. } => {
                self.block(body);
                Taint::clean()
            }
            Expr::While { cond, body, .. } => {
                let cond_t = self.eval(cond);
                self.sanitize_by_cond(cond);
                // `while let` bindings (e.g. `while let Some(chunk) =
                // rx.recv()`) carry the scrutinee's taint into the body.
                let bind = let_pattern_names(self.file, e.line());
                for n in &bind {
                    if cond_t.is_clean() {
                        self.vars.remove(n);
                    } else {
                        self.vars.insert(n.clone(), cond_t.clone());
                    }
                }
                self.block(body);
                Taint::clean()
            }
            Expr::For { iter, body, .. } => {
                let iter_t = self.eval(iter);
                let bind = for_pattern_names(self.file, e.line());
                // `.enumerate()` makes the first pattern name a counter the
                // iterator produced, not disk bytes.
                let enumerated = matches!(iter.as_ref(), Expr::MethodCall { method, .. } if method == "enumerate");
                for (i, n) in bind.iter().enumerate() {
                    if iter_t.is_clean() || (enumerated && i == 0) {
                        self.vars.remove(n);
                    } else {
                        self.vars.insert(n.clone(), iter_t.clone());
                    }
                }
                self.block(body);
                Taint::clean()
            }
            Expr::Closure { params, body, .. } => {
                // Walked in isolation: closure parameters are clean (the
                // adapter supplying them decides boundedness), effects stay
                // local, but the *result* taint propagates to the adapter
                // chain (`find_map(|s| decode(s))` yields disk bytes).
                let (t, _) = self.branch(|w| {
                    for p in params {
                        w.vars.remove(p);
                    }
                    w.eval(body)
                });
                t
            }
            Expr::Ret { value, .. } => {
                if let Some(v) = value {
                    let t = self.eval(v);
                    self.ret.union(&t);
                }
                self.diverged = true;
                Taint::clean()
            }
        }
    }
}

/// The simple variable a receiver/argument expression roots in:
/// `entry` / `&entry` / `entry.run_table` / `entry.runs()` → `entry`.
fn root_var(e: &Expr) -> Option<String> {
    match e {
        Expr::Path { segs, .. } if segs.len() == 1 => Some(segs[0].clone()),
        Expr::Field { base, .. } => root_var(base),
        Expr::MethodCall { recv, .. } => root_var(recv),
        Expr::Seq { items, .. } if items.len() == 1 => root_var(&items[0]),
        _ => None,
    }
}

/// Keywords never bound by a pattern.
const NON_BINDING: &[&str] = &["mut", "ref", "box", "let", "if", "in", "move", "_"];

fn binding_ident(text: &str) -> bool {
    text.chars()
        .next()
        .map(|c| c.is_ascii_lowercase() || c == '_')
        .unwrap_or(false)
        && !NON_BINDING.contains(&text)
}

/// Lowercase idents bound by a `for` pattern: tokens between `for` and
/// `in` on the loop's line.
fn for_pattern_names(file: &SourceFile, line: u32) -> Vec<String> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    let mut active = false;
    for t in toks.iter().filter(|t| t.line == line) {
        if t.is_ident("for") {
            active = true;
            continue;
        }
        if t.is_ident("in") && active {
            break;
        }
        if active && t.kind == TokKind::Ident && binding_ident(&t.text) {
            out.push(t.text.clone());
        }
    }
    out
}

/// Lowercase idents bound by an `if let` / `while let` pattern: tokens
/// between `let` and the `=` on the same line.
fn let_pattern_names(file: &SourceFile, line: u32) -> Vec<String> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    let mut active = false;
    let on_line: Vec<_> = toks.iter().filter(|t| t.line == line).collect();
    for (i, t) in on_line.iter().enumerate() {
        if t.is_ident("let") {
            active = true;
            continue;
        }
        if active && t.is_punct('=') && !on_line.get(i + 1).is_some_and(|n| n.is_punct('=')) {
            break;
        }
        if active && t.kind == TokKind::Ident && binding_ident(&t.text) {
            out.push(t.text.clone());
        }
    }
    out
}

/// Lowercase idents bound by a match arm's pattern (guard excluded).
fn arm_pattern_names(arm: &Arm) -> Vec<String> {
    arm.pat
        .iter()
        .take_while(|t| *t != "if")
        .filter(|t| binding_ident(t))
        .cloned()
        .collect()
}

/// True if tokens in `lo..=hi` contain a comparison (`<`, `>`, `==`,
/// `!=`) or a containment check — the shapes that make an `if` a real
/// bounds check rather than a mere destructuring.
fn span_has_comparison(file: &SourceFile, lo: u32, hi: u32) -> bool {
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.line < lo || t.line > hi {
            continue;
        }
        if t.is_ident("contains") {
            return true;
        }
        let prev = i.checked_sub(1).map(|j| &toks[j]);
        match t.kind {
            // `<` / `>` — excluding `->` arrows and `=>` fat arrows.
            TokKind::Punct('<') => return true,
            TokKind::Punct('>') if !prev.is_some_and(|p| p.is_punct('-') || p.is_punct('=')) => {
                return true;
            }
            // `==` / `!=` as adjacent single-char puncts.
            TokKind::Punct('=') if prev.is_some_and(|p| p.is_punct('=') || p.is_punct('!')) => {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// If `name` on `line` is token-adjacent to binary `+`, `*`, or `<<`,
/// returns the operator. Deref `*x` and references are excluded by
/// requiring an operand on the outer side of the operator.
fn arith_adjacent(file: &SourceFile, line: u32, name: &str) -> Option<&'static str> {
    const KEYWORDS: &[&str] = &[
        "if", "else", "return", "in", "match", "while", "let", "mut", "ref", "move", "break",
        "continue", "for", "loop", "as",
    ];
    let toks = &file.tokens;
    // Keywords are not operands: `if *n >= k` is a deref, not a product.
    let operand = |i: usize| match toks.get(i) {
        Some(t) => match &t.kind {
            TokKind::Ident => !KEYWORDS.contains(&t.text.as_str()),
            TokKind::Num => true,
            _ => t.is_punct(')') || t.is_punct(']'),
        },
        None => false,
    };
    for (i, t) in toks.iter().enumerate() {
        if t.line != line || !t.is_ident(name) {
            continue;
        }
        // name + .. / name * .. / name << ..
        if let Some(n) = toks.get(i + 1) {
            if n.is_punct('+') {
                return Some("+");
            }
            if n.is_punct('*')
                && (operand(i + 2) || toks.get(i + 2).is_some_and(|t| t.is_punct('(')))
            {
                return Some("*");
            }
            if n.is_punct('<') && toks.get(i + 2).is_some_and(|t| t.is_punct('<')) {
                return Some("<<");
            }
        }
        // .. + name / .. * name / .. << name (outer side must end an
        // operand, so `&name`, `*name` (deref), and `(name` stay clean).
        if i >= 2 {
            let op = &toks[i - 1];
            if op.is_punct('+') && operand(i - 2) {
                return Some("+");
            }
            if op.is_punct('*') && operand(i - 2) {
                return Some("*");
            }
            if op.is_punct('<') && toks[i - 2].is_punct('<') && i >= 3 && operand(i - 3) {
                return Some("<<");
            }
        }
    }
    None
}

/// decode-coverage: every configured on-disk field must be mentioned by a
/// validator or sit next to a comparison / sanitizer somewhere in library
/// code. Triples whose defining file or type is absent are skipped.
fn decode_coverage(files: &[SourceFile], config: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for (rel, ty, field) in &config.decode_fields {
        let Some(def_file) = files.iter().find(|f| f.rel == *rel) else {
            continue;
        };
        let Some(def_line) = type_def_line(def_file, ty) else {
            continue;
        };
        if files
            .iter()
            .filter(|f| !f.is_aux)
            .any(|f| field_sanitized(f, field, config))
        {
            continue;
        }
        out.push(Finding {
            rule: "decode-coverage",
            file: (*rel).to_string(),
            line: def_line,
            item: (*ty).to_string(),
            snippet: (*field).to_string(),
            message: format!(
                "on-disk field `{ty}.{field}` is decoded in recovery but never \
                 validated — no validator fn mentions it and no comparison or \
                 bounded accessor guards it; a corrupted sector steers recovery \
                 through it unchecked"
            ),
        });
    }
    out
}

/// Line of `struct T` / `enum T` in `file`, if defined there.
fn type_def_line(file: &SourceFile, ty: &str) -> Option<u32> {
    let toks = &file.tokens;
    toks.windows(2).find_map(|w| {
        if (w[0].is_ident("struct") || w[0].is_ident("enum")) && w[1].is_ident(ty) {
            Some(w[1].line)
        } else {
            None
        }
    })
}

/// True if `file` contains a sanitizing mention of `field`: inside a
/// validator fn's body, or `.field` within a few tokens of a comparison,
/// or `.field.<sanitizer>(`.
fn field_sanitized(file: &SourceFile, field: &str, config: &Config) -> bool {
    let toks = &file.tokens;
    // Validator bodies vouch for every field they mention.
    for (name, a, b) in file.fn_spans() {
        if !config.taint_validator_calls.contains(&name.as_str()) {
            continue;
        }
        if toks
            .iter()
            .any(|t| t.line >= *a && t.line <= *b && t.is_ident(field))
        {
            return true;
        }
    }
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident(field) || file.is_test_line(t.line) {
            continue;
        }
        if !i.checked_sub(1).is_some_and(|j| toks[j].is_punct('.')) {
            continue;
        }
        // `.field` chained into a sanitizer method.
        if toks.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && toks.get(i + 2).is_some_and(|n| {
                n.kind == TokKind::Ident
                    && config.taint_sanitizer_methods.contains(&n.text.as_str())
            })
        {
            return true;
        }
        // `.field` within a short window of a comparison.
        let lo = i.saturating_sub(6);
        let hi = (i + 7).min(toks.len());
        for j in lo..hi {
            let w = &toks[j];
            let prev = j.checked_sub(1).map(|k| &toks[k]);
            match w.kind {
                TokKind::Punct('<') => return true,
                TokKind::Punct('>')
                    if !prev.is_some_and(|p| p.is_punct('-') || p.is_punct('=')) =>
                {
                    return true;
                }
                TokKind::Punct('=') if prev.is_some_and(|p| p.is_punct('=') || p.is_punct('!')) => {
                    return true;
                }
                _ => {}
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(src: &str) -> SourceFile {
        SourceFile::parse(
            "crates/fsd/src/recovery.rs".into(),
            "fsd".into(),
            false,
            src,
        )
    }

    fn run(files: Vec<SourceFile>) -> Vec<Finding> {
        check(&files, &Config::cedar())
    }

    #[test]
    fn source_to_sink_is_flagged() {
        let f = rec("pub fn redo(layout: &FsdLayout, buf: &[u8]) {\n\
             let header = decode_header(buf);\n\
             layout.nt_a_sector(header.page);\n\
             }\n");
        let out = run(vec![f]);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, "disk-taint");
        assert_eq!(out[0].item, "redo");
        assert!(
            out[0].message.contains("decode_header"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn dominating_comparison_sanitizes() {
        let f = rec("pub fn redo(layout: &FsdLayout, buf: &[u8]) {\n\
             let header = decode_header(buf);\n\
             if header.page >= layout.nt_pages { return; }\n\
             layout.nt_a_sector(header.page);\n\
             }\n");
        assert!(run(vec![f]).is_empty());
    }

    #[test]
    fn validator_call_sanitizes() {
        let f = rec("pub fn redo(layout: &FsdLayout, buf: &[u8]) {\n\
             let entry = decode_header(buf);\n\
             if !runs_sane(layout, &entry) { return; }\n\
             vam.free_run(entry.run);\n\
             }\n\
             fn runs_sane(layout: &FsdLayout, entry: &FileEntry) -> bool { true }\n");
        assert!(run(vec![f]).is_empty());
    }

    #[test]
    fn if_let_does_not_sanitize() {
        let f = rec("pub fn redo(layout: &FsdLayout, buf: &[u8]) {\n\
             let header = decode_header(buf);\n\
             if let Some(page) = header.page {\n\
             layout.nt_a_sector(page);\n\
             }\n}\n");
        let out = run(vec![f]);
        assert_eq!(out.len(), 1, "{out:#?}");
    }

    #[test]
    fn unsafe_param_flagged_at_call_site() {
        let f = rec("pub fn redo(layout: &FsdLayout, buf: &[u8]) {\n\
             let header = decode_header(buf);\n\
             apply(layout, header.page);\n\
             }\n\
             fn apply(layout: &FsdLayout, page: u32) { layout.nt_a_sector(page); }\n");
        let out = run(vec![f]);
        // One finding at the call site in `redo`; `apply` itself has only
        // parameter taint, which is a summary, not a finding.
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].item, "redo");
        assert!(out[0].message.contains("apply"), "{}", out[0].message);
    }

    #[test]
    fn callee_guard_clears_the_summary() {
        let f = rec("pub fn redo(layout: &FsdLayout, buf: &[u8]) {\n\
             let header = decode_header(buf);\n\
             apply(layout, header.page);\n\
             }\n\
             fn apply(layout: &FsdLayout, page: u32) {\n\
             if page >= layout.nt_pages { return; }\n\
             layout.nt_a_sector(page);\n\
             }\n");
        assert!(run(vec![f]).is_empty());
    }

    #[test]
    fn returned_taint_propagates_through_helper() {
        let f = rec("pub fn redo(layout: &FsdLayout, buf: &[u8]) {\n\
             let header = fetch(buf);\n\
             layout.nt_a_sector(header.page);\n\
             }\n\
             fn fetch(buf: &[u8]) -> Header { decode_header(buf) }\n");
        let out = run(vec![f]);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].item, "redo");
    }

    #[test]
    fn tainted_arith_flagged() {
        let f = rec("pub fn scan(buf: &[u8], log_size: u32) {\n\
             let meta = decode_header(buf);\n\
             let mut pos = meta.oldest_offset;\n\
             let end = pos + 5;\n\
             }\n");
        let out = run(vec![f]);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, "taint-arith");
        assert!(out[0].snippet.contains('+'), "{}", out[0].snippet);
    }

    #[test]
    fn deref_is_not_arith() {
        let f = rec("pub fn redo(m: &mut M, buf: &[u8]) {\n\
             let header = decode_header(buf);\n\
             let x = *header;\n\
             let y = (*header).clone();\n\
             }\n");
        assert!(run(vec![f]).is_empty());
    }

    #[test]
    fn enumerate_index_is_clean() {
        let f = rec("pub fn scan(layout: &FsdLayout, buf: &[u8]) {\n\
             let data = decode_header(buf);\n\
             for (i, s) in data.chunks(512).enumerate() {\n\
             layout.nt_a_sector(i as u32);\n\
             }\n}\n");
        assert!(run(vec![f]).is_empty());
    }

    #[test]
    fn for_binding_carries_iter_taint() {
        let f = rec("pub fn redo(layout: &FsdLayout, buf: &[u8]) {\n\
             let images = decode_header(buf);\n\
             for (target, img) in &images {\n\
             layout.nt_a_sector(target.page);\n\
             }\n}\n");
        let out = run(vec![f]);
        assert_eq!(out.len(), 1, "{out:#?}");
    }

    #[test]
    fn tainted_key_insert_taints_map_payload_does_not() {
        let key = rec(
            "pub fn bad(disk: &mut SimDisk, spare: &mut SpareMap, buf: &[u8]) {\n\
             let header = decode_header(buf);\n\
             let mut m = BTreeMap::new();\n\
             m.insert(header.addr, vec![0u8]);\n\
             write_home_batch(disk, policy, spare, m);\n\
             }\n",
        );
        let out = run(vec![key]);
        assert_eq!(out.len(), 1, "{out:#?}");
        let val = rec(
            "pub fn ok(disk: &mut SimDisk, spare: &mut SpareMap, buf: &[u8], addr: u32) {\n\
             let header = decode_header(buf);\n\
             if addr > 0 { return; }\n\
             let mut m = BTreeMap::new();\n\
             m.insert(addr, header.bytes);\n\
             write_home_batch(disk, policy, spare, m);\n\
             }\n",
        );
        assert!(
            run(vec![val]).is_empty(),
            "payload taint must not flag the map"
        );
    }

    #[test]
    fn tuple_push_payload_slot_does_not_taint_batch() {
        // `writes.push((clean_addr, tainted_image))` is the safe redo
        // shape: validated address, raw bytes. Only the tuple's first
        // item steers the collection.
        let f = rec(
            "pub fn scrub(disk: &mut SimDisk, spare: &mut SpareMap, buf: &[u8], at: u32) {\n\
             let image = decode_header(buf);\n\
             if at == 0 { return; }\n\
             let mut writes = Vec::new();\n\
             writes.push((at, image));\n\
             scrub_batch(disk, policy, spare, writes);\n\
             }\n",
        );
        assert!(run(vec![f]).is_empty());
        let bad = rec(
            "pub fn scrub(disk: &mut SimDisk, spare: &mut SpareMap, buf: &[u8]) {\n\
             let image = decode_header(buf);\n\
             let mut writes = Vec::new();\n\
             writes.push((image.addr, vec![0u8]));\n\
             scrub_batch(disk, policy, spare, writes);\n\
             }\n",
        );
        assert_eq!(run(vec![bad]).len(), 1);
    }

    #[test]
    fn deref_guard_is_not_multiplication() {
        let f = rec("pub fn absorb(buf: &[u8]) {\n\
             let n = decode_header(buf);\n\
             if *n >= 3 { bump(); }\n\
             }\n");
        assert!(run(vec![f]).is_empty());
    }

    #[test]
    fn ambiguous_callee_names_are_pass_through() {
        // Four unrelated `new` defs: resolution is ambiguity, not
        // knowledge — the dangerous summary of one homonym must not
        // contaminate calls to the others.
        let lib = SourceFile::parse(
            "crates/fsd/src/cache.rs".into(),
            "fsd".into(),
            false,
            "impl A { pub fn new(layout: &FsdLayout, pages: u32) -> A {\n\
             layout.nt_a_sector(pages); A }\n}\n\
             impl B { pub fn new(x: u32) -> B { B } }\n\
             impl C { pub fn new(x: u32) -> C { C } }\n\
             impl D { pub fn new(x: u32) -> D { D } }\n",
        );
        let f = rec("pub fn redo(buf: &[u8]) {\n\
             let header = decode_header(buf);\n\
             let r = Run::new(header.start, 1);\n\
             }\n");
        assert!(run(vec![lib, f]).is_empty());
    }

    #[test]
    fn closure_result_taints_adapter_chain() {
        let f = rec("pub fn scan(layout: &FsdLayout, buf: &[u8]) {\n\
             let header = [0usize].iter().find_map(|i| decode_header(buf));\n\
             layout.nt_a_sector(header.page);\n\
             }\n");
        let out = run(vec![f]);
        assert_eq!(out.len(), 1, "{out:#?}");
    }

    #[test]
    fn findings_scoped_to_taint_files() {
        let f = SourceFile::parse(
            "crates/fsd/src/volume.rs".into(),
            "fsd".into(),
            false,
            "pub fn op(layout: &FsdLayout, buf: &[u8]) {\n\
             let header = decode_header(buf);\n\
             layout.nt_a_sector(header.page);\n\
             }\n",
        );
        assert!(run(vec![f]).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let f = rec("#[cfg(test)]\nmod tests {\n\
             pub fn t(layout: &FsdLayout, buf: &[u8]) {\n\
             let header = decode_header(buf);\n\
             layout.nt_a_sector(header.page);\n\
             }\n}\n");
        assert!(run(vec![f]).is_empty());
    }

    #[test]
    fn decode_coverage_flags_unvalidated_field_and_skips_absent_types() {
        let log = SourceFile::parse(
            "crates/fsd/src/log.rs".into(),
            "fsd".into(),
            false,
            "pub struct LogMeta { pub oldest_offset: u32 }\n",
        );
        let out = run(vec![log]);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, "decode-coverage");
        assert_eq!(out[0].item, "LogMeta");
        assert_eq!(out[0].snippet, "oldest_offset");
        // Absent types (PageTarget, FsdBootPage, ...) are skipped silently.
    }

    #[test]
    fn decode_coverage_satisfied_by_validator_mention() {
        let log = SourceFile::parse(
            "crates/fsd/src/log.rs".into(),
            "fsd".into(),
            false,
            "pub struct LogMeta { pub oldest_offset: u32 }\n\
             impl LogMeta {\n\
             pub fn validate(&self, log_size: u32) -> Result<(), String> {\n\
             if self.oldest_offset >= log_size { return Err(String::new()); }\n\
             Ok(())\n\
             }\n}\n",
        );
        assert!(run(vec![log]).is_empty());
    }
}
