//! Const-consistency: flag integer literals that duplicate a layout
//! constant (`512` for `SECTOR_BYTES`, `1024`/`128` for the FFS block and
//! inode sizes) outside the constant's defining file.
//!
//! Hand-copied layout values are how geometry drift starts: change the
//! sector size in one place and the volume silently computes wrong
//! addresses everywhere the literal was duplicated.

use crate::config::Config;
use crate::lexer::TokKind;
use crate::source::{int_value, SourceFile};
use crate::Finding;

/// Runs the const-consistency check.
pub fn check(files: &[SourceFile], config: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if f.is_aux {
            continue;
        }
        for t in &f.tokens {
            if t.kind != TokKind::Num || f.is_test_line(t.line) {
                continue;
            }
            let Some(v) = int_value(&t.text) else {
                continue;
            };
            for kc in &config.known_consts {
                if kc.value != v {
                    continue;
                }
                if !kc.crates.is_empty() && !kc.crates.iter().any(|c| *c == f.crate_key) {
                    continue;
                }
                if kc.defining_files.iter().any(|p| *p == f.rel) {
                    continue;
                }
                out.push(Finding {
                    rule: "const-consistency",
                    file: f.rel.clone(),
                    line: t.line,
                    item: f.enclosing_fn(t.line).to_string(),
                    snippet: format!("literal {}", t.text),
                    message: format!(
                        "literal `{}` duplicates `{}`: use the constant so the \
                         layout has a single point of truth",
                        t.text, kc.const_name
                    ),
                });
                break; // One finding per literal even if values collide.
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, krate: &str, src: &str) -> SourceFile {
        SourceFile::parse(rel.into(), krate.into(), false, src)
    }

    #[test]
    fn duplicated_sector_size_flagged() {
        let f = file(
            "crates/vol/src/x.rs",
            "vol",
            "fn f() { let b = vec![0u8; 512]; }\n",
        );
        let out = check(&[f], &Config::cedar());
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("SECTOR_BYTES"));
    }

    #[test]
    fn hex_spelling_also_flagged() {
        let f = file("crates/vol/src/x.rs", "vol", "const N: usize = 0x200;\n");
        assert_eq!(check(&[f], &Config::cedar()).len(), 1);
    }

    #[test]
    fn defining_file_exempt() {
        let f = file(
            "crates/disk/src/lib.rs",
            "disk",
            "pub const SECTOR_BYTES: usize = 512;\n",
        );
        assert!(check(&[f], &Config::cedar()).is_empty());
    }

    #[test]
    fn crate_scoped_const_only_applies_in_scope() {
        // 128 is INODE_BYTES only within ffs; other crates may use 128.
        let vol = file("crates/vol/src/x.rs", "vol", "fn f() { let n = 128; }\n");
        assert!(check(&[vol], &Config::cedar()).is_empty());
        let ffs = file("crates/ffs/src/x.rs", "ffs", "fn f() { let n = 128; }\n");
        assert_eq!(check(&[ffs], &Config::cedar()).len(), 1);
    }

    #[test]
    fn test_code_exempt() {
        let f = file(
            "crates/vol/src/x.rs",
            "vol",
            "#[cfg(test)]\nmod tests {\n fn t() { assert_eq!(SECTOR_BYTES, 512); }\n}\n",
        );
        assert!(check(&[f], &Config::cedar()).is_empty());
    }

    #[test]
    fn unrelated_values_clean() {
        let f = file(
            "crates/vol/src/x.rs",
            "vol",
            "fn f() { let n = 513 + 100; }\n",
        );
        assert!(check(&[f], &Config::cedar()).is_empty());
    }
}
