//! Unsafe hygiene: every covered crate's `lib.rs` must carry
//! `#![deny(unsafe_code)]` (or `forbid`), and any `unsafe` block that does
//! exist must have a `// SAFETY:` comment within three lines above it.

use crate::config::Config;
use crate::source::SourceFile;
use crate::Finding;

/// Runs the unsafe-hygiene checks.
pub fn check(files: &[SourceFile], config: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    check_deny_attr(files, config, &mut out);
    check_safety_comments(files, &mut out);
    out
}

/// The `lib.rs` path for a crate key.
fn lib_path(krate: &str) -> String {
    if krate == "root" {
        "src/lib.rs".to_string()
    } else {
        format!("crates/{krate}/src/lib.rs")
    }
}

fn check_deny_attr(files: &[SourceFile], config: &Config, out: &mut Vec<Finding>) {
    for krate in &config.deny_unsafe_crates {
        let want = lib_path(krate);
        let Some(f) = files.iter().find(|f| f.rel == want) else {
            continue; // Crate absent from this tree (fixture workspaces).
        };
        if !has_deny_unsafe(f) {
            out.push(Finding {
                rule: "unsafe-hygiene",
                file: f.rel.clone(),
                line: 1,
                item: "-".to_string(),
                snippet: "missing #![deny(unsafe_code)]".to_string(),
                message: format!(
                    "crate `{krate}` is unsafe-free but does not say so: add \
                     `#![deny(unsafe_code)]` to {want}"
                ),
            });
        }
    }
}

/// True if the file carries an inner `#![deny(unsafe_code)]` or
/// `#![forbid(unsafe_code)]` attribute.
fn has_deny_unsafe(f: &SourceFile) -> bool {
    let toks = &f.tokens;
    (0..toks.len()).any(|i| {
        toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('['))
            && toks
                .get(i + 3)
                .is_some_and(|t| t.is_ident("deny") || t.is_ident("forbid"))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 5).is_some_and(|t| t.is_ident("unsafe_code"))
    })
}

fn check_safety_comments(files: &[SourceFile], out: &mut Vec<Finding>) {
    for f in files {
        for t in &f.tokens {
            if !t.is_ident("unsafe") || f.is_test_line(t.line) {
                continue;
            }
            if f.has_comment_above(t.line, 3, "SAFETY:") {
                continue;
            }
            out.push(Finding {
                rule: "unsafe-hygiene",
                file: f.rel.clone(),
                line: t.line,
                item: f.enclosing_fn(t.line).to_string(),
                snippet: "unsafe without SAFETY comment".to_string(),
                message: "`unsafe` without a `// SAFETY:` comment within three \
                          lines above: document the invariant that makes it sound"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, krate: &str, src: &str) -> SourceFile {
        SourceFile::parse(rel.into(), krate.into(), false, src)
    }

    #[test]
    fn missing_deny_attr_flagged() {
        let f = file("crates/disk/src/lib.rs", "disk", "pub mod disk;\n");
        let out = check(&[f], &Config::cedar());
        assert!(out
            .iter()
            .any(|f| f.snippet.contains("missing #![deny(unsafe_code)]")
                && f.file == "crates/disk/src/lib.rs"));
    }

    #[test]
    fn deny_attr_satisfies() {
        let f = file(
            "crates/disk/src/lib.rs",
            "disk",
            "#![deny(unsafe_code)]\npub mod disk;\n",
        );
        let out = check(&[f], &Config::cedar());
        assert!(!out.iter().any(|f| f.file == "crates/disk/src/lib.rs"));
    }

    #[test]
    fn forbid_also_satisfies() {
        let f = file(
            "crates/disk/src/lib.rs",
            "disk",
            "#![forbid(unsafe_code)]\npub mod disk;\n",
        );
        assert!(!check(&[f], &Config::cedar())
            .iter()
            .any(|f| f.file == "crates/disk/src/lib.rs"));
    }

    #[test]
    fn unsafe_without_safety_comment_flagged() {
        let f = file(
            "crates/disk/src/x.rs",
            "disk",
            "fn f() { unsafe { core::hint::unreachable_unchecked() } }\n",
        );
        let out = check(&[f], &Config::cedar());
        assert!(out.iter().any(|f| f.snippet.contains("SAFETY")));
    }

    #[test]
    fn unsafe_with_safety_comment_clean() {
        let f = file(
            "crates/disk/src/x.rs",
            "disk",
            "fn f() {\n    // SAFETY: n is always in bounds here.\n    unsafe { go(n) }\n}\n",
        );
        assert!(!check(&[f], &Config::cedar())
            .iter()
            .any(|f| f.snippet.contains("SAFETY")));
    }
}
