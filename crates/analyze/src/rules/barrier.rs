//! barrier-discipline and batch-io: commit-window ordering on the disk
//! scheduler paths.
//!
//! * **batch-io** (re-based from PR 4's token scan onto the AST): inside
//!   the configured multi-sector commit/recovery fns, a raw disk call —
//!   direct, or via a plain same-crate callee that performs one — bypasses
//!   `cedar_disk::sched` batching (write barriers + C-SCAN). Deliberate
//!   single-sector replica/fallback readers are listed in
//!   `batch_io_fallback_fns`.
//! * **barrier-discipline**: in the configured commit fns, every `IoBatch`
//!   local that is submitted via `execute` must have called `barrier()`
//!   first — the commit record must sit in its own post-barrier window
//!   (§4: the end pages are written only after the body windows are on
//!   disk).

use crate::ast::{Block, Expr, Stmt};
use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::source::SourceFile;
use crate::Finding;

/// Runs both checks.
pub fn check(files: &[SourceFile], config: &Config) -> Vec<Finding> {
    let cg = CallGraph::build(files);
    // Which call-graph nodes directly perform raw disk I/O (depth 1 only:
    // going deeper through name-based resolution invites false positives).
    let raw_direct: Vec<bool> = cg
        .iter()
        .map(|(_, file, def)| {
            let Some(body) = &def.body else { return false };
            let mut raw = false;
            crate::ast::walk_block(body, &mut |e| {
                if let Expr::MethodCall {
                    recv, method, line, ..
                } = e
                {
                    if config.io_methods.iter().any(|m| *m == method)
                        && is_disk_recv(recv)
                        && !file.is_test_line(*line)
                    {
                        raw = true;
                    }
                }
            });
            raw
        })
        .collect();

    let mut out = Vec::new();
    for f in files {
        check_batch_io(f, config, &cg, &raw_direct, &mut out);
        check_barriers(f, config, &mut out);
    }
    out
}

fn is_disk_recv(recv: &Expr) -> bool {
    recv.last_name()
        .is_some_and(|s| s == "disk" || s.ends_with("_disk"))
}

fn check_batch_io(
    f: &SourceFile,
    config: &Config,
    cg: &CallGraph<'_>,
    raw_direct: &[bool],
    out: &mut Vec<Finding>,
) {
    let Some((_, fns)) = config.batch_io_fns.iter().find(|(rel, _)| *rel == f.rel) else {
        return;
    };
    for def in &f.ast.fns {
        if !fns.iter().any(|n| *n == def.name) {
            continue;
        }
        let Some(body) = &def.body else { continue };
        crate::ast::walk_block(body, &mut |e| {
            let (name, line, direct) = match e {
                Expr::MethodCall {
                    recv, method, line, ..
                } if config.io_methods.iter().any(|m| *m == method) && is_disk_recv(recv) => {
                    (method.clone(), *line, true)
                }
                // Indirect: plain call to a same-crate fn that does raw I/O.
                Expr::Call { func, line, .. } => match func.last_name() {
                    Some(n) => (n.to_string(), *line, false),
                    None => return,
                },
                Expr::MethodCall {
                    recv, method, line, ..
                } if recv.last_name() == Some("self") => (method.clone(), *line, false),
                _ => return,
            };
            if f.is_test_line(line) {
                return;
            }
            if direct {
                out.push(Finding {
                    rule: "batch-io",
                    file: f.rel.clone(),
                    line,
                    item: def.name.clone(),
                    snippet: format!("disk.{name}()"),
                    message: format!(
                        "raw `{name}` on a multi-sector commit/recovery path: \
                         submit through a `cedar_disk::sched` batch so write \
                         barriers and C-SCAN ordering apply"
                    ),
                });
                return;
            }
            if config.batch_io_fallback_fns.iter().any(|n| *n == name) {
                return;
            }
            let reaches_raw = cg
                .resolve_in_crate(&f.crate_key, &name)
                .iter()
                .any(|&n| raw_direct[n]);
            if reaches_raw {
                out.push(Finding {
                    rule: "batch-io",
                    file: f.rel.clone(),
                    line,
                    item: def.name.clone(),
                    snippet: format!("{name}() raw io"),
                    message: format!(
                        "`{name}` performs raw sector I/O and is called on a \
                         multi-sector commit/recovery path: batch it through \
                         `cedar_disk::sched`, or list it as a deliberate \
                         fallback reader"
                    ),
                });
            }
        });
    }
}

/// Events on a commit fn's batch locals, in evaluation order.
enum Ev {
    New(String),
    Barrier(String),
    Execute(String, u32),
}

fn check_barriers(f: &SourceFile, config: &Config, out: &mut Vec<Finding>) {
    let Some((_, fns)) = config.barrier_fns.iter().find(|(rel, _)| *rel == f.rel) else {
        return;
    };
    for def in &f.ast.fns {
        if !fns.iter().any(|n| *n == def.name) || f.is_test_line(def.line) {
            continue;
        }
        let Some(body) = &def.body else { continue };
        let mut evs = Vec::new();
        collect_block(body, &mut evs);
        let mut barriered: Vec<&str> = Vec::new();
        let mut known: Vec<&str> = Vec::new();
        for ev in &evs {
            match ev {
                Ev::New(name) => known.push(name),
                Ev::Barrier(name) => barriered.push(name),
                Ev::Execute(name, line) => {
                    if known.iter().any(|k| k == name) && !barriered.iter().any(|b| b == name) {
                        out.push(Finding {
                            rule: "barrier-discipline",
                            file: f.rel.clone(),
                            line: *line,
                            item: def.name.clone(),
                            snippet: format!("execute({name}) without barrier"),
                            message: format!(
                                "`IoBatch` `{name}` is submitted with no \
                                 `barrier()` before it: the commit record must \
                                 be in its own post-barrier window (§4), or \
                                 the disk may reorder it ahead of the data"
                            ),
                        });
                    }
                }
            }
        }
    }
}

fn collect_block(b: &Block, evs: &mut Vec<Ev>) {
    for s in &b.stmts {
        match s {
            Stmt::Let {
                names,
                init,
                else_block,
                ..
            } => {
                if let Some(e) = init {
                    collect_expr(e, evs);
                    if names.len() == 1 && creates_batch(e) {
                        evs.push(Ev::New(names[0].clone()));
                    }
                }
                if let Some(eb) = else_block {
                    collect_block(eb, evs);
                }
            }
            Stmt::Expr(e) => collect_expr(e, evs),
        }
    }
}

/// True when the expression contains an `IoBatch::new()` construction.
fn creates_batch(e: &Expr) -> bool {
    let mut found = false;
    crate::ast::walk_expr(e, &mut |x| {
        if let Expr::Call { func, .. } = x {
            if let Expr::Path { segs, .. } = func.as_ref() {
                if segs.len() >= 2
                    && segs[segs.len() - 2] == "IoBatch"
                    && segs[segs.len() - 1] == "new"
                {
                    found = true;
                }
            }
        }
    });
    found
}

fn collect_expr(e: &Expr, evs: &mut Vec<Ev>) {
    crate::ast::walk_expr(e, &mut |x| match x {
        Expr::MethodCall {
            recv, method, line, ..
        } => {
            let Some(name) = recv.last_name() else { return };
            if method == "barrier" {
                evs.push(Ev::Barrier(name.to_string()));
            } else if method == "execute" || method == "execute_partial" {
                // `disk.execute(&batch)` form.
                if let Some(arg) = batch_arg(x) {
                    evs.push(Ev::Execute(arg, *line));
                }
            }
        }
        Expr::Call { func, line, .. }
            if matches!(func.last_name(), Some("execute" | "execute_partial")) =>
        {
            if let Some(arg) = batch_arg(x) {
                evs.push(Ev::Execute(arg, *line));
            }
        }
        _ => {}
    });
}

/// The batch-naming argument of an `execute` call: the last plain-path
/// argument (`sched::execute(&mut disk, policy, &batch)` → `batch`).
fn batch_arg(call: &Expr) -> Option<String> {
    let args = match call {
        Expr::Call { args, .. } | Expr::MethodCall { args, .. } => args,
        _ => return None,
    };
    args.iter()
        .rev()
        .find_map(|a| a.last_name().map(|s| s.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, krate: &str, src: &str) -> SourceFile {
        SourceFile::parse(rel.into(), krate.into(), false, src)
    }

    fn run(files: Vec<SourceFile>) -> Vec<Finding> {
        check(&files, &Config::cedar())
    }

    #[test]
    fn raw_io_on_batch_path_flagged() {
        let f = file(
            "crates/fsd/src/volume.rs",
            "fsd",
            "impl FsdVolume {\n  fn sync_home_all(&mut self) { self.disk.write(a, &b); }\n}\n",
        );
        let out = run(vec![f]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "batch-io");
        assert!(out[0].message.contains("sched"));
    }

    #[test]
    fn raw_io_outside_batch_fns_in_same_file_clean() {
        let f = file(
            "crates/fsd/src/volume.rs",
            "fsd",
            "impl FsdVolume {\n  fn read_page(&mut self, s: u32) { self.disk.read(s, 1); }\n}\n",
        );
        assert!(run(vec![f]).is_empty());
    }

    #[test]
    fn indirect_raw_io_via_same_crate_helper_flagged() {
        let f = file(
            "crates/fsd/src/recovery.rs",
            "fsd",
            "pub fn redo_phase(disk: &mut SimDisk) { probe_sector(disk); }\n\
             fn probe_sector(disk: &mut SimDisk) { disk.read(7, 1); }\n",
        );
        let out = run(vec![f]);
        assert_eq!(out.len(), 1);
        assert!(out[0].snippet.contains("probe_sector"));
    }

    #[test]
    fn fallback_reader_exempt_from_indirect_check() {
        let f = file(
            "crates/fsd/src/recovery.rs",
            "fsd",
            "pub fn redo_phase(disk: &mut SimDisk) { read_boot_page(disk); }\n\
             fn read_boot_page(disk: &mut SimDisk) { disk.read(0, 1); }\n",
        );
        assert!(run(vec![f]).is_empty());
    }

    #[test]
    fn single_sector_fallback_reader_clean() {
        let f = file(
            "crates/fsd/src/log.rs",
            "fsd",
            "impl Log {\n  fn read_meta(&mut self, disk: &mut SimDisk) { disk.read(a, 1); }\n}\n",
        );
        assert!(run(vec![f]).is_empty());
    }

    #[test]
    fn batch_path_in_unlisted_file_clean() {
        let f = file(
            "crates/cfs/src/volume.rs",
            "cfs",
            "impl CfsVolume {\n  fn force(&mut self) { self.disk.write(a, &b); }\n}\n",
        );
        assert!(run(vec![f]).is_empty());
    }

    #[test]
    fn execute_without_barrier_flagged() {
        let f = file(
            "crates/fsd/src/log.rs",
            "fsd",
            "impl Log {\n  fn append(&mut self, disk: &mut SimDisk) {\n\
               let mut batch = IoBatch::new();\n\
               batch.push(op);\n\
               sched::execute(disk, policy, &batch);\n\
             }\n}\n",
        );
        let out = run(vec![f]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "barrier-discipline");
        assert!(out[0].message.contains("post-barrier"));
    }

    #[test]
    fn execute_partial_without_barrier_flagged() {
        // The partial-success variant carries the same ordering
        // obligation as `execute`: skipping the barrier before the
        // commit window is a violation either way.
        let f = file(
            "crates/fsd/src/log.rs",
            "fsd",
            "impl Log {\n  fn append(&mut self, disk: &mut SimDisk) {\n\
               let mut batch = IoBatch::new();\n\
               batch.push(op);\n\
               let r = sched::execute_partial(disk, policy, &batch);\n\
             }\n}\n",
        );
        let out = run(vec![f]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "barrier-discipline");
        assert!(out[0].snippet.contains("batch"));
    }

    #[test]
    fn execute_partial_after_barrier_clean() {
        let f = file(
            "crates/fsd/src/log.rs",
            "fsd",
            "impl Log {\n  fn append(&mut self, disk: &mut SimDisk) {\n\
               let mut batch = IoBatch::new();\n\
               batch.push(op);\n\
               batch.barrier();\n\
               batch.push(end);\n\
               let r = sched::execute_partial(disk, policy, &batch);\n\
             }\n}\n",
        );
        assert!(run(vec![f]).is_empty());
    }

    #[test]
    fn execute_after_barrier_clean() {
        let f = file(
            "crates/fsd/src/log.rs",
            "fsd",
            "impl Log {\n  fn append(&mut self, disk: &mut SimDisk) {\n\
               let mut batch = IoBatch::new();\n\
               batch.push(op);\n\
               batch.barrier();\n\
               batch.push(end);\n\
               sched::execute(disk, policy, &batch);\n\
             }\n}\n",
        );
        assert!(run(vec![f]).is_empty());
    }

    #[test]
    fn unconfigured_fn_may_skip_barrier() {
        // `write_meta` deliberately writes two identical replicas with no
        // barrier; only configured fns carry the obligation.
        let f = file(
            "crates/fsd/src/log.rs",
            "fsd",
            "impl Log {\n  fn write_meta(&mut self, disk: &mut SimDisk) {\n\
               let mut batch = IoBatch::new();\n\
               batch.push(op);\n\
               sched::execute(disk, policy, &batch);\n\
             }\n}\n",
        );
        assert!(run(vec![f]).is_empty());
    }
}
