//! Layering rule: the import DAG, raw-sector-I/O confinement, and
//! log-region addressing.
//!
//! * Only `cedar-disk` exposes raw sector I/O, and only the volume-layer
//!   crates may call it. Crates above the volume layer (`bench`,
//!   `workload`, the CLI) must go through the `FileSystem` trait.
//! * The import graph, built from `use` declarations in non-test library
//!   code, must match the declared layer cake.
//! * Only `cedar_fsd::{log, recovery}` may address log-region sectors:
//!   a raw disk call whose arguments mention `log_start`/`log_sectors`
//!   anywhere else is a finding (the paper's "only the logging code
//!   touches the log" discipline, §5.3).
//!
//! The batch-io check (raw disk calls on the multi-sector commit paths)
//! moved to `rules::barrier`, which re-bases it on the AST and the call
//! graph.

use crate::config::Config;
use crate::lexer::TokKind;
use crate::rules::{matching_paren, method_call_at, receiver_path};
use crate::source::SourceFile;
use crate::Finding;

/// Runs the layering checks.
pub fn check(files: &[SourceFile], config: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        check_imports(f, config, &mut out);
        check_raw_io(f, config, &mut out);
        check_log_region(f, config, &mut out);
    }
    out
}

/// Workspace crates recognizable in `use` paths.
const WORKSPACE_CRATES: &[&str] = &[
    "cedar_disk",
    "cedar_btree",
    "cedar_vol",
    "cedar_cfs",
    "cedar_fsd",
    "cedar_ffs",
    "cedar_model",
    "cedar_workload",
    "cedar_bench",
    "cedar_analyze",
    "cedar_fs_repro",
];

fn check_imports(f: &SourceFile, config: &Config, out: &mut Vec<Finding>) {
    let Some(allowed) = config.allowed_imports.get(f.crate_key.as_str()) else {
        return; // Unmapped crate: unconstrained.
    };
    let toks = &f.tokens;
    for i in 0..toks.len() {
        if !toks[i].is_ident("use") {
            continue;
        }
        if f.is_test_line(toks[i].line) {
            continue; // Test code may import anything (dev-deps).
        }
        let Some(first) = toks.get(i + 1) else {
            continue;
        };
        if first.kind != TokKind::Ident {
            continue;
        }
        let target = first.text.as_str();
        if !WORKSPACE_CRATES.contains(&target) && target != "proptest" {
            continue;
        }
        let self_name = format!("cedar_{}", f.crate_key);
        if target == self_name {
            continue; // `use cedar_x::…` from inside crate x (unusual but fine).
        }
        if !allowed.contains(&target) {
            out.push(Finding {
                rule: "layering",
                file: f.rel.clone(),
                line: first.line,
                item: f.enclosing_fn(first.line).to_string(),
                snippet: format!("use {target}"),
                message: format!(
                    "crate `{}` must not import `{target}`: the layer map allows {:?}",
                    f.crate_key, allowed
                ),
            });
        }
    }
}

fn check_raw_io(f: &SourceFile, config: &Config, out: &mut Vec<Finding>) {
    if config.raw_io_crates.iter().any(|c| *c == f.crate_key) {
        return;
    }
    // Unmapped crates (fixtures aside, there are none) are still checked:
    // raw I/O above the volume layer is the violation.
    let io: Vec<&str> = config.io_methods.clone();
    let toks = &f.tokens;
    for i in 0..toks.len() {
        let Some((method, name_idx)) = method_call_at(toks, i, &io) else {
            continue;
        };
        if f.is_test_line(toks[name_idx].line) {
            continue;
        }
        let recv = receiver_path(toks, i);
        if recv
            .last()
            .is_none_or(|s| s != "disk" && !s.ends_with("_disk"))
        {
            continue; // Not a disk receiver (e.g. Vec::read on a file).
        }
        out.push(Finding {
            rule: "layering",
            file: f.rel.clone(),
            line: toks[name_idx].line,
            item: f.enclosing_fn(toks[name_idx].line).to_string(),
            snippet: format!("{}.{method}()", recv.join(".")),
            message: format!(
                "raw sector I/O (`{method}`) in crate `{}`: layers above the \
                 volume layer must go through the `FileSystem` trait",
                f.crate_key
            ),
        });
    }
}

fn check_log_region(f: &SourceFile, config: &Config, out: &mut Vec<Finding>) {
    if config.log_region_files.iter().any(|p| *p == f.rel) {
        return;
    }
    let io: Vec<&str> = config.io_methods.clone();
    let toks = &f.tokens;
    for i in 0..toks.len() {
        let Some((method, name_idx)) = method_call_at(toks, i, &io) else {
            continue;
        };
        if f.is_test_line(toks[name_idx].line) {
            continue;
        }
        let recv = receiver_path(toks, i);
        if recv
            .last()
            .is_none_or(|s| s != "disk" && !s.ends_with("_disk"))
        {
            continue;
        }
        let open = name_idx + 1;
        let close = matching_paren(toks, open);
        let bad = toks[open..=close].iter().find(|t| {
            t.kind == TokKind::Ident && config.log_region_idents.iter().any(|id| t.text == *id)
        });
        if let Some(tok) = bad {
            out.push(Finding {
                rule: "layering",
                file: f.rel.clone(),
                line: toks[name_idx].line,
                item: f.enclosing_fn(toks[name_idx].line).to_string(),
                snippet: format!("disk.{method}(..{}..)", tok.text),
                message: format!(
                    "log-region sector addressing (`{}`) outside \
                     cedar_fsd::{{log, recovery}}: only the log module may \
                     touch log sectors (§5.3 discipline)",
                    tok.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, krate: &str, src: &str) -> SourceFile {
        SourceFile::parse(rel.into(), krate.into(), false, src)
    }

    #[test]
    fn upward_import_flagged() {
        let f = file(
            "crates/vol/src/lib.rs",
            "vol",
            "use cedar_fsd::FsdVolume;\n",
        );
        let out = check(&[f], &Config::cedar());
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("must not import"));
    }

    #[test]
    fn allowed_import_clean() {
        let f = file("crates/vol/src/lib.rs", "vol", "use cedar_disk::SimDisk;\n");
        assert!(check(&[f], &Config::cedar()).is_empty());
    }

    #[test]
    fn test_code_imports_exempt() {
        let f = file(
            "crates/vol/src/lib.rs",
            "vol",
            "#[cfg(test)]\nmod tests {\n  use cedar_fsd::FsdVolume;\n}\n",
        );
        assert!(check(&[f], &Config::cedar()).is_empty());
    }

    #[test]
    fn raw_io_above_volume_layer_flagged() {
        let f = file(
            "crates/bench/src/lib.rs",
            "bench",
            "fn peek(disk: &mut SimDisk) { let _ = disk.read_labels(0, 1); }\n",
        );
        let out = check(&[f], &Config::cedar());
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("FileSystem"));
    }

    #[test]
    fn raw_io_in_volume_layer_clean() {
        let f = file(
            "crates/cfs/src/volume.rs",
            "cfs",
            "fn go(&mut self) { self.disk.write(0, &[0u8]); }\n",
        );
        assert!(check(&[f], &Config::cedar()).is_empty());
    }

    #[test]
    fn non_disk_receiver_ignored() {
        let f = file(
            "crates/bench/src/lib.rs",
            "bench",
            "fn go(file: &mut F) { file.read(0, 1); buf.write(x, y); }\n",
        );
        assert!(check(&[f], &Config::cedar()).is_empty());
    }

    #[test]
    fn log_region_addressing_outside_log_module_flagged() {
        let f = file(
            "crates/fsd/src/volume.rs",
            "fsd",
            "fn bad(&mut self) { self.disk.write(self.layout.log_start + 1, &b); }\n",
        );
        let out = check(&[f], &Config::cedar());
        assert_eq!(out.len(), 1);
        assert!(out[0].snippet.contains("log_start"));
    }

    #[test]
    fn log_region_addressing_in_log_module_clean() {
        let f = file(
            "crates/fsd/src/log.rs",
            "fsd",
            "fn ok(disk: &mut SimDisk, log_start: u32) { disk.write(log_start, &b); }\n",
        );
        assert!(check(&[f], &Config::cedar()).is_empty());
    }
}
