//! repl-order: log-shipping discipline for the replication subsystem.
//!
//! Two invariants keep the replica a prefix of the primary:
//!
//! 1. **Seal after append.** A record-carrying replication frame may be
//!    sealed for shipping only after the `Log::append` covering those
//!    records — the shipped frame is a copy of what the local log made
//!    durable, never a preview of it. Checked flow-sensitively with the
//!    wal-order walker: every path from a `pub` fn in
//!    `repl_entry_files` that reaches a `repl_seal_fns` call must first
//!    pass a `wal_append_calls` event. The data-only seal
//!    (`repl_opaque_fns`) is exempt by design: data pages are written
//!    direct-to-disk unlogged (§5.2), so their frames carry no records
//!    and have no append to follow.
//! 2. **Redo-path confinement.** The shipping layer (`repl_ship_files`:
//!    session, shipper, frame types) moves bytes; it must never write
//!    home/leader/name-table sectors itself. Replica-side home writes
//!    belong exclusively to the redo path in `repl/replica.rs`, which
//!    routes them through the same `write_home_batch` the recovery scan
//!    uses. Any `repl_write_fns` call in a ship file is a finding.

use crate::ast::{Block, Expr, Stmt};
use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::source::SourceFile;
use crate::Finding;

use super::walorder::{flow_check, FlowSpec};

/// Runs the repl-order rule.
pub fn check(files: &[SourceFile], config: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    if !config.repl_entry_files.is_empty() {
        let spec = FlowSpec {
            rule: "repl-order",
            entry_files: &config.repl_entry_files,
            exempt_files: &config.wal_exempt_files,
            append_calls: &config.wal_append_calls,
            write_fns: &config.repl_seal_fns,
            opaque_fns: &config.repl_opaque_fns,
            direct_msg: |name| {
                format!(
                    "replication frame sealed (`{name}`) without a dominating \
                     `Log::append` on this path — a shipped record must be a \
                     copy of what the local log already holds, so the seal \
                     must follow the append of the same record"
                )
            },
            via_msg: |name, site| {
                format!(
                    "call to `{name}` reaches a record-carrying frame seal \
                     with no dominating `Log::append` on this path: {site}"
                )
            },
        };
        out.extend(flow_check(files, &spec));
    }
    out.extend(ship_confinement(files, config));
    out
}

/// Flags home-sector writes in the shipping layer: the session/shipper
/// move frames, the replica's redo path is the only writer.
fn ship_confinement(files: &[SourceFile], config: &Config) -> Vec<Finding> {
    if config.repl_ship_files.is_empty() {
        return Vec::new();
    }
    let cg = CallGraph::build(files);
    let mut out = Vec::new();
    for (_, file, def) in cg.iter() {
        if !config.repl_ship_files.iter().any(|p| *p == file.rel) {
            continue;
        }
        let Some(body) = &def.body else { continue };
        let mut scan = Scan {
            config,
            file,
            item: &def.name,
            out: &mut out,
        };
        scan.block(body);
    }
    out
}

/// Syntactic walk over every expression of a ship-file fn, flagging any
/// call whose name is a configured home write. Unlike the flow walker
/// this covers private fns and all paths — confinement is structural,
/// not path-sensitive.
struct Scan<'a> {
    config: &'a Config,
    file: &'a SourceFile,
    item: &'a str,
    out: &'a mut Vec<Finding>,
}

impl Scan<'_> {
    fn hit(&mut self, name: &str, line: u32) {
        if self.file.is_test_line(line) {
            return;
        }
        if !self.config.repl_write_fns.contains(&name) {
            return;
        }
        self.out.push(Finding {
            rule: "repl-order",
            file: self.file.rel.clone(),
            line,
            item: self.item.to_string(),
            snippet: format!("{name}(..) in ship layer"),
            message: format!(
                "home-sector write (`{name}`) in the replication shipping \
                 layer — replica-side home writes are confined to the redo \
                 path in `repl/replica.rs`"
            ),
        });
    }

    fn block(&mut self, b: &Block) {
        for s in &b.stmts {
            match s {
                Stmt::Let {
                    init, else_block, ..
                } => {
                    if let Some(e) = init {
                        self.expr(e);
                    }
                    if let Some(eb) = else_block {
                        self.block(eb);
                    }
                }
                Stmt::Expr(e) => self.expr(e),
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Path { .. } | Expr::Atom { .. } | Expr::Macro { .. } => {}
            Expr::Call { func, args, line } => {
                self.expr(func);
                for a in args {
                    self.expr(a);
                }
                if let Some(name) = func.last_name() {
                    let name = name.to_string();
                    self.hit(&name, *line);
                }
            }
            Expr::MethodCall {
                recv,
                method,
                args,
                line,
            } => {
                self.expr(recv);
                for a in args {
                    self.expr(a);
                }
                let method = method.clone();
                self.hit(&method, *line);
            }
            Expr::Field { base, .. } => self.expr(base),
            Expr::Seq { items, .. } => {
                for it in items {
                    self.expr(it);
                }
            }
            Expr::Block { block, .. } => self.block(block),
            Expr::If {
                cond, then, alt, ..
            } => {
                self.expr(cond);
                self.block(then);
                if let Some(alt) = alt {
                    self.expr(alt);
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.expr(scrutinee);
                for arm in arms {
                    self.expr(&arm.body);
                }
            }
            Expr::Loop { body, .. } => self.block(body),
            Expr::While { cond, body, .. } => {
                self.expr(cond);
                self.block(body);
            }
            Expr::For { iter, body, .. } => {
                self.expr(iter);
                self.block(body);
            }
            Expr::Closure { body, .. } => self.expr(body),
            Expr::Ret { value, .. } => {
                if let Some(v) = value {
                    self.expr(v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vol(src: &str) -> SourceFile {
        SourceFile::parse("crates/fsd/src/volume.rs".into(), "fsd".into(), false, src)
    }

    fn ship(src: &str) -> SourceFile {
        SourceFile::parse(
            "crates/fsd/src/repl/session.rs".into(),
            "fsd".into(),
            false,
            src,
        )
    }

    fn run(files: Vec<SourceFile>) -> Vec<Finding> {
        check(&files, &Config::cedar())
    }

    #[test]
    fn seal_after_append_is_clean() {
        let f = vol("impl FsdVolume {\n\
             pub fn force(&mut self) {\n\
               while self.more() { self.log.append(1); }\n\
               self.seal_repl_frame(1, 2, 3);\n\
             }\n\
             fn seal_repl_frame(&mut self, _r: u32, _a: u64, _b: u64) {}\n\
             }\n");
        assert!(run(vec![f]).is_empty());
    }

    #[test]
    fn seal_without_append_flagged() {
        let f = vol("impl FsdVolume {\n\
             pub fn leaky(&mut self) { self.seal_repl_frame(1, 2, 3); }\n\
             fn seal_repl_frame(&mut self, _r: u32, _a: u64, _b: u64) {}\n\
             }\n");
        let out = run(vec![f]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "repl-order");
        assert_eq!(out[0].item, "leaky");
        assert!(out[0].message.contains("Log::append"));
    }

    #[test]
    fn seal_on_one_branch_does_not_dominate() {
        let f = vol("impl FsdVolume {\n\
             pub fn racy(&mut self, c: bool) {\n\
               if c { self.log.append(1); }\n\
               self.seal_repl_frame(1, 2, 3);\n\
             }\n\
             fn seal_repl_frame(&mut self, _r: u32, _a: u64, _b: u64) {}\n\
             }\n");
        assert_eq!(run(vec![f]).len(), 1);
    }

    #[test]
    fn data_only_seal_is_exempt() {
        // The record-less data frame has no append to follow: the helper
        // is opaque, both as an entry fn and through call sites.
        let f = vol("impl FsdVolume {\n\
             pub fn force(&mut self) {\n\
               if self.empty { self.seal_repl_data_frame(); return; }\n\
               self.log.append(1);\n\
               self.seal_repl_frame(1, 2, 3);\n\
             }\n\
             pub fn seal_repl_data_frame(&mut self) { self.seal_repl_frame(0, 0, 0); }\n\
             fn seal_repl_frame(&mut self, _r: u32, _a: u64, _b: u64) {}\n\
             }\n");
        assert!(run(vec![f]).is_empty());
    }

    #[test]
    fn unlogged_seal_via_helper_flagged_at_call_site() {
        let f = vol("impl FsdVolume {\n\
             pub fn op(&mut self) { self.ship_now(); }\n\
             fn ship_now(&mut self) { self.seal_repl_frame(1, 2, 3); }\n\
             fn seal_repl_frame(&mut self, _r: u32, _a: u64, _b: u64) {}\n\
             }\n");
        let out = run(vec![f]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].item, "op");
        assert!(out[0].message.contains("ship_now"));
    }

    #[test]
    fn ship_layer_home_write_flagged() {
        let f = ship(
            "impl ReplSession {\n\
             fn sneaky(&mut self) { write_home_batch(1, 2, 3, 4); }\n\
             }\nfn write_home_batch(_a: u32, _b: u32, _c: u32, _d: u32) {}\n",
        );
        let out = run(vec![f]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "repl-order");
        assert_eq!(out[0].item, "sneaky");
        assert!(out[0].message.contains("redo"));
    }

    #[test]
    fn ship_layer_raw_write_method_flagged() {
        let f = ship(
            "impl ReplSession {\n\
             fn patch(&mut self) { self.disk.write(7, &[0u8]); }\n\
             }\n",
        );
        assert_eq!(run(vec![f]).len(), 1);
    }

    #[test]
    fn replica_redo_path_is_allowed() {
        let rep = SourceFile::parse(
            "crates/fsd/src/repl/replica.rs".into(),
            "fsd".into(),
            false,
            "impl Replica {\n\
             pub fn apply(&mut self) { write_home_batch(1, 2, 3, 4); }\n\
             }\nfn write_home_batch(_a: u32, _b: u32, _c: u32, _d: u32) {}\n",
        );
        assert!(run(vec![rep]).is_empty());
    }

    #[test]
    fn ship_layer_link_send_is_not_a_write() {
        let f = ship(
            "impl ReplSession {\n\
             fn pump(&mut self) { self.link.send(1, 2); }\n\
             }\n",
        );
        assert!(run(vec![f]).is_empty());
    }
}
