//! Lock-order heuristic: extract per-function lock-acquisition sequences,
//! propagate one level of intra-workspace calls, detect cycles in the
//! lock-order graph, and flag locks held across disk-write/log-force calls
//! on the commit path.
//!
//! An *acquisition* is a call `path.lock()` (std `Mutex`; `RwLock`'s
//! `read()/write()` collide with disk I/O names and are deliberately out
//! of scope — the workspace uses `Mutex` only). The lock identity is the
//! receiver path with a leading `self.` stripped, so `self.mu` in two
//! methods is the same lock. An acquisition bound with `let g = …` is
//! *held* until the end of the function (a conservative over-approximation
//! of guard scope); a temporary `x.lock().op()` is released immediately.
//!
//! Edges `a → b` mean "a held while acquiring b". One level of call
//! propagation: if `f` holds `a` and later calls `g`, and `g` (any
//! same-named workspace fn — conservative) acquires `b`, that also adds
//! `a → b`. A cycle in the resulting graph is a potential deadlock; the
//! report names both conflicting acquisition sites.

use crate::config::Config;
use crate::lexer::{Tok, TokKind};
use crate::rules::{method_call_at, receiver_path};
use crate::source::SourceFile;
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// One lock acquisition site.
#[derive(Clone, Debug)]
struct Acq {
    lock: String,
    file: String,
    line: u32,
    item: String,
    /// Bound to a `let` guard (held to end of function).
    held: bool,
}

/// Per-function extraction.
#[derive(Clone, Debug, Default)]
struct FnLocks {
    acquisitions: Vec<Acq>,
    /// Called function/method names after each token index, with lines.
    calls: Vec<(String, u32)>,
}

/// Runs the lock-order checks.
pub fn check(files: &[SourceFile], config: &Config) -> Vec<Finding> {
    // fn name -> merged lock info (same-named fns merge conservatively).
    let mut fns: BTreeMap<String, FnLocks> = BTreeMap::new();
    let mut order: Vec<(String, String)> = Vec::new(); // For determinism.
    for f in files {
        if f.is_aux {
            continue;
        }
        for (name, start, end) in f.fn_spans() {
            if f.is_test_line(*start) {
                continue;
            }
            let fl = extract(f, *start, *end);
            if fl.acquisitions.is_empty() && fl.calls.is_empty() {
                continue;
            }
            order.push((name.clone(), f.rel.clone()));
            let entry = fns.entry(name.clone()).or_default();
            entry.acquisitions.extend(fl.acquisitions);
            entry.calls.extend(fl.calls);
        }
    }

    // Build edges: (from lock, to lock) -> (from site, to site).
    let mut edges: BTreeMap<(String, String), (Acq, Acq)> = BTreeMap::new();
    for fl in fns.values() {
        // Intra-function ordering.
        for (i, a) in fl.acquisitions.iter().enumerate() {
            if !a.held {
                continue;
            }
            for b in fl.acquisitions.iter().skip(i + 1) {
                if a.lock != b.lock {
                    edges
                        .entry((a.lock.clone(), b.lock.clone()))
                        .or_insert_with(|| (a.clone(), b.clone()));
                }
            }
        }
        // One level of call propagation.
        for a in &fl.acquisitions {
            if !a.held {
                continue;
            }
            for (callee, call_line) in &fl.calls {
                if *call_line < a.line {
                    continue; // Call precedes the acquisition.
                }
                if let Some(g) = fns.get(callee) {
                    for b in &g.acquisitions {
                        if a.lock != b.lock {
                            edges
                                .entry((a.lock.clone(), b.lock.clone()))
                                .or_insert_with(|| (a.clone(), b.clone()));
                        }
                    }
                }
            }
        }
    }

    let mut out = cycle_findings(&edges);
    out.extend(held_across_force(files, config));
    out
}

/// Extracts acquisitions and calls from one function's token span.
fn extract(f: &SourceFile, start: u32, end: u32) -> FnLocks {
    let toks = &f.tokens;
    let mut fl = FnLocks::default();
    for i in 0..toks.len() {
        let line = toks[i].line;
        if line < start || line > end {
            continue;
        }
        if let Some((_, name_idx)) = method_call_at(toks, i, &["lock"]) {
            let recv = receiver_path(toks, i);
            if recv.is_empty() {
                continue;
            }
            let lock = normalize_lock(&recv);
            fl.acquisitions.push(Acq {
                lock,
                file: f.rel.clone(),
                line: toks[name_idx].line,
                item: f.enclosing_fn(toks[name_idx].line).to_string(),
                held: is_let_bound(toks, i, &recv),
            });
        } else if toks[i].kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks[i].text != "lock"
            && !matches!(
                toks[i].text.as_str(),
                "if" | "while" | "match" | "return" | "for"
            )
            && i.checked_sub(1).is_none_or(|k| !toks[k].is_ident("fn"))
        {
            // A call to `name(` — free function or method; recorded for
            // one-level propagation. `fn name(` is the declaration itself,
            // not a call, and must not self-propagate.
            fl.calls.push((toks[i].text.clone(), line));
        }
    }
    fl
}

/// Lock identity: receiver path minus a leading `self`.
fn normalize_lock(recv: &[String]) -> String {
    let segs: Vec<&str> = recv
        .iter()
        .enumerate()
        .filter(|(i, s)| !(*i == 0 && *s == "self"))
        .map(|(_, s)| s.as_str())
        .collect();
    segs.join(".")
}

/// True if the acquisition whose receiver starts `recv.len()` idents before
/// the `.` at `dot` is bound by `let` (scanning back for `let x =` on the
/// same statement).
fn is_let_bound(toks: &[Tok], dot: usize, recv: &[String]) -> bool {
    // Receiver occupies (2 * len - 1) tokens before the dot at minimum
    // (idents and dots); walk back past it, then expect `= ident [mut] let`.
    let mut j = dot;
    let mut remaining = recv.len();
    while remaining > 0 && j > 0 {
        j -= 1;
        if toks[j].kind == TokKind::Ident {
            remaining -= 1;
        }
    }
    // Skip over `&`, `*` borrows.
    while j > 0 && (toks[j - 1].is_punct('&') || toks[j - 1].is_punct('*')) {
        j -= 1;
    }
    if j == 0 || !toks[j - 1].is_punct('=') {
        return false;
    }
    // Walk back over the pattern: ident, optional `mut`, optional type
    // annotation is not handled (rare for guards) — then require `let`.
    let mut k = j - 1;
    while k > 0 {
        k -= 1;
        let t = &toks[k];
        if t.is_ident("let") {
            return true;
        }
        if t.kind == TokKind::Ident || t.is_punct(':') || t.is_punct('_') {
            continue;
        }
        break;
    }
    false
}

/// DFS cycle detection over the lock-order graph; one finding per cycle.
fn cycle_findings(edges: &BTreeMap<(String, String), (Acq, Acq)>) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut out = Vec::new();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    // For each node, find a path back to itself.
    for start in adj.keys().copied().collect::<Vec<_>>() {
        let mut stack = vec![(start, vec![start.to_string()])];
        let mut seen: BTreeSet<String> = BTreeSet::new();
        while let Some((node, path)) = stack.pop() {
            let Some(nexts) = adj.get(node) else { continue };
            for next in nexts {
                if *next == start {
                    // Canonicalize the cycle so each is reported once.
                    let mut cyc = path.clone();
                    let min_pos = cyc
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, s)| s.as_str())
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    cyc.rotate_left(min_pos);
                    if !reported.insert(cyc.clone()) {
                        continue;
                    }
                    let fwd = &edges[&(path[path.len() - 1].clone(), start.to_string())];
                    // The edge that completes the cycle and the edge that
                    // opened it: both conflicting acquisition sites.
                    let back_key = (cyc[0].clone(), cyc[(1) % cyc.len()].clone());
                    let opening = edges.get(&back_key).unwrap_or(fwd);
                    out.push(Finding {
                        rule: "lock-order",
                        file: fwd.1.file.clone(),
                        line: fwd.1.line,
                        item: fwd.1.item.clone(),
                        snippet: format!("cycle:{}", cyc.join("->")),
                        message: format!(
                            "lock-order cycle {} -> {}: `{}` acquired at \
                             {}:{} (in `{}`) while `{}` order is established at \
                             {}:{} (in `{}`) — potential deadlock",
                            cyc.join(" -> "),
                            cyc[0],
                            fwd.1.lock,
                            fwd.1.file,
                            fwd.1.line,
                            fwd.1.item,
                            opening.1.lock,
                            opening.0.file,
                            opening.0.line,
                            opening.0.item,
                        ),
                    });
                } else if !path.iter().any(|p| p == next) && seen.insert((*next).to_string()) {
                    let mut p = path.clone();
                    p.push((*next).to_string());
                    stack.push((next, p));
                }
            }
        }
    }
    out
}

/// Flags a held lock guard live across a disk-write/log-force call in the
/// commit-path files.
fn held_across_force(files: &[SourceFile], config: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if !config.commit_path_files.iter().any(|p| *p == f.rel) {
            continue;
        }
        let toks = &f.tokens;
        for (fn_name, start, end) in f.fn_spans() {
            if f.is_test_line(*start) {
                continue;
            }
            let mut held: Vec<(String, u32)> = Vec::new();
            for i in 0..toks.len() {
                let line = toks[i].line;
                if line < *start || line > *end {
                    continue;
                }
                if let Some((_, idx)) = method_call_at(toks, i, &["lock"]) {
                    let recv = receiver_path(toks, i);
                    if !recv.is_empty() && is_let_bound(toks, i, &recv) {
                        held.push((normalize_lock(&recv), toks[idx].line));
                    }
                    continue;
                }
                let force: Vec<&str> = config.force_methods.clone();
                if let Some((method, idx)) = method_call_at(toks, i, &force) {
                    if let Some((lock, lock_line)) = held.first() {
                        out.push(Finding {
                            rule: "lock-order",
                            file: f.rel.clone(),
                            line: toks[idx].line,
                            item: fn_name.clone(),
                            snippet: format!("{lock} held across {method}()"),
                            message: format!(
                                "lock `{lock}` (acquired line {lock_line}) is held \
                                 across `{method}()` on the commit path: a log \
                                 force under a lock serializes every client \
                                 behind the disk (§5.4 group commit wants the \
                                 wait outside the lock)"
                            ),
                        });
                        break; // One finding per function is enough signal.
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::parse(rel.into(), "fsd".into(), false, src)
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "fn f() { let a = A.lock(); let b = B.lock(); }\n\
                   fn g() { let a = A.lock(); let b = B.lock(); }\n";
        assert!(check(&[file("crates/fsd/src/a.rs", src)], &Config::cedar()).is_empty());
    }

    #[test]
    fn two_fn_cycle_detected_with_both_sites() {
        let src = "fn f() { let a = A.lock(); let b = B.lock(); }\n\
                   fn g() { let b = B.lock(); let a = A.lock(); }\n";
        let out = check(&[file("crates/fsd/src/a.rs", src)], &Config::cedar());
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].snippet.starts_with("cycle:"));
        // Both conflicting acquisition sites (lines 1 and 2) are named.
        assert!(out[0].message.contains(":1"), "{}", out[0].message);
        assert!(out[0].message.contains(":2"), "{}", out[0].message);
    }

    #[test]
    fn transient_lock_not_an_edge() {
        // `A.lock().push(x)` releases immediately: no hold, no cycle.
        let src = "fn f() { A.lock().push(1); let b = B.lock(); }\n\
                   fn g() { let b = B.lock(); A.lock().push(1); }\n";
        assert!(check(&[file("crates/fsd/src/a.rs", src)], &Config::cedar()).is_empty());
    }

    #[test]
    fn one_level_call_propagation() {
        let src = "fn f() { let a = A.lock(); helper(); }\n\
                   fn helper() { let b = B.lock(); }\n\
                   fn g() { let b = B.lock(); let a = A.lock(); }\n";
        let out = check(&[file("crates/fsd/src/a.rs", src)], &Config::cedar());
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn self_receivers_unify_across_methods() {
        let src = "impl S {\n\
                   fn f(&self) { let a = self.mu.lock(); let b = self.nu.lock(); }\n\
                   fn g(&self) { let b = self.nu.lock(); let a = self.mu.lock(); }\n\
                   }\n";
        let out = check(&[file("crates/fsd/src/a.rs", src)], &Config::cedar());
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn held_across_force_on_commit_path() {
        let src = "fn settle(&mut self) { let g = self.mu.lock(); self.vol.force(); }\n";
        let out = check(&[file("crates/fsd/src/sched.rs", src)], &Config::cedar());
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].snippet.contains("held across force()"));
    }

    #[test]
    fn force_off_commit_path_not_flagged() {
        let src = "fn settle(&mut self) { let g = self.mu.lock(); self.vol.force(); }\n";
        let out = check(&[file("crates/fsd/src/cache.rs", src)], &Config::cedar());
        assert!(out.is_empty());
    }

    #[test]
    fn test_code_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n\
                   fn f() { let a = A.lock(); let b = B.lock(); }\n\
                   fn g() { let b = B.lock(); let a = A.lock(); }\n}\n";
        assert!(check(&[file("crates/fsd/src/a.rs", src)], &Config::cedar()).is_empty());
    }
}
