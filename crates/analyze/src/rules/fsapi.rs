//! fs-api: the shared-reference service contract.
//!
//! The concurrent redesign rests on an obligation the compiler only
//! half-enforces: the public `FileSystem` service trait takes `&self` on
//! every method, so N sessions can share one service. A `&mut self`
//! method added to the trait would silently push the whole workspace
//! back to the exclusive-borrow world (every impl and every
//! `Arc<dyn FileSystem>` call site would churn), so the trait's own file
//! is linted: no `&mut self` inside the configured trait block. The
//! exclusive-borrow verbs belong on `FsBackend`.
//!
//! The guard-across-blocking-call check that used to live here is now
//! interprocedural and belongs to [`crate::rules::concurrency`].

use crate::config::Config;
use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;
use crate::Finding;

/// Runs the fs-api checks.
pub fn check(files: &[SourceFile], config: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if f.rel == config.fs_trait.0 {
            out.extend(trait_takes_shared_self(f, config.fs_trait.1));
        }
    }
    out
}

/// Flags `&mut self` method signatures inside the configured trait.
fn trait_takes_shared_self(f: &SourceFile, trait_name: &str) -> Vec<Finding> {
    let toks = &f.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].is_ident("trait") && toks[i + 1].is_ident(trait_name) {
            let Some(open) = (i..toks.len()).find(|&j| toks[j].is_punct('{')) else {
                break;
            };
            let close = matching_brace(toks, open);
            let mut j = open;
            while j < close {
                if toks[j].is_ident("fn")
                    && toks.get(j + 1).is_some_and(|t| t.kind == TokKind::Ident)
                    && toks.get(j + 2).is_some_and(|t| t.is_punct('('))
                    && toks.get(j + 3).is_some_and(|t| t.is_punct('&'))
                    && toks.get(j + 4).is_some_and(|t| t.is_ident("mut"))
                    && toks.get(j + 5).is_some_and(|t| t.is_ident("self"))
                {
                    let method = toks[j + 1].text.clone();
                    out.push(Finding {
                        rule: "fs-api",
                        file: f.rel.clone(),
                        line: toks[j + 1].line,
                        item: method.clone(),
                        snippet: format!("fn {method}(&mut self"),
                        message: format!(
                            "`{trait_name}::{method}` takes `&mut self`: the \
                             service trait is shared-reference by contract \
                             (sessions on N threads hold `Arc<dyn \
                             {trait_name}>`); exclusive-borrow verbs belong \
                             on `FsBackend`"
                        ),
                    });
                }
                j += 1;
            }
            i = close;
        }
        i += 1;
    }
    out
}

/// Index of the matching `}` for the `{` at `open` (or the last token).
fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trait_file(src: &str) -> SourceFile {
        SourceFile::parse("crates/vol/src/fs.rs".into(), "vol".into(), false, src)
    }

    #[test]
    fn mut_self_in_service_trait_flagged() {
        let src = "pub trait FileSystem {\n\
                   fn open(&self, name: &str) -> u32;\n\
                   fn create(&mut self, name: &str) -> u32;\n\
                   }\n";
        let out = check(&[trait_file(src)], &Config::cedar());
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].item, "create");
        assert!(out[0].snippet.contains("&mut self"));
    }

    #[test]
    fn mut_self_outside_the_trait_is_fine() {
        // `FsBackend` (and inherent impls) keep the exclusive verbs.
        let src = "pub trait FileSystem { fn open(&self) -> u32; }\n\
                   pub trait FsBackend { fn create(&mut self) -> u32; }\n\
                   impl Thing { fn poke(&mut self) {} }\n";
        assert!(check(&[trait_file(src)], &Config::cedar()).is_empty());
    }
}
