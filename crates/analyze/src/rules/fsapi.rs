//! fs-api: the shared-reference service contract.
//!
//! The concurrent redesign rests on two obligations the compiler only
//! half-enforces:
//!
//! * **Trait mutability** — the public `FileSystem` service trait takes
//!   `&self` on every method, so N sessions can share one service.
//!   A `&mut self` method added to the trait would silently push the
//!   whole workspace back to the exclusive-borrow world (every impl
//!   and every `Arc<dyn FileSystem>` call site would churn), so the
//!   trait's own file is linted: no `&mut self` inside the configured
//!   trait block. The exclusive-borrow verbs belong on `FsBackend`.
//!
//! * **Guards across epoch waits** — in the engine and scheduler files,
//!   a `let`-bound lock guard (std `.lock()` or the poison-recovering
//!   `plock(…)` helper) must not be live across a blocking call —
//!   `force`, condvar `wait`/`wait_timeout`/`wait_while`, channel
//!   `recv`/`recv_timeout`, or thread `join`. A guard held across such
//!   a wait serializes every client behind the sleeper — exactly the
//!   lock-shaped bottleneck the log-writer design exists to avoid.
//!   The sanctioned exception is the condvar hand-off, where the wait
//!   *consumes* the guard (`cvar.wait(state)`): a wait whose arguments
//!   mention the guard variable is exempt. Scope exits (`}`) and
//!   explicit `drop(guard)` release guards.

use crate::config::Config;
use crate::lexer::{Tok, TokKind};
use crate::rules::matching_paren;
use crate::source::SourceFile;
use crate::Finding;

/// Runs the fs-api checks.
pub fn check(files: &[SourceFile], config: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if f.rel == config.fs_trait.0 {
            out.extend(trait_takes_shared_self(f, config.fs_trait.1));
        }
        if config.epoch_wait_files.iter().any(|p| *p == f.rel) {
            out.extend(guard_across_wait(f, config));
        }
    }
    out
}

/// Flags `&mut self` method signatures inside the configured trait.
fn trait_takes_shared_self(f: &SourceFile, trait_name: &str) -> Vec<Finding> {
    let toks = &f.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].is_ident("trait") && toks[i + 1].is_ident(trait_name) {
            let Some(open) = (i..toks.len()).find(|&j| toks[j].is_punct('{')) else {
                break;
            };
            let close = matching_brace(toks, open);
            let mut j = open;
            while j < close {
                if toks[j].is_ident("fn")
                    && toks.get(j + 1).is_some_and(|t| t.kind == TokKind::Ident)
                    && toks.get(j + 2).is_some_and(|t| t.is_punct('('))
                    && toks.get(j + 3).is_some_and(|t| t.is_punct('&'))
                    && toks.get(j + 4).is_some_and(|t| t.is_ident("mut"))
                    && toks.get(j + 5).is_some_and(|t| t.is_ident("self"))
                {
                    let method = toks[j + 1].text.clone();
                    out.push(Finding {
                        rule: "fs-api",
                        file: f.rel.clone(),
                        line: toks[j + 1].line,
                        item: method.clone(),
                        snippet: format!("fn {method}(&mut self"),
                        message: format!(
                            "`{trait_name}::{method}` takes `&mut self`: the \
                             service trait is shared-reference by contract \
                             (sessions on N threads hold `Arc<dyn \
                             {trait_name}>`); exclusive-borrow verbs belong \
                             on `FsBackend`"
                        ),
                    });
                }
                j += 1;
            }
            i = close;
        }
        i += 1;
    }
    out
}

/// A live lock guard.
#[derive(Clone, Debug)]
struct Guard {
    name: String,
    depth: i32,
    line: u32,
}

/// Flags `let`-bound lock guards live across blocking calls, with the
/// condvar hand-off exemption.
fn guard_across_wait(f: &SourceFile, config: &Config) -> Vec<Finding> {
    let toks = &f.tokens;
    let mut out = Vec::new();
    for (fn_name, start, end) in f.fn_spans() {
        if f.is_test_line(*start) {
            continue;
        }
        let span: Vec<usize> = (0..toks.len())
            .filter(|&i| toks[i].line >= *start && toks[i].line <= *end)
            .collect();
        let mut depth = 0i32;
        let mut guards: Vec<Guard> = Vec::new();
        let mut flagged = false;
        for (si, &i) in span.iter().enumerate() {
            let t = &toks[i];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            } else if t.is_ident("let") {
                if let Some(g) = guard_binding(toks, i, depth) {
                    guards.push(g);
                }
            } else if t.is_ident("drop") && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                // `drop(g)` (or `mem::drop(g)`) releases the guard.
                let close = matching_paren(toks, i + 1);
                for dropped in toks.iter().take(close).skip(i + 2) {
                    if dropped.kind == TokKind::Ident {
                        guards.retain(|g| g.name != dropped.text);
                    }
                }
            } else if t.is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident)
                && toks.get(i + 2).is_some_and(|n| n.is_punct('('))
                && config
                    .epoch_wait_methods
                    .iter()
                    .any(|m| toks[i + 1].text == *m)
            {
                if flagged || guards.is_empty() {
                    continue;
                }
                let method = toks[i + 1].text.clone();
                // Condvar hand-off: a wait that consumes the guard
                // (mentions it in its arguments) is the sanctioned
                // blocking-with-guard pattern.
                let close = matching_paren(toks, i + 2);
                let consumes = (i + 3..close).any(|j| {
                    toks[j].kind == TokKind::Ident && guards.iter().any(|g| g.name == toks[j].text)
                });
                if consumes {
                    continue;
                }
                let g = &guards[0];
                out.push(Finding {
                    rule: "fs-api",
                    file: f.rel.clone(),
                    line: toks[i + 1].line,
                    item: fn_name.clone(),
                    snippet: format!("{} held across {method}()", g.name),
                    message: format!(
                        "lock guard `{}` (acquired line {}) is live across \
                         `{method}()`: a guard held across an epoch wait \
                         serializes every client behind the sleeper — \
                         release it first (scope or `drop`), or hand it to \
                         the condvar (`cvar.wait(guard)`)",
                        g.name, g.line,
                    ),
                });
                flagged = true; // One finding per function is enough signal.
            }
            let _ = si;
        }
    }
    out
}

/// If the `let` at `i` binds a lock guard, returns it. Recognized
/// acquisitions: a right-hand side whose first call is `plock(…)`, or
/// one containing `.lock(…)` not immediately re-chained into a
/// non-guard method (`x.lock().pop()` is a temporary; the
/// poison-recovery `match … { Err(p) => p.into_inner() }` still yields
/// the guard).
fn guard_binding(toks: &[Tok], i: usize, depth: i32) -> Option<Guard> {
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let name_tok = toks.get(j)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    if !toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
        return None;
    }
    let rhs = j + 2;
    let end = statement_end(toks, rhs);
    // `let g = plock(&m);` — the helper returns the guard directly.
    let first = toks.get(rhs)?;
    let plock_rhs = (first.is_ident("plock")
        || (first.is_ident("match") && toks.get(rhs + 1).is_some_and(|t| t.is_ident("plock"))))
        && (rhs..end).any(|k| toks[k].is_ident("plock"));
    if plock_rhs {
        return Some(Guard {
            name: name_tok.text.clone(),
            depth,
            line: name_tok.line,
        });
    }
    // `let g = <recv>.lock()…;` — a guard unless immediately re-chained
    // into a method that is not the poison-recovery idiom.
    for k in rhs..end {
        if toks[k].is_punct('.')
            && toks.get(k + 1).is_some_and(|t| t.is_ident("lock"))
            && toks.get(k + 2).is_some_and(|t| t.is_punct('('))
        {
            let close = matching_paren(toks, k + 2);
            let chained = toks.get(close + 1).is_some_and(|t| t.is_punct('.'))
                && toks.get(close + 2).is_some_and(|t| {
                    t.kind == TokKind::Ident
                        && !matches!(t.text.as_str(), "into_inner" | "unwrap" | "expect")
                });
            if chained {
                return None;
            }
            return Some(Guard {
                name: name_tok.text.clone(),
                depth,
                line: name_tok.line,
            });
        }
    }
    None
}

/// Token index just past the statement starting at `from` (its `;` at
/// nesting level zero, or the end of the token stream).
fn statement_end(toks: &[Tok], from: usize) -> usize {
    let mut level = 0i32;
    for (k, t) in toks.iter().enumerate().skip(from) {
        if t.is_punct('(') || t.is_punct('{') || t.is_punct('[') {
            level += 1;
        } else if t.is_punct(')') || t.is_punct('}') || t.is_punct(']') {
            level -= 1;
        } else if t.is_punct(';') && level <= 0 {
            return k;
        }
    }
    toks.len()
}

/// Index of the matching `}` for the `{` at `open` (or the last token).
fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trait_file(src: &str) -> SourceFile {
        SourceFile::parse("crates/vol/src/fs.rs".into(), "vol".into(), false, src)
    }

    fn engine_file(src: &str) -> SourceFile {
        SourceFile::parse("crates/fsd/src/engine.rs".into(), "fsd".into(), false, src)
    }

    #[test]
    fn mut_self_in_service_trait_flagged() {
        let src = "pub trait FileSystem {\n\
                   fn open(&self, name: &str) -> u32;\n\
                   fn create(&mut self, name: &str) -> u32;\n\
                   }\n";
        let out = check(&[trait_file(src)], &Config::cedar());
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].item, "create");
        assert!(out[0].snippet.contains("&mut self"));
    }

    #[test]
    fn mut_self_outside_the_trait_is_fine() {
        // `FsBackend` (and inherent impls) keep the exclusive verbs.
        let src = "pub trait FileSystem { fn open(&self) -> u32; }\n\
                   pub trait FsBackend { fn create(&mut self) -> u32; }\n\
                   impl Thing { fn poke(&mut self) {} }\n";
        assert!(check(&[trait_file(src)], &Config::cedar()).is_empty());
    }

    #[test]
    fn guard_across_force_flagged() {
        let src = "fn publish(&self) { let g = plock(&self.stats); self.vol.force(); }\n";
        let out = check(&[engine_file(src)], &Config::cedar());
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].snippet.contains("g held across force()"));
    }

    #[test]
    fn guard_across_condvar_wait_without_handoff_flagged() {
        let src = "fn block(&self) { let q = plock(&self.queue); self.cv.wait(other); }\n";
        let out = check(&[engine_file(src)], &Config::cedar());
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].snippet.contains("q held across wait()"));
    }

    #[test]
    fn condvar_handoff_consuming_the_guard_is_exempt() {
        let src = "fn block(&self) {\n\
                   let mut state = plock(&self.state);\n\
                   loop { state = self.cv.wait(state); }\n\
                   }\n";
        assert!(check(&[engine_file(src)], &Config::cedar()).is_empty());
    }

    #[test]
    fn scope_exit_releases_the_guard() {
        let src = "fn submit(&self) {\n\
                   { let mut q = plock(&self.queue); q.push(1); }\n\
                   self.slot.wait();\n\
                   }\n";
        assert!(check(&[engine_file(src)], &Config::cedar()).is_empty());
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let src = "fn submit(&self) {\n\
                   let q = self.queue.lock();\n\
                   drop(q);\n\
                   self.slot.wait();\n\
                   }\n";
        assert!(check(&[engine_file(src)], &Config::cedar()).is_empty());
    }

    #[test]
    fn lock_temporary_is_not_a_guard() {
        let src = "fn submit(&self) { let v = self.queue.lock().pop(); self.slot.wait(); }\n";
        assert!(check(&[engine_file(src)], &Config::cedar()).is_empty());
    }

    #[test]
    fn poison_recovery_match_is_still_a_guard() {
        let src = "fn publish(&self) {\n\
                   let g = match self.stats.lock() { Ok(g) => g, Err(p) => p.into_inner() };\n\
                   self.done.join();\n\
                   }\n";
        let out = check(&[engine_file(src)], &Config::cedar());
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].snippet.contains("join()"));
    }

    #[test]
    fn files_off_the_epoch_wait_list_are_exempt() {
        let src = "fn f(&self) { let g = plock(&self.x); self.vol.force(); }\n";
        let f = SourceFile::parse("crates/cfs/src/volume.rs".into(), "cfs".into(), false, src);
        assert!(check(&[f], &Config::cedar()).is_empty());
    }

    #[test]
    fn test_code_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n\
                   fn f() { let g = plock(&X); Y.force(); }\n}\n";
        assert!(check(&[engine_file(src)], &Config::cedar()).is_empty());
    }
}
