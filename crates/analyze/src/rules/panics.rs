//! Panic-freedom ratchet: no `unwrap()/expect()/panic!()` (nor
//! `todo!/unimplemented!`) in non-test library code of the covered crates.
//!
//! The crash path must degrade into typed errors, not aborts — a panic in
//! recovery code aborts mid-redo and leaves the volume needing a scavenge,
//! exactly what the log exists to prevent. Existing sites are accepted via
//! the checked-in allowlist, which only shrinks.

use crate::config::Config;
use crate::source::SourceFile;
use crate::Finding;

/// Runs the panic ratchet.
pub fn check(files: &[SourceFile], config: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if f.is_aux || !config.panic_crates.iter().any(|c| *c == f.crate_key) {
            continue;
        }
        let toks = &f.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if f.is_test_line(t.line) {
                continue;
            }
            // `.unwrap()` / `.expect(` — exact method names only, so
            // `unwrap_or`, `unwrap_or_else`, `unwrap_err` don't match.
            let is_dot_call = |name: &str| {
                t.is_ident(name)
                    && i >= 1
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            };
            let bang_macro =
                |name: &str| t.is_ident(name) && toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
            let snippet = if is_dot_call("unwrap") {
                Some("unwrap()")
            } else if is_dot_call("expect") {
                Some("expect()")
            } else if bang_macro("panic") {
                Some("panic!")
            } else if bang_macro("todo") {
                Some("todo!")
            } else if bang_macro("unimplemented") {
                Some("unimplemented!")
            } else {
                None
            };
            if let Some(snippet) = snippet {
                out.push(Finding {
                    rule: "panic-ratchet",
                    file: f.rel.clone(),
                    line: t.line,
                    item: f.enclosing_fn(t.line).to_string(),
                    snippet: snippet.to_string(),
                    message: format!(
                        "`{snippet}` in non-test library code: return a typed \
                         error instead (recovery code must never abort mid-redo)"
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("crates/fsd/src/x.rs".into(), "fsd".into(), false, src)
    }

    #[test]
    fn unwrap_in_lib_code_flagged() {
        let out = check(&[file("fn f() { x.unwrap(); }\n")], &Config::cedar());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].snippet, "unwrap()");
        assert_eq!(out[0].item, "f");
    }

    #[test]
    fn unwrap_variants_not_flagged() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); z.unwrap_or_default(); }\n";
        assert!(check(&[file(src)], &Config::cedar()).is_empty());
    }

    #[test]
    fn expect_and_panic_flagged() {
        let src = "fn f() { x.expect(\"m\"); panic!(\"boom\"); todo!(); }\n";
        let out = check(&[file(src)], &Config::cedar());
        let snips: Vec<_> = out.iter().map(|f| f.snippet.as_str()).collect();
        assert_eq!(snips, vec!["expect()", "panic!", "todo!"]);
    }

    #[test]
    fn test_code_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); panic!(); }\n}\n";
        assert!(check(&[file(src)], &Config::cedar()).is_empty());
    }

    #[test]
    fn strings_and_comments_exempt() {
        let src = "fn f() { let s = \".unwrap()\"; } // then .unwrap() it\n";
        assert!(check(&[file(src)], &Config::cedar()).is_empty());
    }

    #[test]
    fn uncovered_crate_exempt() {
        let f = SourceFile::parse(
            "crates/bench/src/x.rs".into(),
            "bench".into(),
            false,
            "fn f() { x.unwrap(); }\n",
        );
        assert!(check(&[f], &Config::cedar()).is_empty());
    }

    #[test]
    fn expect_fn_call_not_method_not_flagged() {
        // A free function named `expect` (no preceding dot) is not the
        // Option/Result method.
        let src = "fn f() { expect(1); }\n";
        assert!(check(&[file(src)], &Config::cedar()).is_empty());
    }
}
