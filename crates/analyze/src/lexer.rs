//! A minimal Rust lexer: just enough to strip comments, strings (including
//! raw strings), and char literals so the rules never match inside them.
//!
//! The token stream keeps identifiers, numeric literals, and single-character
//! punctuation with line numbers. Comments are preserved *separately* (the
//! unsafe-hygiene rule looks for `// SAFETY:` annotations); string and char
//! literal contents are dropped and replaced by a single `Str` token so that
//! token adjacency (e.g. `assert!("...")`) is preserved.

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// A string, byte-string, raw-string, or char literal (contents dropped).
    Str,
    /// A lifetime (`'a`), kept distinct from char literals.
    Lifetime,
    /// Single punctuation character.
    Punct(char),
}

/// A token with its source line (1-based).
#[derive(Clone, Debug)]
pub struct Tok {
    /// Kind of token.
    pub kind: TokKind,
    /// Identifier / literal text (empty for `Str`).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Tok {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment with its line span (a block comment may span several lines).
#[derive(Clone, Debug)]
pub struct Comment {
    /// First line of the comment.
    pub line: u32,
    /// Last line of the comment.
    pub end_line: u32,
    /// Raw comment text, including the `//` or `/* */` delimiters.
    pub text: String,
}

/// Lexed file: tokens plus the comments that were stripped.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens in order.
    pub tokens: Vec<Tok>,
    /// Comments in order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source. Never fails: unterminated constructs are tolerated by
/// consuming to end of input (the compiler, not the linter, rejects them).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    end_line: line,
                    text: src[start..i].to_string(),
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let (start, start_line) = (i, line);
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    line: start_line,
                    end_line: line,
                    text: src[start..i].to_string(),
                });
            }
            b'"' => {
                let start_line = line;
                i = skip_string(b, i, &mut line);
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: start_line,
                });
            }
            // Raw identifier `r#ident`: one Ident token with the `r#`
            // stripped (so `r#match` compares equal to `match`-free names).
            b'r' if i + 2 < b.len()
                && b[i + 1] == b'#'
                && (b[i + 2] == b'_' || (b[i + 2] as char).is_ascii_alphabetic()) =>
            {
                let start = i + 2;
                i += 2;
                while i < b.len() && (b[i] == b'_' || (b[i] as char).is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                let start_line = line;
                i = skip_raw_or_byte_string(b, i, &mut line);
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: start_line,
                });
            }
            b'\'' => {
                // Lifetime vs char literal. `'ident` not followed by a
                // closing quote is a lifetime; everything else is a char.
                if is_lifetime(b, i) {
                    let start = i + 1;
                    i += 1;
                    while i < b.len() && (b[i] == b'_' || (b[i] as char).is_ascii_alphanumeric()) {
                        i += 1;
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[start..i].to_string(),
                        line,
                    });
                } else {
                    i = skip_char_literal(b, i, &mut line);
                    out.tokens.push(Tok {
                        kind: TokKind::Str,
                        text: String::new(),
                        line,
                    });
                }
            }
            _ if c == b'_' || (c as char).is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || (b[i] as char).is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ if (c as char).is_ascii_digit() => {
                let start = i;
                i += 1;
                // Numbers may contain digits, `_`, base prefixes, hex
                // letters, suffixes, and a decimal point.
                while i < b.len()
                    && (b[i] == b'_' || b[i] == b'.' || (b[i] as char).is_ascii_alphanumeric())
                {
                    // `0..10` is a range and `0.method()` is a tuple-index
                    // field access, not floats: only consume a `.` that is
                    // directly followed by a digit.
                    if b[i] == b'.' && !(i + 1 < b.len() && (b[i + 1] as char).is_ascii_digit()) {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Num,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                out.tokens.push(Tok {
                    kind: TokKind::Punct(c as char),
                    text: String::new(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// True if position `i` (at `r` or `b`) starts a raw string (`r"`, `r#"`),
/// byte string (`b"`), or raw byte string (`br"`, `br#"`).
fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
        while j < b.len() && b[j] == b'#' {
            j += 1;
        }
    }
    // A plain `b` must be directly followed by a quote (`b"` or `b'`).
    j < b.len() && (b[j] == b'"' || (b[j] == b'\'' && j == i + 1))
}

/// Skips a raw/byte string starting at `i`; returns the index past its end.
fn skip_raw_or_byte_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    if b[i] == b'b' {
        i += 1;
    }
    if i < b.len() && b[i] == b'\'' {
        return skip_char_literal(b, i, line); // b'x'
    }
    let mut hashes = 0usize;
    if i < b.len() && b[i] == b'r' {
        i += 1;
        while i < b.len() && b[i] == b'#' {
            hashes += 1;
            i += 1;
        }
    }
    if i < b.len() && b[i] == b'"' {
        if hashes == 0 && b[i.saturating_sub(1)] != b'r' && b[i.saturating_sub(1)] != b'#' {
            // Plain byte string `b"..."`: escapes apply.
            return skip_string(b, i, line);
        }
        i += 1;
        // Raw string: ends at `"` followed by `hashes` `#`s; no escapes.
        while i < b.len() {
            if b[i] == b'\n' {
                *line += 1;
                i += 1;
                continue;
            }
            if b[i] == b'"' {
                let mut k = 0usize;
                while k < hashes && i + 1 + k < b.len() && b[i + 1 + k] == b'#' {
                    k += 1;
                }
                if k == hashes {
                    return i + 1 + hashes;
                }
            }
            i += 1;
        }
    }
    i
}

/// Skips a normal (escaped) string literal starting at the `"` at `i`.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // Opening quote.
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a char literal starting at the `'` (or `b'`) at `i`.
fn skip_char_literal(b: &[u8], mut i: usize, _line: &mut u32) -> usize {
    if b[i] == b'b' {
        i += 1;
    }
    i += 1; // Opening quote.
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Distinguishes `'a` (lifetime) from `'a'` (char literal) at the `'` at `i`.
fn is_lifetime(b: &[u8], i: usize) -> bool {
    let Some(&first) = b.get(i + 1) else {
        return false;
    };
    if first != b'_' && !(first as char).is_ascii_alphabetic() {
        return false; // `'\n'`, `'9'`… are char literals.
    }
    // Scan the identifier; a closing quote right after means char literal.
    let mut j = i + 1;
    while j < b.len() && (b[j] == b'_' || (b[j] as char).is_ascii_alphanumeric()) {
        j += 1;
    }
    !(j < b.len() && b[j] == b'\'')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strips_line_and_block_comments() {
        let l = lex("a // unwrap()\n/* panic! */ b /* nested /* x */ y */ c");
        assert_eq!(idents("a // unwrap()\n/* panic! */ b"), vec!["a", "b"]);
        assert_eq!(l.comments.len(), 3);
        assert!(l.comments[0].text.contains("unwrap"));
    }

    #[test]
    fn strips_strings_and_raw_strings() {
        assert_eq!(idents(r#"a ".unwrap()" b"#), vec!["a", "b"]);
        assert_eq!(idents(r##"a r#".unwrap()"# b"##), vec!["a", "b"]);
        assert_eq!(idents(r#"a b".unwrap()" c"#), vec!["a", "c"]);
        assert_eq!(idents("a \"esc \\\" .unwrap()\" b"), vec!["a", "b"]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Lifetime));
        assert!(!l.tokens.iter().any(|t| t.is_ident("x") && t.line == 0));
    }

    #[test]
    fn numbers_keep_text_and_ranges_split() {
        let l = lex("0..512 0x200 1_024usize 3.5");
        let nums: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "512", "0x200", "1_024usize", "3.5"]);
    }

    #[test]
    fn lines_are_tracked() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<_> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn multiline_string_keeps_start_line() {
        // The Str token must carry the line the literal *starts* on.
        let l = lex("a \"one\ntwo\nthree\" b");
        let strs: Vec<_> = l.tokens.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].line, 1);
        // ...and line tracking stays correct for what follows.
        assert!(l.tokens.iter().any(|t| t.is_ident("b") && t.line == 3));
    }

    #[test]
    fn raw_identifiers_lex_as_one_ident() {
        let l = lex("let r#match = r#fn + other;");
        let names: Vec<_> = idents("let r#match = r#fn + other;");
        assert_eq!(names, vec!["let", "match", "fn", "other"]);
        assert!(!l.tokens.iter().any(|t| t.is_punct('#')));
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        assert_eq!(idents(r###"a r##"has "# inside"## b"###), vec!["a", "b"]);
        assert_eq!(idents("a br#\"bytes\"# b"), vec!["a", "b"]);
    }

    #[test]
    fn tuple_index_field_access_is_not_a_float() {
        let l = lex("pair.0.count() + 1.5");
        let nums: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "1.5"]);
        assert!(l.tokens.iter().any(|t| t.is_ident("count")));
    }

    #[test]
    fn multiline_block_comment_spans() {
        let l = lex("/* a\nb\nc */ x");
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[0].end_line, 3);
        assert_eq!(l.tokens[0].line, 3);
    }
}
