//! The ratchet allowlist: today's accepted findings, checked in, only
//! allowed to shrink.
//!
//! Format: one entry per line, tab-separated:
//!
//! ```text
//! rule<TAB>file<TAB>item<TAB>count<TAB>snippet
//! ```
//!
//! Blank lines and lines starting with `#` are comments. Entries are keyed
//! by (rule, file, enclosing item, snippet) rather than line numbers so
//! unrelated edits do not invalidate them; `count` is how many identical
//! sites the item contains. A finding with no allowlist budget fails the
//! run; an allowlist entry with leftover budget is *stale* and also fails
//! (`stale-allowlist` findings) — the ratchet never loosens silently.

use crate::{AnalyzeError, Finding};
use std::collections::BTreeMap;

/// Parsed allowlist: key -> remaining budget.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    entries: BTreeMap<(String, String, String, String), u32>,
}

impl Allowlist {
    /// An empty allowlist (everything is a finding).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parses the allowlist text.
    pub fn parse(text: &str) -> Result<Self, AnalyzeError> {
        let mut entries = BTreeMap::new();
        for (no, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line.splitn(5, '\t').collect();
            let [rule, file, item, count, snippet] = parts.as_slice() else {
                return Err(AnalyzeError::BadAllowlist(format!(
                    "line {}: expected 5 tab-separated fields",
                    no + 1
                )));
            };
            let count: u32 = count.parse().map_err(|_| {
                AnalyzeError::BadAllowlist(format!("line {}: bad count {count:?}", no + 1))
            })?;
            let key = (
                rule.to_string(),
                file.to_string(),
                item.to_string(),
                snippet.to_string(),
            );
            *entries.entry(key).or_insert(0) += count;
        }
        Ok(Self { entries })
    }

    /// Loads the allowlist from a file; a missing file is an empty list.
    pub fn load(path: &std::path::Path) -> Result<Self, AnalyzeError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::empty()),
            Err(e) => Err(AnalyzeError::Io(format!("{}: {e}", path.display()))),
        }
    }

    /// Applies the allowlist: returns (unallowed findings, stale findings).
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>) {
        let mut budget = self.entries.clone();
        let mut kept = Vec::new();
        for f in findings {
            match budget.get_mut(&f.key()) {
                Some(n) if *n > 0 => *n -= 1,
                _ => kept.push(f),
            }
        }
        let stale = budget
            .into_iter()
            .filter(|(_, n)| *n > 0)
            .map(|((rule, file, item, snippet), n)| Finding {
                rule: "stale-allowlist",
                file: file.clone(),
                line: 0,
                item,
                snippet: snippet.clone(),
                message: format!(
                    "allowlist entry for rule `{rule}` ({snippet}) has {n} unused \
                     occurrence(s) — the site was fixed; delete the entry to ratchet down"
                ),
            })
            .collect();
        (kept, stale)
    }

    /// Renders findings as allowlist text (for `--emit-allow`).
    pub fn emit(findings: &[Finding]) -> String {
        let mut counts: BTreeMap<(String, String, String, String), u32> = BTreeMap::new();
        for f in findings {
            *counts.entry(f.key()).or_insert(0) += 1;
        }
        let mut out = String::from(
            "# cedar-lint ratchet allowlist. One tab-separated entry per accepted\n\
             # site: rule<TAB>file<TAB>item<TAB>count<TAB>snippet.\n\
             # This file only shrinks: new findings and stale entries both fail CI.\n",
        );
        for ((rule, file, item, snippet), n) in counts {
            out.push_str(&format!("{rule}\t{file}\t{item}\t{n}\t{snippet}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &'static str, file: &str, item: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line: 1,
            item: item.into(),
            snippet: snippet.into(),
            message: String::new(),
        }
    }

    #[test]
    fn roundtrip_and_budget() {
        let findings = vec![
            f("panic-ratchet", "a.rs", "go", "unwrap()"),
            f("panic-ratchet", "a.rs", "go", "unwrap()"),
            f("cast-safety", "b.rs", "-", "len() as u16"),
        ];
        let text = Allowlist::emit(&findings);
        let allow = Allowlist::parse(&text).unwrap();
        assert_eq!(allow.len(), 2);
        let (kept, stale) = allow.apply(findings);
        assert!(kept.is_empty());
        assert!(stale.is_empty());
    }

    #[test]
    fn new_site_fails() {
        let allow = Allowlist::parse("panic-ratchet\ta.rs\tgo\t1\tunwrap()\n").unwrap();
        let (kept, stale) = allow.apply(vec![
            f("panic-ratchet", "a.rs", "go", "unwrap()"),
            f("panic-ratchet", "a.rs", "go", "unwrap()"), // One too many.
        ]);
        assert_eq!(kept.len(), 1);
        assert!(stale.is_empty());
    }

    #[test]
    fn stale_entry_fails() {
        let allow = Allowlist::parse("panic-ratchet\ta.rs\tgo\t2\tunwrap()\n").unwrap();
        let (kept, stale) = allow.apply(vec![f("panic-ratchet", "a.rs", "go", "unwrap()")]);
        assert!(kept.is_empty());
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].rule, "stale-allowlist");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let allow = Allowlist::parse("# hi\n\npanic-ratchet\ta\tb\t1\tc\n").unwrap();
        assert_eq!(allow.len(), 1);
    }

    #[test]
    fn malformed_rejected() {
        assert!(Allowlist::parse("too few fields").is_err());
        assert!(Allowlist::parse("a\tb\tc\tNaN\td").is_err());
    }

    #[test]
    fn missing_file_is_empty() {
        let allow = Allowlist::load(std::path::Path::new("/nonexistent/xyz.allow")).unwrap();
        assert!(allow.is_empty());
    }
}
