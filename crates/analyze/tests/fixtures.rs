//! End-to-end fixture tests: the full rule set over tiny synthetic
//! workspaces under `tests/fixtures/`, one per rule family, each with a
//! deliberate violation — plus a clean control tree that must produce no
//! findings. The main workspace scan skips these trees (`/fixtures/` in
//! the path), so the violations here never reach CI.

use cedar_analyze::allowlist::Allowlist;
use cedar_analyze::{run, Config, Finding};
use std::path::{Path, PathBuf};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(name)
}

fn findings(name: &str) -> Vec<Finding> {
    run(&fixture_root(name), &Config::cedar(), &Allowlist::empty())
        .expect("fixture analysis")
        .findings
}

#[test]
fn clean_fixture_has_no_findings() {
    let f = findings("clean");
    assert!(f.is_empty(), "clean fixture should pass every rule: {f:#?}");
}

#[test]
fn layering_fixture_flags_all_three_violations() {
    let f = findings("layering");
    assert!(f.iter().all(|x| x.rule == "layering"), "{f:#?}");
    // Upward import: vol must not use cedar_fsd.
    assert!(
        f.iter()
            .any(|x| x.file == "crates/vol/src/lib.rs" && x.snippet == "use cedar_fsd"),
        "{f:#?}"
    );
    // Raw sector I/O above the volume layer.
    assert!(
        f.iter()
            .any(|x| x.file == "crates/bench/src/lib.rs" && x.message.contains("FileSystem")),
        "{f:#?}"
    );
    // Log-region addressing outside cedar_fsd::{log, recovery}.
    assert!(
        f.iter()
            .any(|x| x.file == "crates/fsd/src/volume.rs" && x.snippet.contains("log_start")),
        "{f:#?}"
    );
}

#[test]
fn walorder_fixture_flags_only_the_unlogged_path() {
    let f = findings("walorder");
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!(f[0].rule, "wal-order");
    assert_eq!(f[0].item, "unprotected_op");
    assert!(f[0].message.contains("write-ahead"), "{}", f[0].message);
}

#[test]
fn scavenge_exemption_is_scoped_to_the_scavenge_file() {
    // The scavenger rewrites home sectors from leader pages with no log
    // append — by construction the log is what was lost — so scavenge.rs
    // sits in `wal_exempt_files`. The exemption must be scoped: the same
    // unlogged write through a non-exempt helper still fires.
    let f = findings("scavenge");
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!(f[0].rule, "wal-order");
    assert_eq!(f[0].item, "unprotected_op");
    // Neither the exempt path nor the logged control path fires.
    assert!(f.iter().all(|x| x.item != "op_via_scavenge"), "{f:#?}");
    assert!(f.iter().all(|x| x.item != "protected_op"), "{f:#?}");
}

#[test]
fn barrier_fixture_flags_unbarriered_execute_and_raw_io() {
    let f = findings("barrier");
    assert_eq!(f.len(), 2, "{f:#?}");
    assert!(
        f.iter()
            .any(|x| x.rule == "barrier-discipline" && x.item == "append"),
        "{f:#?}"
    );
    assert!(
        f.iter()
            .any(|x| x.rule == "batch-io" && x.item == "sync_home_all"),
        "{f:#?}"
    );
    // The barriered control path stays clean.
    assert!(f.iter().all(|x| x.item != "write_meta"), "{f:#?}");
}

#[test]
fn errorflow_fixture_flags_discard_and_catch_all() {
    let f = findings("errorflow");
    assert_eq!(f.len(), 2, "{f:#?}");
    assert!(f.iter().all(|x| x.rule == "error-flow"), "{f:#?}");
    assert!(
        f.iter()
            .any(|x| x.item == "force" && x.snippet.contains(".ok()")),
        "{f:#?}"
    );
    assert!(f.iter().any(|x| x.item == "classify"), "{f:#?}");
}

#[test]
fn sarif_output_matches_fixture_findings() {
    let report = run(
        &fixture_root("errorflow"),
        &Config::cedar(),
        &Allowlist::empty(),
    )
    .expect("fixture analysis");
    let s = report.sarif();
    assert!(s.contains("\"version\":\"2.1.0\""), "{s}");
    assert!(s.contains("{\"id\":\"error-flow\"}"), "{s}");
    assert!(s.contains("\"uri\":\"crates/fsd/src/log.rs\""), "{s}");
    // Every finding's line appears as a 1-based SARIF region.
    for f in &report.findings {
        assert!(
            s.contains(&format!("\"startLine\":{}", f.line.max(1))),
            "missing region for {f:#?} in {s}"
        );
    }
    assert_eq!(
        s.matches("\"ruleId\":\"error-flow\"").count(),
        report.findings.len(),
        "{s}"
    );
}

#[test]
fn allowlist_ratchets_the_new_rule_families_too() {
    // The flow-rule findings can be burned into the shrink-only
    // allowlist like any legacy family…
    let base = findings("errorflow");
    assert!(!base.is_empty());
    let allow = Allowlist::parse(&Allowlist::emit(&base)).expect("emitted allowlist parses");
    let report = run(&fixture_root("errorflow"), &Config::cedar(), &allow).expect("allowed run");
    assert!(report.ok(), "{:#?}", report.findings);
    // …and once the sites are fixed, the entries go stale and fail the
    // run until deleted (the ratchet only shrinks).
    let stale = run(&fixture_root("clean"), &Config::cedar(), &allow).expect("stale run");
    assert!(!stale.ok());
    assert!(
        stale.findings.iter().all(|f| f.rule == "stale-allowlist"),
        "{:#?}",
        stale.findings
    );
}

#[test]
fn panics_fixture_flags_covered_crate_only() {
    let f = findings("panics");
    // One finding: the non-test unwrap in fsd. The unwrap in the test
    // module and the one in the uncovered `workload` crate are exempt.
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!(f[0].rule, "panic-ratchet");
    assert_eq!(f[0].file, "crates/fsd/src/lib.rs");
    assert_eq!(f[0].item, "risky");
}

#[test]
fn concurrency_fixture_flags_cycle_callee_hold_wait_and_ordering() {
    let f = findings("concurrency");
    // Cross-file acquisition-order cycle: `forward` in lib.rs vs
    // `reverse` in sched.rs — one finding naming both sites.
    let cycle = f
        .iter()
        .find(|x| x.rule == "lock-graph" && x.snippet.starts_with("cycle:"))
        .expect("cycle finding");
    assert!(
        cycle.message.contains("crates/fsd/src/lib.rs:2"),
        "{}",
        cycle.message
    );
    assert!(
        cycle.message.contains("crates/fsd/src/sched.rs"),
        "{}",
        cycle.message
    );
    // `drain` holds a guard while calling `settle`, which blocks on
    // `force()` one call deep — caught interprocedurally.
    assert!(
        f.iter().any(|x| x.rule == "lock-graph"
            && x.item == "drain"
            && x.snippet.contains("held across settle()")
            && x.message.contains("force()")),
        "{f:#?}"
    );
    // `bad_wait` waits outside a predicate loop; the loop in `good_wait`
    // is the sanctioned shape and stays clean.
    assert!(
        f.iter().any(|x| x.rule == "condvar-discipline"
            && x.item == "bad_wait"
            && x.snippet.contains("outside loop")),
        "{f:#?}"
    );
    assert!(f.iter().all(|x| x.item != "good_wait"), "{f:#?}");
    // `publish` stores the epoch Relaxed before the wake.
    assert!(
        f.iter().any(|x| x.rule == "condvar-discipline"
            && x.item == "publish"
            && x.snippet.contains("epoch.store ordering")),
        "{f:#?}"
    );
    assert_eq!(f.len(), 4, "{f:#?}");
}

#[test]
fn fsapi_fixture_flags_mut_trait_method_only() {
    let f = findings("fsapi");
    assert!(f.iter().all(|x| x.rule == "fs-api"), "{f:#?}");
    assert_eq!(f.len(), 1, "{f:#?}");
    // `FileSystem::create` takes `&mut self`; `FsBackend::create` (the
    // exclusive-borrow trait) is the sanctioned home and stays clean.
    assert!(
        f.iter().any(|x| x.file == "crates/vol/src/fs.rs"
            && x.item == "create"
            && x.message.contains("&mut self")),
        "{f:#?}"
    );
}

#[test]
fn consts_fixture_flags_duplicated_literal_not_definition() {
    let f = findings("consts");
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!(f[0].rule, "const-consistency");
    assert_eq!(f[0].file, "crates/cfs/src/lib.rs");
    assert!(f[0].message.contains("SECTOR_BYTES"), "{}", f[0].message);
}

#[test]
fn casts_fixture_flags_len_and_layout_const_casts() {
    let f = findings("casts");
    assert!(f.iter().all(|x| x.rule == "cast-safety"), "{f:#?}");
    assert!(f.iter().any(|x| x.snippet == "len() as u16"), "{f:#?}");
    assert!(
        f.iter().any(|x| x.snippet == "SECTOR_BYTES as u32"),
        "{f:#?}"
    );
}

#[test]
fn unsafety_fixture_flags_missing_attr_and_undocumented_unsafe() {
    let f = findings("unsafety");
    assert!(f.iter().all(|x| x.rule == "unsafe-hygiene"), "{f:#?}");
    // Both violations are in the disk crate; the SAFETY-commented unsafe
    // in vol (which also carries the deny attribute) is clean.
    assert!(
        f.iter().all(|x| x.file == "crates/disk/src/lib.rs"),
        "{f:#?}"
    );
    assert!(
        f.iter()
            .any(|x| x.snippet.contains("missing #![deny(unsafe_code)]")),
        "{f:#?}"
    );
    assert!(
        f.iter()
            .any(|x| x.snippet.contains("unsafe without SAFETY")),
        "{f:#?}"
    );
}

#[test]
fn taint_fixture_flags_sink_arith_and_coverage_but_not_sanitized() {
    let f = findings("taint");
    // A raw decode steering layout address math.
    assert!(
        f.iter().any(|x| x.rule == "disk-taint"
            && x.file == "crates/fsd/src/recovery.rs"
            && x.item == "tainted_index"
            && x.message.contains("nt_a_sector")),
        "{f:#?}"
    );
    // The same decode reaching unchecked `+` arithmetic.
    assert!(
        f.iter().any(|x| x.rule == "taint-arith"
            && x.item == "tainted_arith"
            && x.snippet.contains('+')),
        "{f:#?}"
    );
    // `LogMeta.oldest_offset` has no validator in the fixture; every
    // `PageTarget` field is covered by one, so only LogMeta fires.
    assert!(
        f.iter().any(|x| x.rule == "decode-coverage"
            && x.file == "crates/fsd/src/log.rs"
            && x.item == "LogMeta"
            && x.snippet == "oldest_offset"),
        "{f:#?}"
    );
    assert!(
        f.iter().all(|x| x.item != "PageTarget"),
        "validator-covered fields must stay quiet: {f:#?}"
    );
    // The dominating bounds check in `sanitized_ok` launders the taint.
    assert!(f.iter().all(|x| x.item != "sanitized_ok"), "{f:#?}");
    assert_eq!(f.len(), 3, "{f:#?}");
}
