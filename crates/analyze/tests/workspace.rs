//! The two ratchet guarantees, proven against the real workspace:
//!
//! 1. The tree as committed is clean under the checked-in allowlist
//!    (`cedar-lint --workspace` exits 0 — this is the CI gate).
//! 2. The ratchet actually bites: copying the workspace aside and adding
//!    one new `unwrap()` to a covered crate produces a `panic-ratchet`
//!    finding under the same allowlist.

use cedar_analyze::allowlist::Allowlist;
use cedar_analyze::{run, Config};
use std::path::{Path, PathBuf};

/// The real workspace root (two levels above this crate).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

#[test]
fn real_workspace_is_clean_under_checked_in_allowlist() {
    let root = workspace_root();
    let allow = Allowlist::load(&root.join("cedar-lint.allow")).expect("allowlist");
    let report = run(&root, &Config::cedar(), &allow).expect("analysis");
    assert!(report.ok(), "workspace has findings:\n{}", report.human());
}

/// Copies every workspace `.rs` file (and the allowlist) into `dst`,
/// preserving relative paths and skipping fixture trees.
fn copy_workspace(root: &Path, dst: &Path) {
    let mut stack = vec![root.join("crates"), root.join("src"), root.join("tests")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                let rel = p.strip_prefix(root).expect("inside root");
                if rel.to_string_lossy().contains("fixtures") {
                    continue;
                }
                let to = dst.join(rel);
                std::fs::create_dir_all(to.parent().expect("parent")).expect("mkdir");
                std::fs::copy(&p, &to).expect("copy source file");
            }
        }
    }
    std::fs::copy(root.join("cedar-lint.allow"), dst.join("cedar-lint.allow"))
        .expect("copy allowlist");
}

#[test]
fn ratchet_catches_a_new_unwrap_in_a_covered_crate() {
    let root = workspace_root();
    let dst = std::env::temp_dir().join(format!("cedar-lint-ratchet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dst);
    copy_workspace(&root, &dst);

    // Inject one new panic site into cedar-fsd's library code.
    std::fs::write(
        dst.join("crates/fsd/src/injected.rs"),
        "pub fn oops(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    )
    .expect("write injected file");

    let allow = Allowlist::load(&dst.join("cedar-lint.allow")).expect("allowlist");
    let report = run(&dst, &Config::cedar(), &allow).expect("analysis");
    let caught = report.findings.iter().any(|f| {
        f.rule == "panic-ratchet" && f.file == "crates/fsd/src/injected.rs" && f.item == "oops"
    });
    let human = report.human();
    let _ = std::fs::remove_dir_all(&dst);
    assert!(caught, "injected unwrap was not flagged:\n{human}");
}

#[test]
fn taint_ratchet_catches_a_new_unvalidated_decode_in_recovery() {
    let root = workspace_root();
    let dst = std::env::temp_dir().join(format!("cedar-lint-taint-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dst);
    copy_workspace(&root, &dst);

    // Splice a decode-steers-sink flow into the real recovery module.
    let rec = dst.join("crates/fsd/src/recovery.rs");
    let mut body = std::fs::read_to_string(&rec).expect("read recovery.rs");
    body.push_str(
        "\npub fn lint_probe(layout: &FsdLayout, buf: &[u8]) -> u32 {\n    \
         let header = decode_header(buf);\n    \
         layout.nt_a_sector(header.page, 0)\n}\n",
    );
    std::fs::write(&rec, body).expect("write recovery.rs");

    let allow = Allowlist::load(&dst.join("cedar-lint.allow")).expect("allowlist");
    let report = run(&dst, &Config::cedar(), &allow).expect("analysis");
    let caught = report.findings.iter().any(|f| {
        f.rule == "disk-taint" && f.file == "crates/fsd/src/recovery.rs" && f.item == "lint_probe"
    });
    let human = report.human();
    let _ = std::fs::remove_dir_all(&dst);
    assert!(caught, "injected tainted sink was not flagged:\n{human}");
}
