//! Parser coverage gate: every `.rs` file in the real workspace must go
//! through `parser::parse` without error. A parse failure means the flow
//! rules (wal-order, barrier-discipline, error-flow) silently skip that
//! file, so this test keeps the parser honest as the codebase grows.

use cedar_analyze::allowlist::Allowlist;
use cedar_analyze::{run, workspace, Config};
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/analyze -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
}

#[test]
fn every_workspace_file_parses() {
    let files =
        workspace::load_workspace(workspace_root(), &Config::cedar()).expect("load workspace");
    assert!(!files.is_empty(), "workspace scan found no files");
    let failures: Vec<String> = files
        .iter()
        .filter_map(|f| {
            f.parse_error
                .as_ref()
                .map(|(line, msg)| format!("{}:{line}: {msg}", f.rel))
        })
        .collect();
    assert!(
        failures.is_empty(),
        "cedar-lint's parser failed on workspace files:\n{}",
        failures.join("\n")
    );
    // Sanity: the parser actually produced function bodies, not empty
    // ASTs (a regression that silently skips everything would pass the
    // error check above).
    let fns: usize = files.iter().map(|f| f.ast.fns.len()).sum();
    assert!(fns > 200, "suspiciously few parsed functions: {fns}");
    // The concurrency rules also need struct bodies (field access
    // matrix) and fn parameter lists (thread-role reachability).
    let structs: usize = files.iter().map(|f| f.ast.structs.len()).sum();
    assert!(structs > 20, "suspiciously few parsed structs: {structs}");
    assert!(
        files
            .iter()
            .flat_map(|f| &f.ast.fns)
            .any(|d| !d.params.is_empty()),
        "no parsed fn parameters"
    );
}

#[test]
fn full_rule_run_emits_no_parse_error_findings() {
    // Same gate, through the public pipeline: a clean tree must never
    // carry `parse-error` findings (which would mean the flow rules
    // silently skipped a file while the run still looked green under an
    // allowlist).
    let report =
        run(workspace_root(), &Config::cedar(), &Allowlist::empty()).expect("workspace analysis");
    let parse_errors: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "parse-error")
        .collect();
    assert!(parse_errors.is_empty(), "{parse_errors:#?}");
}
