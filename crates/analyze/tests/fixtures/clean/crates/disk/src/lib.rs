#![deny(unsafe_code)]
pub const SECTOR_BYTES: usize = 512;
