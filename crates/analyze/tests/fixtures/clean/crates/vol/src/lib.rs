#![deny(unsafe_code)]
use cedar_disk::SECTOR_BYTES;

pub fn pad(n: usize) -> usize {
    n.div_ceil(SECTOR_BYTES) * SECTOR_BYTES
}

pub fn first(a: &Shared, b: &Shared) {
    let ga = a.lo.lock();
    let gb = b.hi.lock();
    drop(gb);
    drop(ga);
}

pub fn second(a: &Shared, b: &Shared) {
    let ga = a.lo.lock();
    let gb = b.hi.lock();
    drop(gb);
    drop(ga);
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_test_code_is_fine() {
        Some(1).unwrap();
    }
}
