use cedar_disk::SimDisk;

pub fn init(disk: &mut SimDisk, log_start: u32, buf: &[u8]) -> Result<(), DiskError> {
    disk.write(log_start, buf)
}
