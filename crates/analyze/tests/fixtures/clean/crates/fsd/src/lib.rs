#![deny(unsafe_code)]
pub mod log;
