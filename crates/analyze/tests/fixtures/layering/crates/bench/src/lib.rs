#![deny(unsafe_code)]

pub fn peek(disk: &mut SimDisk) {
    let _ = disk.read_labels(0, 1);
}
