#![deny(unsafe_code)]
use cedar_fsd::FsdVolume;

pub fn upward(_v: &FsdVolume) {}
