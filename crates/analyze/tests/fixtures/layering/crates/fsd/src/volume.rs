pub fn sneak(disk: &mut SimDisk, log_start: u32, buf: &[u8]) -> Result<(), DiskError> {
    disk.write(log_start, buf)
}
