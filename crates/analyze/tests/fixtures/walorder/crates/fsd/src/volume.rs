impl FsdVolume {
    /// Violation: a public op reaches a home-sector write with no
    /// `Log::append` dominating it.
    pub fn unprotected_op(&mut self) -> Result<()> {
        write_home_batch(&mut self.disk, self.policy, self.writes())?;
        Ok(())
    }

    /// Control: the append makes the same write WAL-protected.
    pub fn protected_op(&mut self) -> Result<()> {
        self.log.append(&mut self.disk, self.images())?;
        write_home_batch(&mut self.disk, self.policy, self.writes())?;
        Ok(())
    }
}
