/// Scavenge rebuild: writes recovered name-table homes with no log
/// append in sight. Legitimate — the log is the thing that was lost —
/// and exempted by `wal_exempt_files`, scoped to this file only.
pub fn rebuild_homes(disk: &mut SimDisk) -> Result<()> {
    write_home_batch(disk, policy, writes())
}
