impl FsdVolume {
    /// Violation: an unlogged home write through a non-exempt helper in
    /// this file. The scavenge exemption must not leak here.
    pub fn unprotected_op(&mut self) -> Result<()> {
        helper_write(&mut self.disk)?;
        Ok(())
    }

    /// Clean: the rebuild path lives in scavenge.rs, which is wal-exempt —
    /// a scavenge rewrites homes from leader pages before any log exists.
    pub fn op_via_scavenge(&mut self) -> Result<()> {
        rebuild_homes(&mut self.disk)?;
        Ok(())
    }

    /// Control: the append makes the same write WAL-protected.
    pub fn protected_op(&mut self) -> Result<()> {
        self.log.append(&mut self.disk, self.images())?;
        helper_write(&mut self.disk)?;
        Ok(())
    }
}

fn helper_write(disk: &mut SimDisk) -> Result<()> {
    write_home_batch(disk, policy, writes())
}
