pub trait FileSystem {
    fn open(&self, name: &str) -> Result<u32, FsError>;
    fn create(&mut self, name: &str, bytes: &[u8]) -> Result<u32, FsError>;
}

pub trait FsBackend {
    fn create(&mut self, name: &str, bytes: &[u8]) -> Result<u32, FsError>;
}
