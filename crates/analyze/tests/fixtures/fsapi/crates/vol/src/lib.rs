#![deny(unsafe_code)]
pub mod fs;
