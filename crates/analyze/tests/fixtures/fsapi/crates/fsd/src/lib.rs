#![deny(unsafe_code)]
pub mod engine;
