impl Engine {
    pub fn publish(&self) -> Result<(), FsdError> {
        let g = plock(&self.stats);
        self.vol.force()?;
        g.bump();
        Ok(())
    }

    pub fn wait_for_work(&self) -> u64 {
        let mut sig = plock(&self.signal);
        while sig.epoch == 0 {
            sig = self.wake.wait(sig);
        }
        sig.epoch
    }

    pub fn submit(&self) -> Result<(), FsdError> {
        {
            let mut q = plock(&self.queue);
            q.push(1);
        }
        self.slot.wait();
        Ok(())
    }
}
