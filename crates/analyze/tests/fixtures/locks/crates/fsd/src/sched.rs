pub fn settle(v: &mut Vol) {
    let g = v.mu.lock();
    v.disk.write_meta();
    drop(g);
}
