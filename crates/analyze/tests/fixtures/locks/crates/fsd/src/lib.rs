#![deny(unsafe_code)]
pub fn forward(s: &Shared) { let a = s.alpha.lock(); let b = s.beta.lock(); drop(b); drop(a); }
pub fn reverse(s: &Shared) { let b = s.beta.lock(); let a = s.alpha.lock(); drop(a); drop(b); }
