#![deny(unsafe_code)]

pub fn documented(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` points at a live byte.
    unsafe { *p }
}
