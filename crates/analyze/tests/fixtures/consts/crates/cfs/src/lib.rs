#![deny(unsafe_code)]

pub fn sectors(bytes: usize) -> usize {
    bytes.div_ceil(512)
}
