// `reverse` takes the same two locks as `lib.rs::forward` in the
// opposite order — a cross-file acquisition-order cycle. `drain` holds a
// guard while calling `settle`, which blocks on `force()` one call deep.
pub fn reverse(s: &Shared) { let b = s.beta.lock(); let a = s.alpha.lock(); drop(a); drop(b); }

pub fn settle(v: &Vol) {
    v.disk.force();
}

pub fn drain(s: &Shared, v: &Vol) {
    let g = plock(&s.signal);
    settle(v);
    drop(g);
}
