pub struct Slot {
    state: Mutex<u32>,
    cv: Condvar,
}

impl Slot {
    // Violation: the wait is not inside a predicate-rechecking loop.
    pub fn bad_wait(&self) -> u32 {
        let g = plock(&self.state);
        let g = match self.cv.wait(g) { Ok(x) => x, Err(p) => p.into_inner() };
        *g
    }

    // Control: same hand-off, predicate retested around the wait.
    pub fn good_wait(&self) -> u32 {
        let mut g = plock(&self.state);
        loop {
            if *g != 0 { return *g; }
            g = match self.cv.wait(g) { Ok(x) => x, Err(p) => p.into_inner() };
        }
    }

    // Violation: the epoch store publishing the state is Relaxed, so the
    // write under the mutex may not be visible to an Acquire reader.
    pub fn publish(&self, e: u64) {
        let mut g = plock(&self.state);
        *g = 1;
        drop(g);
        self.epoch.store(e, Ordering::Relaxed);
        self.cv.notify_all();
    }
}
