#![deny(unsafe_code)]
pub fn forward(s: &Shared) { let a = s.alpha.lock(); let b = s.beta.lock(); drop(b); drop(a); }
pub mod engine;
pub mod sched;
