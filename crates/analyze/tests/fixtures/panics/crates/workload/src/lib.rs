#![deny(unsafe_code)]

pub fn uncovered(x: Option<u32>) -> u32 {
    x.unwrap()
}
