#![deny(unsafe_code)]

pub fn risky(x: Option<u32>) -> u32 {
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        assert_eq!(super::risky(Some(2)), 2);
        Some(2).unwrap();
    }
}
