//! Decode-coverage fixture: `LogMeta.oldest_offset` is decoded from disk
//! but never range-checked anywhere in the crate (red), while every
//! `PageTarget` field is covered by its validator (green).

pub struct FsdLayout {
    pub nt_pages: u32,
}

pub struct LogMeta {
    pub oldest_offset: u32,
}

pub enum PageTarget {
    NtSector { page: u32, sector: u32 },
    Leader { addr: u32 },
    VamSector { index: u32 },
}

impl PageTarget {
    pub fn validate(&self, nt_pages: u32, total: u32) -> Result<(), String> {
        let ok = match self {
            Self::NtSector { page, sector } => *page < nt_pages && *sector < nt_pages,
            Self::Leader { addr } => *addr < total,
            Self::VamSector { index } => *index < total,
        };
        if ok {
            Ok(())
        } else {
            Err("log record targets an impossible sector".into())
        }
    }
}
