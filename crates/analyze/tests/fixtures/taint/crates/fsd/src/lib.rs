#![deny(unsafe_code)]
pub mod log;
pub mod recovery;
