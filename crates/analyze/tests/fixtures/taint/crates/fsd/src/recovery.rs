//! Taint fixture: one raw decode steering a layout sink (red), one raw
//! decode reaching unchecked arithmetic (red), and a sanitizer-dominated
//! control flow that must stay quiet (green).

use crate::log::FsdLayout;

pub fn tainted_index(layout: &FsdLayout, buf: &[u8]) {
    let header = decode_header(buf);
    layout.nt_a_sector(header.page, 0);
}

pub fn tainted_arith(buf: &[u8]) {
    let meta = decode_header(buf);
    let pos = meta.offset;
    advance(pos + 5);
}

pub fn sanitized_ok(layout: &FsdLayout, buf: &[u8]) {
    let header = decode_header(buf);
    if header.page >= layout.nt_pages {
        return;
    }
    layout.nt_a_sector(header.page, 0);
}
