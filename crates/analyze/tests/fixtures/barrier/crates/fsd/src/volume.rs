impl FsdVolume {
    /// Violation: a raw write on a configured commit path bypasses the
    /// scheduler's barriers and C-SCAN ordering.
    fn sync_home_all(&mut self) -> Result<()> {
        self.disk.write(self.home_addr, &self.image)?;
        Ok(())
    }
}
