impl Log {
    /// Violation: the batch executes with no barrier before the commit
    /// record, so both windows can reorder into one.
    pub fn append(&mut self, disk: &mut SimDisk) -> Result<()> {
        let mut batch = IoBatch::new();
        batch.push(IoOp::Write {
            start: self.head,
            data: self.page(),
        });
        sched::execute(disk, self.policy, &batch)?;
        Ok(())
    }

    /// Control: replica A is barriered ahead of replica B.
    pub fn write_meta(&mut self, disk: &mut SimDisk) -> Result<()> {
        let mut batch = IoBatch::new();
        batch.push(IoOp::Write {
            start: self.meta_a,
            data: self.meta(),
        });
        batch.barrier();
        batch.push(IoOp::Write {
            start: self.meta_b,
            data: self.meta(),
        });
        sched::execute(disk, self.policy, &batch)?;
        Ok(())
    }
}
