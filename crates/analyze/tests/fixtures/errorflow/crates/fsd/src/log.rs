impl Log {
    /// Violation: the write error disappears into `.ok()`.
    pub fn force(&mut self, disk: &mut SimDisk) {
        disk.write(self.head, &self.buf).ok();
    }

    /// Violation: the catch-all arm swallows every future DiskError
    /// variant.
    pub fn classify(e: DiskError) -> u8 {
        match e {
            DiskError::Crashed => 1,
            _ => 0,
        }
    }

    /// Control: errors propagate.
    pub fn good(&mut self, disk: &mut SimDisk) -> Result<(), DiskError> {
        disk.write(self.head, &self.buf)
    }
}
