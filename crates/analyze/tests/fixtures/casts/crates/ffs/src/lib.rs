#![deny(unsafe_code)]
use cedar_disk::SECTOR_BYTES;

pub fn count(v: &[u8]) -> u16 {
    v.len() as u16
}

pub fn sb() -> u32 {
    SECTOR_BYTES as u32
}
