//! Bad-sector sparing and scrub-on-write.
//!
//! §5.8 of the paper classifies the errors Cedar volumes actually saw;
//! classes 2–5 all start from a bad sector in a file-system data
//! structure. The FSD's answer here has two levels:
//!
//! * **scrub**: a sector that fails once is assumed to be a latent media
//!   flaw — rewriting it repairs it (the Trident soft-error model). Every
//!   writer below retries failed sectors by rewriting them.
//! * **remap**: a sector that fails *again* after a rewrite is a grown
//!   (permanent) defect. It is remapped to a replacement sector in the
//!   spare region, and the `(logical, physical)` pair is recorded in the
//!   [`SpareMap`]. The table is persisted on the boot page
//!   ([`crate::layout::FsdBootPage::spare_map`]) so it is available
//!   before any other structure is read at boot.
//!
//! All metadata I/O translates logical addresses through the map. File
//! data sectors are *not* remapped — a dead data sector loses that page,
//! which the paper accepts (class 5) — and neither are the boot pages
//! themselves, which rely on replication instead (the map must be
//! readable before it can be applied).

use std::collections::HashMap;

use cedar_disk::sched::{self, IoBatch, IoOp, IoPolicy, OpResult};
use cedar_disk::{DiskError, SectorAddr, SimDisk, SECTOR_BYTES};

use crate::layout::FsdLayout;
use crate::{FsdError, Result};

/// Failures tolerated per logical sector before it is remapped: the
/// first may be a latent flaw the rewrite repairs, the second is a
/// grown defect.
const FAILS_BEFORE_REMAP: u8 = 2;

/// Rounds the retry engine will run before declaring the media
/// unrecoverable. Each round either finishes, repairs a latent flaw, or
/// consumes a spare slot, so this bound is far past any plausible plan.
pub(crate) const MAX_ROUNDS: usize = 64;

/// Maps one pushed write back to the logical sectors it covers, so a
/// per-sector failure can be attributed (`idx` is the op's index in the
/// batch; the op spans `len` sectors from `logical`, written at `phys`).
#[derive(Clone, Copy, Debug)]
pub struct OpTag {
    idx: usize,
    logical: SectorAddr,
    phys: SectorAddr,
    len: u32,
}

/// The bad-sector remap table plus the per-sector failure ledger that
/// decides when to grow it.
#[derive(Clone, Debug, Default)]
pub struct SpareMap {
    spare_start: SectorAddr,
    spare_len: u32,
    /// Half-open `[lo, hi)` address ranges eligible for remapping.
    remappable: Vec<(SectorAddr, SectorAddr)>,
    /// `(logical, physical)` redirections, unordered, at most one per
    /// logical sector.
    entries: Vec<(SectorAddr, SectorAddr)>,
    /// Spare slots consumed so far (slots are never reused: a re-remap
    /// whose spare sector also died takes a fresh one).
    slots_used: u32,
    /// The table changed since it was last written to the boot page.
    dirty: bool,
    /// Consecutive failures per logical sector, cleared by a successful
    /// rewrite.
    fails: HashMap<SectorAddr, u8>,
    /// Damaged sectors repaired in place by a rewrite.
    pub scrubbed: u64,
    /// Sectors redirected into the spare region.
    pub remapped: u64,
}

impl SpareMap {
    /// A map with sparing disabled: nothing is remappable and no spare
    /// slots exist. Translation is the identity; a second failure on any
    /// sector is fatal. For tests and tools that bypass the FSD layout.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A map with an explicit spare region and remappable ranges
    /// (half-open `[lo, hi)`).
    pub fn new(
        spare_start: SectorAddr,
        spare_len: u32,
        remappable: Vec<(SectorAddr, SectorAddr)>,
    ) -> Self {
        Self {
            spare_start,
            spare_len,
            remappable,
            ..Self::default()
        }
    }

    /// An empty map for a freshly formatted volume on `layout`: the VAM
    /// save area and the central metadata region (both name-table copies
    /// and the log) are remappable; boot pages and file data are not.
    pub fn for_layout(layout: &FsdLayout) -> Self {
        Self::new(
            layout.spare_start,
            layout.spare_sectors,
            vec![
                (layout.vam_a, layout.spare_start),
                (layout.nt_a_start, layout.central_end),
            ],
        )
    }

    /// Rebuilds the map recorded on a boot page. The boot page is disk
    /// input: an entry whose logical sector is outside the remappable
    /// ranges or whose physical sector is outside the spare region would
    /// silently redirect reads anywhere on the volume, so such entries
    /// are dropped (the cost is re-reading a sector that then fails and
    /// is remapped afresh — the same path as a lost boot page).
    pub fn with_entries(layout: &FsdLayout, entries: &[(u32, u32)]) -> Self {
        let mut map = Self::for_layout(layout);
        let spare_end = layout.spare_start + layout.spare_sectors;
        map.entries = entries
            .iter()
            .filter(|&&(logical, phys)| {
                map.remappable
                    .iter()
                    .any(|&(lo, hi)| logical >= lo && logical < hi)
                    && phys >= layout.spare_start
                    && phys < spare_end
            })
            .copied()
            .collect();
        map.slots_used = map
            .entries
            .iter()
            .map(|&(_, phys)| phys.saturating_sub(layout.spare_start) + 1)
            .max()
            .unwrap_or(0);
        map
    }

    /// The physical sector behind `logical`.
    pub fn translate(&self, logical: SectorAddr) -> SectorAddr {
        self.entries
            .iter()
            .find(|&&(l, _)| l == logical)
            .map_or(logical, |&(_, p)| p)
    }

    /// Current remap table, for persisting onto the boot page.
    pub fn entries(&self) -> &[(SectorAddr, SectorAddr)] {
        &self.entries
    }

    /// Returns whether the table changed since the last call, clearing
    /// the flag. The caller must rewrite the boot page when `true`.
    pub fn take_dirty(&mut self) -> bool {
        std::mem::take(&mut self.dirty)
    }

    /// Records that a read found `logical` damaged, so the upcoming
    /// scrub rewrite is charged as a repair — and escalates to a remap
    /// if the rewrite fails too.
    pub fn note_damaged(&mut self, logical: SectorAddr) {
        self.fails.entry(logical).or_insert(FAILS_BEFORE_REMAP - 1);
    }

    /// Pushes the write of `data` at logical sector `logical_start` onto
    /// `batch`, split wherever the remap table makes the physical run
    /// discontiguous. Returns one tag per pushed op for [`Self::absorb`].
    pub fn push_write(
        &self,
        batch: &mut IoBatch,
        logical_start: SectorAddr,
        data: &[u8],
    ) -> Vec<OpTag> {
        assert_eq!(data.len() % SECTOR_BYTES, 0, "partial-sector write");
        let total = (data.len() / SECTOR_BYTES) as u32;
        let mut tags = Vec::new();
        let mut i = 0u32;
        while i < total {
            let phys = self.translate(logical_start + i);
            let mut len = 1u32;
            while i + len < total && self.translate(logical_start + i + len) == phys + len {
                len += 1;
            }
            let bytes =
                data[(i as usize) * SECTOR_BYTES..((i + len) as usize) * SECTOR_BYTES].to_vec();
            let idx = batch.push(IoOp::Write {
                start: phys,
                data: bytes,
            });
            tags.push(OpTag {
                idx,
                logical: logical_start + i,
                phys,
                len,
            });
            i += len;
        }
        tags
    }

    /// Folds one round of [`sched::execute_partial`] results into the
    /// ledger: successful writes clear (and count) any pending damage,
    /// `BadSector` failures charge the named sector and remap it once it
    /// exhausts its strikes. Returns `true` if any op must be retried.
    pub fn absorb(&mut self, results: &[OpResult], tags: &[OpTag]) -> Result<bool> {
        let mut retry = false;
        for t in tags {
            match &results[t.idx] {
                OpResult::Ok(_) => {
                    for s in 0..t.len {
                        if self.fails.remove(&(t.logical + s)).is_some() {
                            self.scrubbed += 1;
                        }
                    }
                }
                OpResult::Failed(DiskError::BadSector(phys)) => {
                    retry = true;
                    let logical = t.logical + (phys - t.phys);
                    let n = self.fails.entry(logical).or_insert(0);
                    *n = n.saturating_add(1);
                    if *n >= FAILS_BEFORE_REMAP {
                        self.remap(logical)?;
                    }
                }
                OpResult::Failed(e) => return Err(e.clone().into()),
                OpResult::Skipped => retry = true,
            }
        }
        Ok(retry)
    }

    /// Redirects `logical` to a fresh spare slot.
    fn remap(&mut self, logical: SectorAddr) -> Result<()> {
        if !self
            .remappable
            .iter()
            .any(|&(lo, hi)| (lo..hi).contains(&logical))
        {
            return Err(FsdError::Check(format!(
                "sector {logical} is permanently bad and not remappable"
            )));
        }
        if self.slots_used >= self.spare_len {
            return Err(FsdError::Check(format!(
                "spare region exhausted remapping sector {logical}"
            )));
        }
        let phys = self.spare_start + self.slots_used;
        self.slots_used += 1;
        match self.entries.iter_mut().find(|(l, _)| *l == logical) {
            Some(e) => e.1 = phys,
            None => self.entries.push((logical, phys)),
        }
        // The sector restarts with a clean record at its new home, so a
        // latent flaw in the spare sector gets its own rewrite chance.
        self.fails.remove(&logical);
        self.dirty = true;
        self.remapped += 1;
        Ok(())
    }

    /// [`SimDisk::read_allow_damage`] through the remap table: reads `n`
    /// logical sectors from `start`, splitting wherever the physical run
    /// is discontiguous, and reassembles data and damage mask in logical
    /// order.
    pub fn read_allow_damage(
        &self,
        disk: &mut SimDisk,
        start: SectorAddr,
        n: usize,
    ) -> cedar_disk::Result<(Vec<u8>, Vec<bool>)> {
        if self.entries.is_empty() {
            return disk.read_allow_damage(start, n);
        }
        let mut data = Vec::with_capacity(n * SECTOR_BYTES);
        let mut mask = Vec::with_capacity(n);
        let total = n as u32;
        let mut i = 0u32;
        while i < total {
            let phys = self.translate(start + i);
            let mut len = 1u32;
            while i + len < total && self.translate(start + i + len) == phys + len {
                len += 1;
            }
            let (d, m) = disk.read_allow_damage(phys, len as usize)?;
            data.extend_from_slice(&d);
            mask.extend_from_slice(&m);
            i += len;
        }
        Ok((data, mask))
    }
}

/// Writes home-location images (name-table pages, leader pages, VAM
/// save patches) after their log record is durable, translating through
/// the remap table and retrying per-sector failures: a first failure is
/// rewritten in place (latent-flaw repair), a second is remapped to the
/// spare region. Whole-image rewrites are idempotent — every sector is
/// exclusively owned by its page — so each round resubmits everything
/// not yet durable.
pub(crate) fn write_home_batch(
    disk: &mut SimDisk,
    policy: IoPolicy,
    spare: &mut SpareMap,
    writes: Vec<(SectorAddr, Vec<u8>)>,
) -> Result<()> {
    run_spared_writes(disk, policy, spare, &writes)
}

/// Read-path repair: rewrites replica sectors that a read found damaged
/// from the survivor copy's bytes. Deliberately a different entry point
/// from [`write_home_batch`]: scrubs restore *existing* committed state,
/// so they are legal before a log append (the wal-order rule keys on the
/// `write_home_batch` name for writes that must follow one).
pub(crate) fn scrub_batch(
    disk: &mut SimDisk,
    policy: IoPolicy,
    spare: &mut SpareMap,
    writes: Vec<(SectorAddr, Vec<u8>)>,
) -> Result<()> {
    run_spared_writes(disk, policy, spare, &writes)
}

fn run_spared_writes(
    disk: &mut SimDisk,
    policy: IoPolicy,
    spare: &mut SpareMap,
    writes: &[(SectorAddr, Vec<u8>)],
) -> Result<()> {
    for _ in 0..MAX_ROUNDS {
        let mut batch = IoBatch::new();
        let mut tags = Vec::new();
        for (start, data) in writes {
            tags.append(&mut spare.push_write(&mut batch, *start, data));
        }
        if batch.is_empty() {
            return Ok(());
        }
        let results = sched::execute_partial(disk, policy, &batch)?;
        if !spare.absorb(&results, &tags)? {
            return Ok(());
        }
    }
    Err(FsdError::Check(
        "media-fault retry limit exceeded on home write".into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_disk::{DiskGeometry, DiskTiming, FaultPlan, SimClock};

    fn layout() -> FsdLayout {
        FsdLayout::compute(&DiskGeometry::TINY, 16, 128)
    }

    fn disk() -> SimDisk {
        SimDisk::new(DiskGeometry::TINY, DiskTiming::TINY, SimClock::new())
    }

    #[test]
    fn translate_is_identity_until_remapped() {
        let l = layout();
        let map = SpareMap::for_layout(&l);
        assert_eq!(map.translate(l.nt_a_start), l.nt_a_start);
        let map = SpareMap::with_entries(&l, &[(l.nt_a_start, l.spare_start)]);
        assert_eq!(map.translate(l.nt_a_start), l.spare_start);
        assert_eq!(map.translate(l.nt_a_start + 1), l.nt_a_start + 1);
    }

    #[test]
    fn with_entries_reserves_used_slots() {
        let l = layout();
        let map = SpareMap::with_entries(&l, &[(l.nt_a_start, l.spare_start + 3)]);
        assert_eq!(map.slots_used, 4);
    }

    #[test]
    fn latent_flaw_is_scrubbed_in_place() {
        let l = layout();
        let mut d = disk();
        let mut map = SpareMap::for_layout(&l);
        d.set_fault_plan(&FaultPlan::none().with_latent(l.nt_a_start + 1));
        let data = vec![7u8; 2 * SECTOR_BYTES];
        write_home_batch(
            &mut d,
            IoPolicy::InOrder,
            &mut map,
            vec![(l.nt_a_start, data)],
        )
        .unwrap();
        assert_eq!(map.scrubbed, 1);
        assert_eq!(map.remapped, 0);
        assert!(map.entries().is_empty());
        assert_eq!(
            d.read(l.nt_a_start, 2).unwrap(),
            vec![7u8; 2 * SECTOR_BYTES]
        );
    }

    #[test]
    fn grown_defect_is_remapped_to_spare() {
        let l = layout();
        let mut d = disk();
        let mut map = SpareMap::for_layout(&l);
        let bad = l.nt_a_start + 1;
        d.set_fault_plan(&FaultPlan::none().with_grown(bad));
        let data: Vec<u8> = (0..2 * SECTOR_BYTES).map(|i| i as u8).collect();
        write_home_batch(
            &mut d,
            IoPolicy::InOrder,
            &mut map,
            vec![(l.nt_a_start, data.clone())],
        )
        .unwrap();
        assert_eq!(map.remapped, 1);
        assert_eq!(map.entries(), &[(bad, l.spare_start)]);
        assert!(map.take_dirty());
        assert!(!map.take_dirty());
        // The image reads back whole through the map.
        let (got, mask) = map.read_allow_damage(&mut d, l.nt_a_start, 2).unwrap();
        assert_eq!(got, data);
        assert_eq!(mask, vec![false, false]);
    }

    #[test]
    fn unremappable_grown_defect_is_an_error() {
        let l = layout();
        let mut d = disk();
        let mut map = SpareMap::for_layout(&l);
        // A data sector in the big-file area: outside every remappable range.
        let bad = l.central_end + 5;
        d.set_fault_plan(&FaultPlan::none().with_grown(bad));
        let err = write_home_batch(
            &mut d,
            IoPolicy::InOrder,
            &mut map,
            vec![(bad, vec![1u8; SECTOR_BYTES])],
        )
        .unwrap_err();
        assert!(matches!(err, FsdError::Check(_)), "got {err:?}");
    }

    #[test]
    fn note_damaged_escalates_failed_scrub_to_remap() {
        let l = layout();
        let mut d = disk();
        let mut map = SpareMap::for_layout(&l);
        let bad = l.nt_b_start;
        d.set_fault_plan(&FaultPlan::none().with_grown(bad));
        // A read found the sector damaged; the scrub write then fails once
        // and the sector goes straight to the spare region.
        map.note_damaged(bad);
        scrub_batch(
            &mut d,
            IoPolicy::InOrder,
            &mut map,
            vec![(bad, vec![9u8; SECTOR_BYTES])],
        )
        .unwrap();
        assert_eq!(map.remapped, 1);
        assert_eq!(map.translate(bad), l.spare_start);
    }

    #[test]
    fn note_damaged_counts_successful_scrub() {
        let l = layout();
        let mut d = disk();
        let mut map = SpareMap::for_layout(&l);
        map.note_damaged(l.nt_a_start);
        scrub_batch(
            &mut d,
            IoPolicy::InOrder,
            &mut map,
            vec![(l.nt_a_start, vec![3u8; SECTOR_BYTES])],
        )
        .unwrap();
        assert_eq!(map.scrubbed, 1);
        assert_eq!(map.remapped, 0);
    }

    #[test]
    fn spare_exhaustion_is_an_error() {
        let l = layout();
        let mut d = disk();
        let mut map = SpareMap::for_layout(&l);
        map.spare_len = 1;
        d.set_fault_plan(
            &FaultPlan::none()
                .with_grown(l.nt_a_start)
                .with_grown(l.nt_a_start + 1),
        );
        let err = write_home_batch(
            &mut d,
            IoPolicy::InOrder,
            &mut map,
            vec![(l.nt_a_start, vec![0u8; 2 * SECTOR_BYTES])],
        )
        .unwrap_err();
        assert!(matches!(err, FsdError::Check(_)), "got {err:?}");
    }

    #[test]
    fn push_write_splits_on_translation_boundaries() {
        let l = layout();
        let map = SpareMap::with_entries(&l, &[(l.nt_a_start + 1, l.spare_start)]);
        let mut batch = IoBatch::new();
        let tags = map.push_write(&mut batch, l.nt_a_start, &vec![0u8; 3 * SECTOR_BYTES]);
        // [a], [spare], [a+2]: three discontiguous physical runs.
        assert_eq!(tags.len(), 3);
        assert_eq!(batch.len(), 3);
    }
}
