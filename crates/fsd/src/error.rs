//! FSD error type.

use cedar_btree::BTreeError;
use cedar_disk::DiskError;
use cedar_vol::AllocError;
use std::fmt;

/// Errors from FSD operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsdError {
    /// Underlying disk failure.
    Disk(DiskError),
    /// A structural inconsistency the software checks caught (leader
    /// mismatch, bad page decode, failed invariant).
    Check(String),
    /// No such file.
    NotFound(String),
    /// The volume is out of space.
    NoSpace,
    /// Invalid file name.
    BadName(String),
    /// Page number beyond the end of the file.
    OutOfRange {
        /// Requested logical page.
        page: u32,
        /// File length in pages.
        pages: u32,
    },
    /// The operation target is the wrong kind of entry (e.g. reading a
    /// symbolic link as a file).
    WrongKind(&'static str),
}

impl FsdError {
    /// Returns `true` if the error is the machine crashing.
    pub fn is_crash(&self) -> bool {
        matches!(self, Self::Disk(DiskError::Crashed))
    }
}

impl fmt::Display for FsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Disk(e) => write!(f, "disk: {e}"),
            Self::Check(m) => write!(f, "consistency check failed: {m}"),
            Self::NotFound(n) => write!(f, "file not found: {n}"),
            Self::NoSpace => write!(f, "volume full"),
            Self::BadName(m) => write!(f, "bad file name: {m}"),
            Self::OutOfRange { page, pages } => {
                write!(f, "page {page} out of range (file has {pages})")
            }
            Self::WrongKind(k) => write!(f, "wrong entry kind: expected {k}"),
        }
    }
}

impl std::error::Error for FsdError {}

impl From<DiskError> for FsdError {
    fn from(e: DiskError) -> Self {
        Self::Disk(e)
    }
}

impl From<BTreeError> for FsdError {
    fn from(e: BTreeError) -> Self {
        match e {
            BTreeError::Store(cedar_btree::StoreError::Crashed) => Self::Disk(DiskError::Crashed),
            BTreeError::Store(cedar_btree::StoreError::Full) => Self::NoSpace,
            BTreeError::Store(s) => Self::Check(format!("name table store: {s}")),
            BTreeError::Corrupt(m) => Self::Check(m),
            BTreeError::EntryTooLarge { size, max } => {
                Self::BadName(format!("entry too large: {size} > {max}"))
            }
        }
    }
}

impl From<cedar_btree::StoreError> for FsdError {
    fn from(e: cedar_btree::StoreError) -> Self {
        Self::from(BTreeError::Store(e))
    }
}

impl From<AllocError> for FsdError {
    fn from(_: AllocError) -> Self {
        Self::NoSpace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_detection() {
        assert!(FsdError::from(DiskError::Crashed).is_crash());
        assert!(!FsdError::NoSpace.is_crash());
    }

    #[test]
    fn btree_full_maps_to_no_space() {
        assert_eq!(
            FsdError::from(BTreeError::Store(cedar_btree::StoreError::Full)),
            FsdError::NoSpace
        );
    }
}
