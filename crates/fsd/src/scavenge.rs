//! The scavenger: last-rung recovery from leader pages alone.
//!
//! CFS "depended on the label check to catch errors" and could rebuild
//! its metadata from the per-sector hardware labels — at the cost of an
//! hour-long scan (§2, Table 2). FSD dropped the labels, so when *both*
//! the log and its replicated anchors are beyond repair there is nothing
//! for redo recovery to work with. The extended leader pages
//! ([`crate::leader`]) restore the CFS property in software: each one
//! carries the file's name key and full name-table entry under a
//! checksum, so a sweep of the data areas can rebuild the name table and
//! the free map from scratch.
//!
//! The scavenger is deliberately conservative:
//!
//! * a sector only counts as a leader if it decodes, its payload
//!   checksum holds, its embedded entry points back at the sector it was
//!   read from, and every run lies inside the data areas;
//! * delete tombstones are honoured — a deleted file whose tombstone
//!   reached the disk is not resurrected;
//! * when two leaders claim the same name or the same sectors, the
//!   higher uid (the later write) wins and the loss is reported;
//! * everything it cannot prove is reported in [`ScavengeSummary`], not
//!   silently dropped.
//!
//! Known, reported losses: symbolic links (no leader page), entries
//! whose leader home write had not happened by the crash (recovered at
//! their previous state), and files whose leader sector itself died.

use crate::cache::{FsdNtStore, NtCache, NtMeta};
use crate::entry::FileEntry;
use crate::layout::{FsdBootPage, FsdLayout};
use crate::leader::LeaderPage;
use crate::log::Log;
use crate::recovery::{RecoveryReport, RecoveryRung};
use crate::spare::SpareMap;
use crate::volume::{FsdConfig, FsdVolume, MAX_RUNS};
use crate::{FsdError, Result};
use cedar_btree::BTree;
use cedar_disk::{Cpu, DiskError, SectorAddr, SimDisk, SECTOR_BYTES};
use cedar_vol::{AllocPolicy, Allocator, FileName, Run, Vam};
use std::collections::{BTreeSet, HashMap, HashSet};

/// What a scavenge found, rebuilt, and lost.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScavengeSummary {
    /// The redo-recovery error that forced the escalation.
    pub cause: String,
    /// Valid leader pages found in the data areas (live + tombstones).
    pub leaders_found: u64,
    /// Live files rebuilt into the fresh name table.
    pub files_rebuilt: u64,
    /// Delete tombstones honoured (files *not* resurrected).
    pub tombstones: u64,
    /// Data-area sectors that could not be read at all.
    pub unreadable_sectors: u64,
    /// Files dropped, with the reason (stale duplicate, overlapping
    /// claims, undecodable payload).
    pub losses: Vec<String>,
}

/// Rung 3 of recovery: rebuilds the volume from leader pages after
/// `cause` stopped the redo path. Consumes the disk like
/// [`FsdVolume::try_boot`] and extends its `report`.
#[allow(clippy::result_large_err)]
pub(crate) fn scavenge_boot(
    mut disk: SimDisk,
    config: FsdConfig,
    mut report: RecoveryReport,
    cause: FsdError,
) -> std::result::Result<(FsdVolume, RecoveryReport), (FsdError, SimDisk)> {
    let t0 = disk.clock().now();
    let layout = FsdLayout::compute(disk.geometry(), config.nt_pages, config.log_sectors);
    let cpu = Cpu::new(disk.clock(), config.cpu);

    // Best-effort boot-page read: the old boot count (so new uids stay
    // above every recovered one) and the remap table. Both have safe
    // fallbacks — uids also carry their epoch, and a lost remap table
    // only costs the remapped sectors, which the scan reports.
    let (old_boot_count, spare_entries) = match old_boot_hint(&mut disk, &layout) {
        Ok(x) => x,
        Err(e) => return Err((e, disk)),
    };
    let spare = SpareMap::with_entries(&layout, &spare_entries);

    let mut summary = ScavengeSummary {
        cause: cause.to_string(),
        ..Default::default()
    };
    let mut found: HashMap<Vec<u8>, LeaderPage> = HashMap::new();
    if let Err(e) = scan_leaders(&mut disk, &layout, &mut summary, &mut found) {
        return Err((e, disk));
    }

    // Dedup overlapping claims, newest (highest uid) first, honouring
    // tombstones; collect the files to rebuild and the epoch floor.
    let mut kept: Vec<LeaderPage> = found.into_values().collect();
    kept.sort_by_key(|l| std::cmp::Reverse(l.uid));
    let mut max_epoch = 0u32;
    let mut claimed: HashSet<SectorAddr> = HashSet::new();
    let mut files: Vec<(FileName, FileEntry)> = Vec::new();
    for l in kept {
        max_epoch = max_epoch.max((l.uid >> 32) as u32);
        if l.deleted {
            summary.tombstones += 1;
            continue;
        }
        let (Ok(name), Ok(entry)) = (l.file_name(), l.entry()) else {
            summary
                .losses
                .push(format!("uid {}: undecodable leader payload", l.uid));
            continue;
        };
        let mut sectors: Vec<SectorAddr> = vec![entry.leader_addr];
        for r in entry.run_table.runs() {
            sectors.extend(r.start..r.end());
        }
        if sectors.iter().any(|s| claimed.contains(s)) {
            summary
                .losses
                .push(format!("{name}: sectors overlap a newer file"));
            continue;
        }
        claimed.extend(sectors);
        files.push((name, entry));
    }
    summary.files_rebuilt = files.len() as u64;
    let boot_count = old_boot_count.max(max_epoch) + 1;

    // Free map: everything in the data areas except what the recovered
    // files claim (the same §5.5 rule as a VAM rebuild).
    let mut vam = Vam::new_all_allocated(layout.total_sectors);
    vam.free_run(Run::new(
        layout.small_start,
        layout.nt_a_start - layout.small_start,
    ));
    vam.free_run(Run::new(
        layout.central_end,
        layout.total_sectors - layout.central_end,
    ));
    for (_, entry) in &files {
        vam.allocate_run(Run::new(entry.leader_addr, 1));
        for r in entry.run_table.runs() {
            vam.allocate_run(*r);
        }
    }

    // A fresh volume over the scavenged state — same skeleton as
    // `FsdVolume::format`, but with the recovered VAM and entries.
    let (dlo, dhi) = layout.data_area();
    let log = match Log::fresh(layout.log_start, layout.log_sectors, boot_count) {
        Ok(mut log) => {
            log.set_policy(config.io_policy);
            log
        }
        Err(e) => return Err((e, disk)),
    };
    let mut vol = FsdVolume {
        log,
        disk,
        cpu,
        layout,
        boot: FsdBootPage {
            boot_count,
            vam_valid: false,
            vam_logged: config.log_vam,
            spare_map: spare.entries().to_vec(),
        },
        tree: BTree::open(0),
        cache: NtCache::with_capacity(config.cache_pages),
        pending_pages: BTreeSet::new(),
        leaders: HashMap::new(),
        vam,
        alloc: Allocator::new(
            AllocPolicy::SplitAreas {
                small_threshold: config.small_threshold,
            },
            dlo,
            dhi,
        ),
        uid_counter: 0,
        last_force: 0,
        commit_interval: config.commit_interval_us,
        vam_hint_on_disk: false,
        commit_stats: Default::default(),
        vam_baseline: None,
        vam_home: HashMap::new(),
        io_policy: config.io_policy,
        spare,
    };
    vol.last_force = vol.clock().now();

    match rebuild(&mut vol, config, &files) {
        Ok(()) => {
            report.rung = RecoveryRung::Scavenge;
            report.scrubbed_sectors += vol.spare.scrubbed;
            report.remapped_sectors += vol.spare.remapped;
            report.scavenge_us = vol.clock().now() - t0;
            report.scavenge = Some(summary);
            Ok((vol, report))
        }
        Err(e) => Err((e, vol.into_disk())),
    }
}

/// Sweeps both data areas in track-sized chunks collecting provable
/// leader pages; duplicates by name key resolve to the higher uid.
fn scan_leaders(
    disk: &mut SimDisk,
    layout: &FsdLayout,
    summary: &mut ScavengeSummary,
    found: &mut HashMap<Vec<u8>, LeaderPage>,
) -> Result<()> {
    let chunk = disk.geometry().sectors_per_track.max(1);
    for (lo, hi) in [
        (layout.small_start, layout.nt_a_start),
        (layout.central_end, layout.total_sectors),
    ] {
        let mut at = lo;
        while at < hi {
            let n = chunk.min(hi - at);
            let (bytes, mask) = disk
                .read_allow_damage(at, n as usize)
                .map_err(FsdError::Disk)?;
            for i in 0..n as usize {
                if mask[i] {
                    summary.unreadable_sectors += 1;
                    continue;
                }
                let sector = &bytes[i * SECTOR_BYTES..(i + 1) * SECTOR_BYTES];
                let Ok(leader) = LeaderPage::decode(sector) else {
                    continue;
                };
                consider(layout, summary, found, at + i as u32, leader);
            }
            at += n;
        }
    }
    Ok(())
}

/// Admits a decoded leader if it proves it belongs at `addr`; resolves
/// name-key duplicates to the higher uid.
fn consider(
    layout: &FsdLayout,
    summary: &mut ScavengeSummary,
    found: &mut HashMap<Vec<u8>, LeaderPage>,
    addr: SectorAddr,
    leader: LeaderPage,
) {
    let Ok(entry) = leader.entry() else {
        return;
    };
    // A logged or copied leader image elsewhere on disk points at its
    // true home, not at the sector it was read from.
    if entry.leader_addr != addr || !runs_sane(layout, &entry) {
        return;
    }
    summary.leaders_found += 1;
    match found.entry(leader.name_key.clone()) {
        std::collections::hash_map::Entry::Occupied(mut o) => {
            let (winner, loser) = if leader.uid > o.get().uid {
                (Some(leader), o.get().clone())
            } else {
                (None, leader)
            };
            if !loser.deleted {
                summary.losses.push(format!(
                    "{}: stale duplicate uid {} superseded",
                    loser
                        .file_name()
                        .map_or_else(|_| "<unnamed>".to_string(), |n| n.to_string()),
                    loser.uid
                ));
            }
            if let Some(w) = winner {
                o.insert(w);
            }
        }
        std::collections::hash_map::Entry::Vacant(v) => {
            v.insert(leader);
        }
    }
}

/// A recovered entry is only trusted if every sector it claims lies in
/// the data areas.
fn runs_sane(layout: &FsdLayout, entry: &FileEntry) -> bool {
    let in_data = |start: SectorAddr, end: SectorAddr| {
        (start >= layout.small_start && end <= layout.nt_a_start)
            || (start >= layout.central_end && end <= layout.total_sectors)
    };
    entry.run_table.runs().len() <= MAX_RUNS
        && in_data(entry.leader_addr, entry.leader_addr + 1)
        && entry
            .run_table
            .runs()
            .iter()
            .all(|r| r.len > 0 && in_data(r.start, r.end()))
}

/// Writes the scavenged state out as a fresh, fully durable volume:
/// empty log, new name table holding the recovered entries, saved VAM.
fn rebuild(vol: &mut FsdVolume, config: FsdConfig, files: &[(FileName, FileEntry)]) -> Result<()> {
    {
        let FsdVolume {
            ref mut log,
            ref mut disk,
            ref mut spare,
            ..
        } = *vol;
        log.write_meta(disk, spare)?;
    }
    {
        let mut store = FsdNtStore {
            disk: &mut vol.disk,
            cpu: &vol.cpu,
            layout: &vol.layout,
            policy: vol.io_policy,
            spare: &mut vol.spare,
            cache: &mut vol.cache,
            pending: &mut vol.pending_pages,
        };
        use cedar_btree::PageStore;
        store.write_page(0, &NtMeta::new(vol.layout.nt_pages).encode())?;
        vol.tree = BTree::create(&mut store)?;
    }
    for (name, entry) in files {
        vol.put_entry(name, entry)?;
    }
    vol.force()?;
    vol.sync_home_all()?;
    vol.save_vam_and_mark_valid()?;
    if config.log_vam {
        vol.vam_baseline = Some(vol.padded_vam_bytes());
    }
    Ok(())
}

/// Best-effort read of the old boot pages for the boot count and the
/// remap table; either copy serves, neither is required.
fn old_boot_hint(
    disk: &mut SimDisk,
    layout: &FsdLayout,
) -> Result<(u32, Vec<(SectorAddr, SectorAddr)>)> {
    let mut count = 0u32;
    let mut entries: Vec<(SectorAddr, SectorAddr)> = Vec::new();
    for addr in [layout.boot_a, layout.boot_b] {
        match disk.read(addr, 1) {
            Ok(bytes) => {
                if let Ok(b) = FsdBootPage::decode(&bytes) {
                    if b.boot_count >= count {
                        count = b.boot_count;
                        entries = b.spare_map;
                    }
                }
            }
            Err(DiskError::Crashed) => return Err(FsdError::Disk(DiskError::Crashed)),
            Err(_) => continue,
        }
    }
    Ok((count, entries))
}
