//! The scavenger: last-rung recovery from leader pages alone.
//!
//! CFS "depended on the label check to catch errors" and could rebuild
//! its metadata from the per-sector hardware labels — at the cost of an
//! hour-long scan (§2, Table 2). FSD dropped the labels, so when *both*
//! the log and its replicated anchors are beyond repair there is nothing
//! for redo recovery to work with. The extended leader pages
//! ([`crate::leader`]) restore the CFS property in software: each one
//! carries the file's name key and full name-table entry under a
//! checksum, so a sweep of the data areas can rebuild the name table and
//! the free map from scratch.
//!
//! The scavenger is deliberately conservative:
//!
//! * a sector only counts as a leader if it decodes, its payload
//!   checksum holds, its embedded entry points back at the sector it was
//!   read from, and every run lies inside the data areas;
//! * delete tombstones are honoured — a deleted file whose tombstone
//!   reached the disk is not resurrected;
//! * when two leaders claim the same name or the same sectors, the
//!   higher uid (the later write) wins and the loss is reported;
//! * everything it cannot prove is reported in [`ScavengeSummary`], not
//!   silently dropped.
//!
//! Known, reported losses: symbolic links (no leader page), entries
//! whose leader home write had not happened by the crash (recovered at
//! their previous state), and files whose leader sector itself died.

use crate::cache::{FsdNtStore, NtCache, NtMeta};
use crate::entry::FileEntry;
use crate::layout::{FsdBootPage, FsdLayout};
use crate::leader::LeaderPage;
use crate::log::Log;
use crate::recovery::{RecoveryReport, RecoveryRung};
use crate::spare::SpareMap;
use crate::volume::{FsdConfig, FsdVolume, MAX_RUNS};
use crate::{FsdError, Result};
use cedar_btree::BTree;
use cedar_disk::scan::{self, ScanChannel, ScanChunk};
use cedar_disk::sched::IoPolicy;
use cedar_disk::{Cpu, DiskError, SectorAddr, SimDisk, SECTOR_BYTES};
use cedar_vol::{AllocPolicy, Allocator, FileName, Run, Vam};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// What a scavenge found, rebuilt, and lost.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScavengeSummary {
    /// The redo-recovery error that forced the escalation.
    pub cause: String,
    /// Valid leader pages found in the data areas (live + tombstones).
    pub leaders_found: u64,
    /// Live files rebuilt into the fresh name table.
    pub files_rebuilt: u64,
    /// Delete tombstones honoured (files *not* resurrected).
    pub tombstones: u64,
    /// Data-area sectors that could not be read at all.
    pub unreadable_sectors: u64,
    /// Files dropped, with the reason (stale duplicate, overlapping
    /// claims, undecodable payload).
    pub losses: Vec<String>,
}

/// Rung 3 of recovery: rebuilds the volume from leader pages after
/// `cause` stopped the redo path. Consumes the disk like
/// [`FsdVolume::try_boot`] and extends its `report`.
#[allow(clippy::result_large_err)]
pub(crate) fn scavenge_boot(
    mut disk: SimDisk,
    config: FsdConfig,
    mut report: RecoveryReport,
    cause: FsdError,
) -> std::result::Result<(FsdVolume, RecoveryReport), (FsdError, SimDisk)> {
    let t0 = disk.clock().now();
    let layout = FsdLayout::compute(disk.geometry(), config.nt_pages, config.log_sectors);
    let cpu = Cpu::new(disk.clock(), config.cpu);

    // Best-effort boot-page read: the old boot count (so new uids stay
    // above every recovered one) and the remap table. Both have safe
    // fallbacks — uids also carry their epoch, and a lost remap table
    // only costs the remapped sectors, which the scan reports.
    let (old_boot_count, spare_entries) = match old_boot_hint(&mut disk, &layout) {
        Ok(x) => x,
        Err(e) => return Err((e, disk)),
    };
    let spare = SpareMap::with_entries(&layout, &spare_entries);

    let mut summary = ScavengeSummary {
        cause: cause.to_string(),
        ..Default::default()
    };
    let mut found: HashMap<Vec<u8>, LeaderPage> = HashMap::new();
    if let Err(e) = scan_leaders(
        &mut disk,
        &cpu,
        &layout,
        config.io_policy,
        config.scavenge_workers,
        &mut summary,
        &mut found,
    ) {
        return Err((e, disk));
    }

    // Dedup overlapping claims, newest (highest uid) first, honouring
    // tombstones; collect the files to rebuild and the epoch floor.
    let mut kept: Vec<LeaderPage> = found.into_values().collect();
    kept.sort_by_key(|l| std::cmp::Reverse(l.uid));
    let mut max_epoch = 0u32;
    let mut claimed: HashSet<SectorAddr> = HashSet::new();
    let mut files: Vec<(FileName, FileEntry)> = Vec::new();
    for l in kept {
        max_epoch = max_epoch.max((l.uid >> 32) as u32);
        if l.deleted {
            summary.tombstones += 1;
            continue;
        }
        let Ok(entry) = l.entry() else {
            summary
                .losses
                .push(format!("uid {}: undecodable leader payload", l.uid));
            continue;
        };
        let Ok(name) = l.file_name() else {
            summary
                .losses
                .push(format!("uid {}: undecodable leader name", l.uid));
            continue;
        };
        // The entry is a decoded disk payload: wild runs would balloon
        // the claimed-sector set and panic the VAM rebuild below.
        if !runs_sane(&layout, &entry) {
            summary.losses.push(format!(
                "{name}: entry claims sectors outside the data areas"
            ));
            continue;
        }
        let mut sectors: Vec<SectorAddr> = vec![entry.leader_addr];
        for r in entry.run_table.runs() {
            sectors.extend(r.start..r.end());
        }
        if sectors.iter().any(|s| claimed.contains(s)) {
            summary
                .losses
                .push(format!("{name}: sectors overlap a newer file"));
            continue;
        }
        claimed.extend(sectors);
        files.push((name, entry));
    }
    summary.files_rebuilt = files.len() as u64;
    let boot_count = old_boot_count.max(max_epoch) + 1;

    // Free map: everything in the data areas except what the recovered
    // files claim (the same §5.5 rule as a VAM rebuild).
    let mut vam = Vam::new_all_allocated(layout.total_sectors);
    vam.free_run(Run::new(
        layout.small_start,
        layout.nt_a_start - layout.small_start,
    ));
    vam.free_run(Run::new(
        layout.central_end,
        layout.total_sectors - layout.central_end,
    ));
    for (_, entry) in &files {
        vam.allocate_run(Run::new(entry.leader_addr, 1));
        for r in entry.run_table.runs() {
            vam.allocate_run(*r);
        }
    }

    // A fresh volume over the scavenged state — same skeleton as
    // `FsdVolume::format`, but with the recovered VAM and entries.
    let (dlo, dhi) = layout.data_area();
    let log = match Log::fresh(layout.log_start, layout.log_sectors, boot_count) {
        Ok(mut log) => {
            log.set_policy(config.io_policy);
            log
        }
        Err(e) => return Err((e, disk)),
    };
    let mut vol = FsdVolume {
        log,
        disk,
        cpu,
        layout,
        boot: FsdBootPage {
            boot_count,
            vam_valid: false,
            vam_logged: config.log_vam,
            spare_map: spare.entries().to_vec(),
        },
        tree: BTree::open(0),
        cache: NtCache::with_capacity(config.cache_pages),
        pending_pages: BTreeSet::new(),
        leaders: HashMap::new(),
        vam,
        alloc: Allocator::new(
            AllocPolicy::SplitAreas {
                small_threshold: config.small_threshold,
            },
            dlo,
            dhi,
        ),
        uid_counter: 0,
        last_force: 0,
        commit_interval: config.commit_interval_us,
        vam_hint_on_disk: false,
        commit_stats: Default::default(),
        vam_baseline: None,
        vam_home: HashMap::new(),
        io_policy: config.io_policy,
        spare,
        repl: None,
    };
    vol.last_force = vol.clock().now();

    match rebuild(&mut vol, config, &files) {
        Ok(()) => {
            report.rung = RecoveryRung::Scavenge;
            report.scrubbed_sectors += vol.spare.scrubbed;
            report.remapped_sectors += vol.spare.remapped;
            report.scavenge_us = vol.clock().now() - t0;
            report.scavenge = Some(summary);
            Ok((vol, report))
        }
        Err(e) => Err((e, vol.into_disk())),
    }
}

/// Tracks per striding window. The scan plans its reads window by
/// window so the run tables of leaders merged *two* windows back can
/// stride the reader past file-interior sectors (see
/// [`window_ranges`]); eight tracks keeps the windows large enough for
/// C-SCAN sweeps while the pipeline stays two windows deep.
const TRACKS_PER_WINDOW: u32 = 8;

/// The decode output for one [`ScanChunk`]: leaders that prove they
/// belong at the sector they were read from, in sector order. This is
/// the unit that flows back from the decode workers; `seq` restores
/// submission order at the merge.
struct ChunkResult {
    seq: usize,
    scanned: u64,
    unreadable: u64,
    candidates: Vec<LeaderPage>,
}

/// Pure per-chunk decode/verify: the worker half of the pipeline.
/// Address-local checks only (decode, checksum, self-pointing entry,
/// sane runs) — cross-file rules (duplicates, overlaps) need global
/// state and stay in the merge.
fn decode_chunk(layout: &FsdLayout, chunk: &ScanChunk) -> ChunkResult {
    let mut out = ChunkResult {
        seq: chunk.seq,
        scanned: chunk.sectors() as u64,
        unreadable: 0,
        candidates: Vec::new(),
    };
    for i in 0..chunk.sectors() {
        if chunk.damaged[i] {
            out.unreadable += 1;
            continue;
        }
        let sector = &chunk.bytes[i * SECTOR_BYTES..(i + 1) * SECTOR_BYTES];
        let Ok(leader) = LeaderPage::decode(sector) else {
            continue;
        };
        let Ok(entry) = leader.entry() else {
            continue;
        };
        // A logged or copied leader image elsewhere on disk points at
        // its true home, not at the sector it was read from.
        if entry.leader_addr == chunk.start + i as u32 && runs_sane(layout, &entry) {
            out.candidates.push(leader);
        }
    }
    out
}

/// Splits both data areas into striding windows of whole tracks.
fn build_windows(layout: &FsdLayout, window_sectors: u32) -> Vec<(SectorAddr, SectorAddr)> {
    let mut windows = Vec::new();
    for (lo, hi) in [
        (layout.small_start, layout.nt_a_start),
        (layout.central_end, layout.total_sectors),
    ] {
        let mut at = lo;
        while at < hi {
            let end = (at + window_sectors).min(hi);
            windows.push((at, end));
            at = end;
        }
    }
    windows
}

/// Read ranges for one window, striding past sectors the `skip` map
/// marks (a [`Vam`] reused as a bitmap: free ⇒ skip). Ranges are capped
/// at a track so chunks stay worker-sized.
fn window_ranges(
    skip: &Vam,
    lo: SectorAddr,
    hi: SectorAddr,
    max_len: u32,
) -> Vec<(SectorAddr, usize)> {
    let mut ranges = Vec::new();
    let mut at = lo;
    while at < hi {
        if skip.is_free(at) {
            at += 1;
            continue;
        }
        let mut end = at + 1;
        while end < hi && end - at < max_len && !skip.is_free(end) {
            end += 1;
        }
        ranges.push((at, (end - at) as usize));
        at = end;
    }
    ranges
}

/// Folds one chunk's candidates into the global state, in sector order.
/// Live (non-tombstone) candidates also stride the skip map past their
/// file-interior sectors: those are data, not leaders, so windows ≥ two
/// ahead never read them. The window lag means a *stale* live leader
/// whose runs cover a newer file's leader sector can hide it — the
/// documented striding trade, impossible after a clean shutdown (home
/// leaders are synced) and acceptable for last-rung recovery.
fn merge_chunk(
    summary: &mut ScavengeSummary,
    found: &mut HashMap<Vec<u8>, LeaderPage>,
    layout: &FsdLayout,
    skip: &mut Vam,
    result: ChunkResult,
) {
    summary.unreadable_sectors += result.unreadable;
    for leader in result.candidates {
        // Candidates arrive runs_sane-checked by `decode_chunk`, but the
        // skip bitmap panics on out-of-range sectors, so this merge must
        // not depend on a gate in another function staying put.
        if !leader.deleted {
            if let Ok(entry) = leader.entry() {
                if runs_sane(layout, &entry) {
                    for r in entry.run_table.runs() {
                        skip.free_run(*r);
                    }
                }
            }
        }
        admit(summary, found, leader);
    }
}

/// Sweeps both data areas collecting provable leader pages; duplicates
/// by name key resolve to the higher uid.
///
/// Both paths run the same two-windows-deep pipeline over the same
/// striding plan, so they read the same sectors and merge in the same
/// order — the parallel scan is bit-identical to the serial one, only
/// its decode CPU is spread across workers and charged as the critical
/// path.
#[allow(clippy::too_many_arguments)]
fn scan_leaders(
    disk: &mut SimDisk,
    cpu: &Cpu,
    layout: &FsdLayout,
    policy: IoPolicy,
    workers: usize,
    summary: &mut ScavengeSummary,
    found: &mut HashMap<Vec<u8>, LeaderPage>,
) -> Result<()> {
    let track = disk.geometry().sectors_per_track.max(1);
    let windows = build_windows(layout, track * TRACKS_PER_WINDOW);
    if workers <= 1 {
        scan_serial(disk, cpu, layout, policy, track, &windows, summary, found)
    } else {
        scan_parallel(
            disk, cpu, layout, policy, track, workers, &windows, summary, found,
        )
    }
}

/// The serial pipeline: read window i, decode it inline, then merge
/// window i−1 — so ranges for window i+1 see exactly the merges of
/// windows ≤ i−1, the same lag the parallel path keeps.
#[allow(clippy::too_many_arguments)]
fn scan_serial(
    disk: &mut SimDisk,
    cpu: &Cpu,
    layout: &FsdLayout,
    policy: IoPolicy,
    track: u32,
    windows: &[(SectorAddr, SectorAddr)],
    summary: &mut ScavengeSummary,
    found: &mut HashMap<Vec<u8>, LeaderPage>,
) -> Result<()> {
    let mut skip = Vam::new_all_allocated(layout.total_sectors);
    let mut pending: Vec<ChunkResult> = Vec::new();
    let mut seq = 0usize;
    for &(lo, hi) in windows {
        let ranges = window_ranges(&skip, lo, hi, track);
        let chunks = scan::read_chunks(disk, policy, &ranges, seq).map_err(FsdError::Disk)?;
        seq += chunks.len();
        let results: Vec<ChunkResult> = chunks
            .iter()
            .map(|c| {
                let r = decode_chunk(layout, c);
                cpu.sectors(r.scanned);
                cpu.entries(r.candidates.len() as u64);
                r
            })
            .collect();
        for r in pending.drain(..) {
            merge_chunk(summary, found, layout, &mut skip, r);
        }
        pending = results;
    }
    for r in pending {
        merge_chunk(summary, found, layout, &mut skip, r);
    }
    Ok(())
}

/// The parallel pipeline: the reader owns the spindle and feeds decode
/// workers through a bounded [`ScanChannel`]; results come back tagged
/// with their submission `seq` and a reorder buffer restores address
/// order before the merge, so the outcome is identical to the serial
/// scan. Worker CPU accumulates off-clock and joins as the critical
/// path.
#[allow(clippy::too_many_arguments)]
fn scan_parallel(
    disk: &mut SimDisk,
    cpu: &Cpu,
    layout: &FsdLayout,
    policy: IoPolicy,
    track: u32,
    workers: usize,
    windows: &[(SectorAddr, SectorAddr)],
    summary: &mut ScavengeSummary,
    found: &mut HashMap<Vec<u8>, LeaderPage>,
) -> Result<()> {
    let t0 = disk.clock().now();
    let chunk_ch: ScanChannel<ScanChunk> = ScanChannel::new(workers * 2);
    // Results are small and the reorder buffer is unbounded anyway; an
    // unbounded result leg means workers never block sending, so the
    // reader can finish submitting a window before draining the last —
    // a bounded leg there could deadlock the pipeline.
    let result_ch: ScanChannel<ChunkResult> = ScanChannel::new(usize::MAX);
    let mut worker_us: Vec<u64> = Vec::new();
    let mut scan_err: Option<FsdError> = None;

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (rx, tx) = (&chunk_ch, &result_ch);
                let mut wcpu = cpu.worker();
                s.spawn(move || {
                    while let Some(chunk) = rx.recv() {
                        let r = decode_chunk(layout, &chunk);
                        wcpu.sectors(r.scanned);
                        wcpu.entries(r.candidates.len() as u64);
                        if !tx.send(r) {
                            break;
                        }
                    }
                    wcpu.into_us()
                })
            })
            .collect();

        let mut skip = Vam::new_all_allocated(layout.total_sectors);
        let mut reorder: BTreeMap<usize, ChunkResult> = BTreeMap::new();
        let mut next_merge = 0usize;
        let mut seq = 0usize;
        for (i, &(lo, hi)) in windows.iter().enumerate() {
            let window_start_seq = seq;
            let ranges = window_ranges(&skip, lo, hi, track);
            let chunks = match scan::read_chunks(disk, policy, &ranges, seq) {
                Ok(c) => c,
                Err(e) => {
                    scan_err = Some(FsdError::Disk(e));
                    break;
                }
            };
            seq += chunks.len();
            for c in chunks {
                if !chunk_ch.send(c) {
                    break;
                }
            }
            // Before planning window i+1, merge all of window i−1 (its
            // chunks are every seq below this window's first).
            if i > 0 {
                while next_merge < window_start_seq {
                    let Some(r) = result_ch.recv() else { break };
                    reorder.insert(r.seq, r);
                    while let Some(r) = reorder.remove(&next_merge) {
                        merge_chunk(summary, found, layout, &mut skip, r);
                        next_merge += 1;
                    }
                }
            }
        }
        chunk_ch.close();
        if scan_err.is_none() {
            // Drain the tail (the last two windows' results).
            while next_merge < seq {
                let Some(r) = result_ch.recv() else { break };
                reorder.insert(r.seq, r);
                while let Some(r) = reorder.remove(&next_merge) {
                    merge_chunk(summary, found, layout, &mut skip, r);
                    next_merge += 1;
                }
            }
        }
        result_ch.close();
        for h in handles {
            if let Ok(us) = h.join() {
                worker_us.push(us);
            }
        }
    });

    cpu.join_parallel(t0, &worker_us);
    match scan_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Admits a verified candidate leader; resolves name-key duplicates to
/// the higher uid.
fn admit(
    summary: &mut ScavengeSummary,
    found: &mut HashMap<Vec<u8>, LeaderPage>,
    leader: LeaderPage,
) {
    summary.leaders_found += 1;
    match found.entry(leader.name_key.clone()) {
        std::collections::hash_map::Entry::Occupied(mut o) => {
            let (winner, loser) = if leader.uid > o.get().uid {
                (Some(leader), o.get().clone())
            } else {
                (None, leader)
            };
            if !loser.deleted {
                summary.losses.push(format!(
                    "{}: stale duplicate uid {} superseded",
                    loser
                        .file_name()
                        .map_or_else(|_| "<unnamed>".to_string(), |n| n.to_string()),
                    loser.uid
                ));
            }
            if let Some(w) = winner {
                o.insert(w);
            }
        }
        std::collections::hash_map::Entry::Vacant(v) => {
            v.insert(leader);
        }
    }
}

/// A recovered entry is only trusted if every sector it claims lies in
/// the data areas.
fn runs_sane(layout: &FsdLayout, entry: &FileEntry) -> bool {
    let in_data = |start: SectorAddr, end: SectorAddr| {
        (start >= layout.small_start && end <= layout.nt_a_start)
            || (start >= layout.central_end && end <= layout.total_sectors)
    };
    entry.run_table.runs().len() <= MAX_RUNS
        && in_data(entry.leader_addr, entry.leader_addr + 1)
        && entry
            .run_table
            .runs()
            .iter()
            .all(|r| r.len > 0 && in_data(r.start, r.end()))
}

/// Writes the scavenged state out as a fresh, fully durable volume:
/// empty log, new name table holding the recovered entries, saved VAM.
fn rebuild(vol: &mut FsdVolume, config: FsdConfig, files: &[(FileName, FileEntry)]) -> Result<()> {
    {
        let FsdVolume {
            ref mut log,
            ref mut disk,
            ref mut spare,
            ..
        } = *vol;
        log.write_meta(disk, spare)?;
    }
    // Bottom-up bulk load: encode the recovered entries once, sort them
    // by key, and pack the tree leaves-first — one page write per node,
    // instead of N root-to-leaf insertions re-dirtying the same pages.
    // Entry encoding is embarrassingly parallel, so it shards across the
    // configured workers like the scan's decode stage; the output is the
    // concatenation of the shards either way.
    let workers = config.scavenge_workers.max(1);
    let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = if workers == 1 || files.len() < workers {
        vol.cpu.entries(files.len() as u64);
        files
            .iter()
            .map(|(name, entry)| (name.to_key(), entry.encode()))
            .collect()
    } else {
        let t0 = vol.clock().now();
        let shard_len = files.len().div_ceil(workers);
        let joined = std::thread::scope(|s| {
            let handles: Vec<_> = files
                .chunks(shard_len)
                .map(|shard| {
                    let mut wcpu = vol.cpu.worker();
                    s.spawn(move || {
                        let pairs: Vec<(Vec<u8>, Vec<u8>)> = shard
                            .iter()
                            .map(|(name, entry)| (name.to_key(), entry.encode()))
                            .collect();
                        wcpu.entries(shard.len() as u64);
                        (pairs, wcpu.into_us())
                    })
                })
                .collect::<Vec<_>>();
            handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
        });
        let mut shards = Vec::with_capacity(joined.len());
        let mut worker_us = Vec::with_capacity(joined.len());
        for r in joined {
            let (pairs, us) = r.map_err(|_| {
                FsdError::Check("entry-encode worker panicked during scavenge rebuild".into())
            })?;
            shards.push(pairs);
            worker_us.push(us);
        }
        vol.cpu.join_parallel(t0, &worker_us);
        shards.into_iter().flatten().collect()
    };
    pairs.sort();
    {
        let mut store = FsdNtStore {
            disk: &mut vol.disk,
            cpu: &vol.cpu,
            layout: &vol.layout,
            policy: vol.io_policy,
            spare: &mut vol.spare,
            cache: &mut vol.cache,
            pending: &mut vol.pending_pages,
        };
        store.write_meta(&NtMeta::new(vol.layout.nt_pages))?;
        vol.tree = BTree::bulk_load(&mut store, &pairs)?;
    }
    vol.update_meta_root()?;
    vol.force()?;
    vol.sync_home_all()?;
    vol.save_vam_and_mark_valid()?;
    if config.log_vam {
        vol.vam_baseline = Some(vol.padded_vam_bytes());
    }
    Ok(())
}

/// Best-effort read of the old boot pages for the boot count and the
/// remap table; either copy serves, neither is required.
fn old_boot_hint(
    disk: &mut SimDisk,
    layout: &FsdLayout,
) -> Result<(u32, Vec<(SectorAddr, SectorAddr)>)> {
    let mut count = 0u32;
    let mut entries: Vec<(SectorAddr, SectorAddr)> = Vec::new();
    for addr in [layout.boot_a, layout.boot_b] {
        match disk.read(addr, 1) {
            Ok(bytes) => {
                if let Ok(b) = FsdBootPage::decode(&bytes) {
                    if b.boot_count >= count {
                        count = b.boot_count;
                        entries = b.spare_map;
                    }
                }
            }
            Err(DiskError::Crashed) => return Err(FsdError::Disk(DiskError::Crashed)),
            Err(_) => continue,
        }
    }
    Ok((count, entries))
}
