//! FSD on-disk layout and boot pages.
//!
//! ```text
//! 0           boot page copy A
//! 1           (blank — copies are never adjacent, §5.3)
//! 2           boot page copy B
//! 4 ..        VAM save area copy A, blank, copy B
//! small area  small-file data, growing up from the front (§5.6)
//! NT copy A   ┐
//! log         ├ the hot metadata, preallocated near the central
//! NT copy B   ┘ cylinders to minimize head motion (§5.1, §5.3)
//! big area    big-file data, growing down from the end
//! ```
//!
//! "Two kinds of pages needed in booting could become bad: they are now
//! replicated" (§5.8): the boot page and the log meta page each live in
//! two non-adjacent sectors.

use cedar_disk::sched::{self, IoBatch, IoOp, IoPolicy, OpResult};
use cedar_disk::{DiskGeometry, SectorAddr, SimDisk, SECTOR_BYTES};
use cedar_vol::codec::{Reader, Writer};

use crate::NT_PAGE_SECTORS;

/// Magic number identifying an FSD boot page.
pub const BOOT_MAGIC: u32 = 0xF5D_B007;

/// Sectors reserved in the spare region for remapping grown defects
/// (§5.8's "bad pages in the file system's own data structures").
pub const SPARE_SECTORS: u32 = 16;

/// Computed sector layout of an FSD volume.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FsdLayout {
    /// Total sectors on the volume.
    pub total_sectors: u32,
    /// Boot page copy A (sector 0).
    pub boot_a: SectorAddr,
    /// Boot page copy B (sector 2).
    pub boot_b: SectorAddr,
    /// First sector of VAM save copy A.
    pub vam_a: SectorAddr,
    /// First sector of VAM save copy B.
    pub vam_b: SectorAddr,
    /// Sectors per VAM save copy.
    pub vam_sectors: u32,
    /// First sector of the spare region: replacement sectors that grown
    /// (permanent) defects in the metadata regions are remapped into.
    pub spare_start: SectorAddr,
    /// Sectors in the spare region.
    pub spare_sectors: u32,
    /// First sector of the small-file data area.
    pub small_start: SectorAddr,
    /// First sector of name-table region copy A.
    pub nt_a_start: SectorAddr,
    /// First sector of the log region.
    pub log_start: SectorAddr,
    /// Sectors in the log region (including its meta pages).
    pub log_sectors: u32,
    /// First sector of name-table region copy B.
    pub nt_b_start: SectorAddr,
    /// Logical name-table pages per copy.
    pub nt_pages: u32,
    /// One past the last sector of the central metadata region (the big
    /// area runs from here to the end of the volume).
    pub central_end: SectorAddr,
}

impl FsdLayout {
    /// Computes the layout. Zero for `nt_pages` or `log_sectors` selects
    /// geometry-scaled defaults.
    pub fn compute(geometry: &DiskGeometry, nt_pages: u32, log_sectors: u32) -> Self {
        let total = geometry.total_sectors();
        let nt_pages = if nt_pages == 0 {
            (total / 256).clamp(16, 4096)
        } else {
            nt_pages
        };
        let log_sectors = if log_sectors == 0 {
            // Two cylinders' worth by default, at least 128 sectors.
            (2 * geometry.sectors_per_cylinder()).max(128)
        } else {
            log_sectors
        };

        let vam_bytes = 4 + (total as usize).div_ceil(64) * 8;
        let vam_sectors = vam_bytes.div_ceil(SECTOR_BYTES) as u32;
        let vam_a = 4;
        let vam_b = vam_a + vam_sectors + 1; // One blank between copies.
        let spare_start = vam_b + vam_sectors;
        let small_start = spare_start + SPARE_SECTORS;

        let nt_sectors = nt_pages * NT_PAGE_SECTORS;
        let central_len = 2 * nt_sectors + log_sectors;
        let center = total / 2;
        let nt_a_start = center.saturating_sub(central_len / 2).max(small_start + 1);
        let log_start = nt_a_start + nt_sectors;
        let nt_b_start = log_start + log_sectors;
        let central_end = nt_b_start + nt_sectors;
        assert!(
            central_end < total,
            "volume too small for FSD layout ({central_end} >= {total})"
        );
        assert!(nt_a_start > small_start, "no room for the small-file area");
        Self {
            total_sectors: total,
            boot_a: 0,
            boot_b: 2,
            vam_a,
            vam_b,
            vam_sectors,
            spare_start,
            spare_sectors: SPARE_SECTORS,
            small_start,
            nt_a_start,
            log_start,
            log_sectors,
            nt_b_start,
            nt_pages,
            central_end,
        }
    }

    /// Sector address of name-table page `page` in copy A.
    pub fn nt_a_sector(&self, page: u32) -> SectorAddr {
        assert!(page < self.nt_pages);
        self.nt_a_start + page * NT_PAGE_SECTORS
    }

    /// Sector address of name-table page `page` in copy B.
    pub fn nt_b_sector(&self, page: u32) -> SectorAddr {
        assert!(page < self.nt_pages);
        self.nt_b_start + page * NT_PAGE_SECTORS
    }

    /// The data area bounds `[lo, hi)`; the central metadata region inside
    /// is excluded by being marked allocated in the VAM.
    pub fn data_area(&self) -> (SectorAddr, SectorAddr) {
        (self.small_start, self.total_sectors)
    }

    /// Returns `true` if `addr` lies in a system region (boot, VAM save,
    /// name table or log) rather than the data area.
    pub fn is_system(&self, addr: SectorAddr) -> bool {
        addr < self.small_start || (self.nt_a_start..self.central_end).contains(&addr)
    }
}

/// Writes one page image to both of its replica sectors: copy A must be
/// durable before copy B starts (booting trusts A unless it is damaged,
/// §5.8), so a barrier separates the two writes. Every replicated-page
/// writer (boot pages at mount/commit, the new-epoch bump in recovery)
/// goes through here so the A-barrier-B discipline lives in one place.
///
/// A first failure on a copy may be a latent flaw that the retry's
/// rewrite repairs; a second is a grown defect. Boot and VAM-save
/// sectors are not remappable (the spare map is *recorded on* the boot
/// page), so the page survives as long as at least one copy is durable —
/// booting falls back to the other copy.
pub(crate) fn write_replicas(
    disk: &mut SimDisk,
    policy: IoPolicy,
    a: SectorAddr,
    b: SectorAddr,
    bytes: Vec<u8>,
) -> crate::Result<()> {
    let targets = [a, b];
    let mut durable = [false; 2];
    let mut failures = [0u8; 2];
    loop {
        let mut batch = IoBatch::new();
        let mut slots = Vec::new();
        for (i, &at) in targets.iter().enumerate() {
            if durable[i] || failures[i] >= 2 {
                continue;
            }
            if !slots.is_empty() {
                batch.barrier();
            }
            batch.push(IoOp::Write {
                start: at,
                data: bytes.clone(),
            });
            slots.push(i);
        }
        if slots.is_empty() {
            break;
        }
        let results = sched::execute_partial(disk, policy, &batch)?;
        for (r, &i) in results.iter().zip(&slots) {
            match r {
                OpResult::Ok(_) => durable[i] = true,
                OpResult::Failed(_) => failures[i] += 1,
                OpResult::Skipped => {}
            }
        }
    }
    if durable[0] || durable[1] {
        Ok(())
    } else {
        Err(crate::FsdError::Check(format!(
            "both replica sectors {a} and {b} are bad"
        )))
    }
}

/// The FSD boot page, replicated at sectors 0 and 2.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FsdBootPage {
    /// Boots so far (part of uid generation and log-record validation).
    pub boot_count: u32,
    /// Whether the VAM save area holds a properly saved VAM (§5.5).
    pub vam_valid: bool,
    /// Whether the volume runs the §5.3 VAM-logging extension: the save
    /// area is a base image that log redo patches, so it stays valid
    /// across crashes.
    pub vam_logged: bool,
    /// Bad-sector remap table: `(logical, physical)` pairs redirecting
    /// grown defects in the metadata regions into the spare region. Every
    /// metadata read and write translates through this table, so it must
    /// be readable before anything else — hence it lives on the boot page.
    pub spare_map: Vec<(u32, u32)>,
}

impl FsdBootPage {
    /// Encodes into one sector.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(BOOT_MAGIC)
            .u32(self.boot_count)
            .u8(u8::from(self.vam_valid))
            .u8(u8::from(self.vam_logged))
            .u16(u16::try_from(self.spare_map.len()).unwrap_or(u16::MAX));
        for &(logical, phys) in &self.spare_map {
            w.u32(logical).u32(phys);
        }
        let mut bytes = w.into_bytes();
        assert!(bytes.len() <= SECTOR_BYTES, "boot page overflows a sector");
        bytes.resize(SECTOR_BYTES, 0);
        bytes
    }

    /// Decodes from a sector.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        let mut r = Reader::new(bytes);
        if r.u32()? != BOOT_MAGIC {
            return Err("bad FSD boot page magic".into());
        }
        let boot_count = r.u32()?;
        let vam_valid = r.u8()? != 0;
        let vam_logged = r.u8()? != 0;
        let n = r.u16()?;
        let mut spare_map = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let logical = r.u32()?;
            let phys = r.u32()?;
            spare_map.push((logical, phys));
        }
        Ok(Self {
            boot_count,
            vam_valid,
            vam_logged,
            spare_map,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_ordered_and_disjoint() {
        let l = FsdLayout::compute(&DiskGeometry::TRIDENT_T300, 0, 0);
        assert!(l.boot_b > l.boot_a + 1, "boot copies must not be adjacent");
        assert!(l.vam_b > l.vam_a + l.vam_sectors, "VAM copies not adjacent");
        assert_eq!(l.spare_start, l.vam_b + l.vam_sectors);
        assert_eq!(l.small_start, l.spare_start + l.spare_sectors);
        assert!(l.small_start < l.nt_a_start);
        assert_eq!(l.log_start, l.nt_a_start + l.nt_pages * 2);
        assert_eq!(l.nt_b_start, l.log_start + l.log_sectors);
        assert!(l.central_end < l.total_sectors);
    }

    #[test]
    fn metadata_sits_near_central_cylinders() {
        let g = DiskGeometry::TRIDENT_T300;
        let l = FsdLayout::compute(&g, 0, 0);
        let log_cyl = g.cylinder_of(l.log_start);
        let mid = g.cylinders / 2;
        assert!(
            log_cyl.abs_diff(mid) < 20,
            "log at cylinder {log_cyl}, center {mid}"
        );
    }

    #[test]
    fn nt_copies_have_independent_addresses() {
        let l = FsdLayout::compute(&DiskGeometry::TINY, 16, 128);
        for p in 0..16 {
            let a = l.nt_a_sector(p);
            let b = l.nt_b_sector(p);
            assert!(b > a + 1, "page {p} copies adjacent");
        }
    }

    #[test]
    fn is_system_covers_all_regions() {
        let l = FsdLayout::compute(&DiskGeometry::TINY, 16, 128);
        assert!(l.is_system(0));
        assert!(l.is_system(l.vam_a));
        assert!(l.is_system(l.spare_start));
        assert!(l.is_system(l.nt_a_start));
        assert!(l.is_system(l.log_start));
        assert!(l.is_system(l.nt_b_start));
        assert!(!l.is_system(l.small_start));
        assert!(!l.is_system(l.total_sectors - 1));
    }

    #[test]
    fn boot_page_roundtrip() {
        let b = FsdBootPage {
            boot_count: 9,
            vam_valid: true,
            vam_logged: true,
            spare_map: vec![(120, 40), (77, 41)],
        };
        assert_eq!(FsdBootPage::decode(&b.encode()).unwrap(), b);
    }

    #[test]
    fn boot_page_spare_map_fits_in_sector() {
        let b = FsdBootPage {
            boot_count: 1,
            vam_valid: false,
            vam_logged: true,
            spare_map: (0..SPARE_SECTORS).map(|i| (1000 + i, 40 + i)).collect(),
        };
        let bytes = b.encode();
        assert_eq!(bytes.len(), SECTOR_BYTES);
        assert_eq!(FsdBootPage::decode(&bytes).unwrap(), b);
    }

    #[test]
    fn boot_page_rejects_garbage() {
        assert!(FsdBootPage::decode(&[0u8; SECTOR_BYTES]).is_err());
    }
}
