//! Leader pages.
//!
//! "Files in FSD consist of a single leader page and the data pages. The
//! leader page doesn't contain any information needed for operation, but
//! provides an optional check for the proper operation of the system.
//! Leader pages and the file name table are different data structures that
//! are mutually checking." (§5.2). Per Table 1 a leader holds the uid, the
//! preamble of the run table and a checksum of the run table.
//!
//! The leader sits on the sector immediately before the first data page,
//! so verifying it costs only one extra sector transfer piggybacked on the
//! first data access (§5.7).
//!
//! Beyond the paper's Table 1 fields, this leader carries the file's full
//! name key and encoded name-table entry under a checksum, plus a
//! `deleted` tombstone flag. During normal operation these are only extra
//! cross-check material; they exist so that a *scavenge* — the last rung
//! of recovery, when both the log and the name-table replicas are lost —
//! can rebuild the name table and free map from leader pages alone
//! (CFS recovered from its hardware labels the same way, §2).

use crate::entry::FileEntry;
use crate::error::FsdError;
use cedar_disk::SECTOR_BYTES;
use cedar_vol::codec::{fnv1a, Reader, Writer};
use cedar_vol::{FileName, Run};

/// Magic number identifying a leader page.
pub const LEADER_MAGIC: u32 = 0xF5D_1EAD;

/// A decoded leader page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeaderPage {
    /// The owning file's uid.
    pub uid: u64,
    /// First run of the file's run table (Table 1: "preamble of run
    /// table").
    pub preamble: Run,
    /// Checksum of the full run table (Table 1).
    pub run_checksum: u64,
    /// The file was deleted: this leader is a tombstone, written when the
    /// delete commits so a later scavenge does not resurrect the file.
    pub deleted: bool,
    /// The file's B-tree name key ([`FileName::to_key`]).
    pub name_key: Vec<u8>,
    /// The file's encoded name-table entry ([`FileEntry::encode`]), as of
    /// the last leader write.
    pub entry_bytes: Vec<u8>,
}

impl LeaderPage {
    /// Builds the leader for a file entry.
    pub fn for_entry(name: &FileName, entry: &FileEntry) -> Self {
        Self {
            uid: entry.uid,
            preamble: entry.run_table.preamble(),
            run_checksum: entry.run_table.checksum(),
            deleted: false,
            name_key: name.to_key(),
            entry_bytes: entry.encode(),
        }
    }

    /// Builds the tombstone leader written when `entry` is deleted.
    pub fn tombstone(name: &FileName, entry: &FileEntry) -> Self {
        Self {
            deleted: true,
            ..Self::for_entry(name, entry)
        }
    }

    /// Decodes the embedded name-table entry.
    pub fn entry(&self) -> Result<FileEntry, FsdError> {
        FileEntry::decode(&self.entry_bytes)
    }

    /// Decodes the embedded file name.
    pub fn file_name(&self) -> Result<FileName, FsdError> {
        FileName::from_key(&self.name_key)
            .map_err(|m| FsdError::Check(format!("leader name key: {m}")))
    }

    /// Encodes into one sector: magic, payload length, payload checksum,
    /// payload. The checksum lets a scavenger distinguish a genuine
    /// leader from data that happens to start with the magic.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Writer::new();
        p.u64(self.uid)
            .u32(self.preamble.start)
            .u32(self.preamble.len)
            .u64(self.run_checksum)
            .u8(u8::from(self.deleted))
            .str16(&self.name_key)
            .str16(&self.entry_bytes);
        let payload = p.into_bytes();
        let mut w = Writer::new();
        w.u32(LEADER_MAGIC)
            .u16(u16::try_from(payload.len()).unwrap_or(u16::MAX))
            .u64(fnv1a(&payload))
            .bytes(&payload);
        let mut bytes = w.into_bytes();
        assert!(
            bytes.len() <= SECTOR_BYTES,
            "leader page overflows a sector"
        );
        bytes.resize(SECTOR_BYTES, 0);
        bytes
    }

    /// Decodes from a sector, verifying the payload checksum.
    pub fn decode(bytes: &[u8]) -> Result<Self, FsdError> {
        let mut r = Reader::new(bytes);
        let bad = |m: String| FsdError::Check(format!("leader page: {m}"));
        if r.u32().map_err(bad)? != LEADER_MAGIC {
            return Err(FsdError::Check("bad leader magic".into()));
        }
        let payload_len = r.u16().map_err(bad)? as usize;
        let checksum = r.u64().map_err(bad)?;
        let payload = r.bytes(payload_len).map_err(bad)?;
        if fnv1a(payload) != checksum {
            return Err(FsdError::Check("leader payload checksum mismatch".into()));
        }
        let mut p = Reader::new(payload);
        Ok(Self {
            uid: p.u64().map_err(bad)?,
            preamble: Run::new(p.u32().map_err(bad)?, p.u32().map_err(bad)?),
            run_checksum: p.u64().map_err(bad)?,
            deleted: p.u8().map_err(bad)? != 0,
            name_key: p.str16().map_err(bad)?.to_vec(),
            entry_bytes: p.str16().map_err(bad)?.to_vec(),
        })
    }

    /// Verifies this leader against the name-table entry — the mutual
    /// check of §5.2. Returns a [`FsdError::Check`] describing the first
    /// mismatch.
    pub fn verify(&self, name: &FileName, entry: &FileEntry) -> Result<(), FsdError> {
        if self.deleted {
            return Err(FsdError::Check("leader is a delete tombstone".into()));
        }
        if self.uid != entry.uid {
            return Err(FsdError::Check(format!(
                "leader uid {} != entry uid {}",
                self.uid, entry.uid
            )));
        }
        if self.name_key != name.to_key() {
            return Err(FsdError::Check(format!(
                "leader names {:?}, entry looked up as {name}",
                self.file_name().map(|n| n.to_string())
            )));
        }
        if self.preamble != entry.run_table.preamble() {
            return Err(FsdError::Check("leader run-table preamble mismatch".into()));
        }
        if self.run_checksum != entry.run_table.checksum() {
            return Err(FsdError::Check("leader run-table checksum mismatch".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::EntryKind;
    use cedar_vol::RunTable;

    fn name() -> FileName {
        FileName::new("docs/plan.tioga", 3).unwrap()
    }

    fn entry() -> FileEntry {
        FileEntry {
            kind: EntryKind::Local,
            uid: 99,
            keep: 0,
            byte_size: 1024,
            create_time: 0,
            leader_addr: 499,
            run_table: RunTable::from_runs([Run::new(500, 2)]),
        }
    }

    #[test]
    fn roundtrip() {
        let l = LeaderPage::for_entry(&name(), &entry());
        assert_eq!(LeaderPage::decode(&l.encode()).unwrap(), l);
    }

    #[test]
    fn embedded_entry_and_name_decode_back() {
        let l = LeaderPage::for_entry(&name(), &entry());
        assert_eq!(l.entry().unwrap(), entry());
        assert_eq!(l.file_name().unwrap(), name());
    }

    #[test]
    fn tombstone_roundtrips_and_fails_verify() {
        let t = LeaderPage::tombstone(&name(), &entry());
        let back = LeaderPage::decode(&t.encode()).unwrap();
        assert!(back.deleted);
        assert!(back.verify(&name(), &entry()).is_err());
    }

    #[test]
    fn verify_accepts_matching_entry() {
        let e = entry();
        LeaderPage::for_entry(&name(), &e)
            .verify(&name(), &e)
            .unwrap();
    }

    #[test]
    fn verify_rejects_uid_mismatch() {
        let e = entry();
        let mut l = LeaderPage::for_entry(&name(), &e);
        l.uid = 98;
        assert!(l.verify(&name(), &e).is_err());
    }

    #[test]
    fn verify_rejects_name_mismatch() {
        let e = entry();
        let l = LeaderPage::for_entry(&name(), &e);
        let other = FileName::new("docs/plan.tioga", 4).unwrap();
        assert!(l.verify(&other, &e).is_err());
    }

    #[test]
    fn verify_rejects_run_table_change() {
        let mut e = entry();
        let l = LeaderPage::for_entry(&name(), &e);
        e.run_table.push(Run::new(900, 1));
        assert!(l.verify(&name(), &e).is_err());
    }

    #[test]
    fn decode_rejects_garbage_and_corruption() {
        assert!(LeaderPage::decode(&[0u8; SECTOR_BYTES]).is_err());
        assert!(LeaderPage::decode(&[]).is_err());
        let mut bytes = LeaderPage::for_entry(&name(), &entry()).encode();
        bytes[20] ^= 0xFF; // Flip a payload byte: checksum must catch it.
        assert!(LeaderPage::decode(&bytes).is_err());
    }
}
