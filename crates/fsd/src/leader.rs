//! Leader pages.
//!
//! "Files in FSD consist of a single leader page and the data pages. The
//! leader page doesn't contain any information needed for operation, but
//! provides an optional check for the proper operation of the system.
//! Leader pages and the file name table are different data structures that
//! are mutually checking." (§5.2). Per Table 1 a leader holds the uid, the
//! preamble of the run table and a checksum of the run table.
//!
//! The leader sits on the sector immediately before the first data page,
//! so verifying it costs only one extra sector transfer piggybacked on the
//! first data access (§5.7).

use crate::entry::FileEntry;
use crate::error::FsdError;
use cedar_disk::SECTOR_BYTES;
use cedar_vol::codec::{Reader, Writer};
use cedar_vol::Run;

/// Magic number identifying a leader page.
pub const LEADER_MAGIC: u32 = 0xF5D_1EAD;

/// A decoded leader page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeaderPage {
    /// The owning file's uid.
    pub uid: u64,
    /// First run of the file's run table (Table 1: "preamble of run
    /// table").
    pub preamble: Run,
    /// Checksum of the full run table (Table 1).
    pub run_checksum: u64,
}

impl LeaderPage {
    /// Builds the leader for a file entry.
    pub fn for_entry(entry: &FileEntry) -> Self {
        Self {
            uid: entry.uid,
            preamble: entry.run_table.preamble(),
            run_checksum: entry.run_table.checksum(),
        }
    }

    /// Encodes into one sector.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(LEADER_MAGIC)
            .u64(self.uid)
            .u32(self.preamble.start)
            .u32(self.preamble.len)
            .u64(self.run_checksum);
        let mut bytes = w.into_bytes();
        bytes.resize(SECTOR_BYTES, 0);
        bytes
    }

    /// Decodes from a sector.
    pub fn decode(bytes: &[u8]) -> Result<Self, FsdError> {
        let mut r = Reader::new(bytes);
        let bad = |m: String| FsdError::Check(format!("leader page: {m}"));
        if r.u32().map_err(bad)? != LEADER_MAGIC {
            return Err(FsdError::Check("bad leader magic".into()));
        }
        Ok(Self {
            uid: r.u64().map_err(bad)?,
            preamble: Run::new(r.u32().map_err(bad)?, r.u32().map_err(bad)?),
            run_checksum: r.u64().map_err(bad)?,
        })
    }

    /// Verifies this leader against the name-table entry — the mutual
    /// check of §5.2. Returns a [`FsdError::Check`] describing the first
    /// mismatch.
    pub fn verify(&self, entry: &FileEntry) -> Result<(), FsdError> {
        if self.uid != entry.uid {
            return Err(FsdError::Check(format!(
                "leader uid {} != entry uid {}",
                self.uid, entry.uid
            )));
        }
        if self.preamble != entry.run_table.preamble() {
            return Err(FsdError::Check("leader run-table preamble mismatch".into()));
        }
        if self.run_checksum != entry.run_table.checksum() {
            return Err(FsdError::Check("leader run-table checksum mismatch".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::EntryKind;
    use cedar_vol::RunTable;

    fn entry() -> FileEntry {
        FileEntry {
            kind: EntryKind::Local,
            uid: 99,
            keep: 0,
            byte_size: 1024,
            create_time: 0,
            leader_addr: 499,
            run_table: RunTable::from_runs([Run::new(500, 2)]),
        }
    }

    #[test]
    fn roundtrip() {
        let l = LeaderPage::for_entry(&entry());
        assert_eq!(LeaderPage::decode(&l.encode()).unwrap(), l);
    }

    #[test]
    fn verify_accepts_matching_entry() {
        let e = entry();
        LeaderPage::for_entry(&e).verify(&e).unwrap();
    }

    #[test]
    fn verify_rejects_uid_mismatch() {
        let e = entry();
        let mut l = LeaderPage::for_entry(&e);
        l.uid = 98;
        assert!(l.verify(&e).is_err());
    }

    #[test]
    fn verify_rejects_run_table_change() {
        let mut e = entry();
        let l = LeaderPage::for_entry(&e);
        e.run_table.push(Run::new(900, 1));
        assert!(l.verify(&e).is_err());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(LeaderPage::decode(&[0u8; SECTOR_BYTES]).is_err());
        assert!(LeaderPage::decode(&[]).is_err());
    }
}
