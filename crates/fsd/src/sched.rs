//! The multi-client group-commit scheduler (§5.4).
//!
//! "When the log is forced, the process doing the force is not allowed
//! to proceed until the force is completed. … all of the transactions
//! that were committing during this period are written to the log
//! together, and the log is only forced once for all of these
//! transactions." FSD's volume already *accumulates* updates in cached
//! name-table pages; this module adds the missing piece — the commit
//! daemon that serves **many clients**, batching their metadata
//! operations and forcing the log once per batch.
//!
//! [`CommitScheduler`] wraps an [`FsdVolume`] and takes over all
//! forcing (the volume's own interval daemon is disabled). Operations
//! enter through [`CommitScheduler::submit`] and join the *pending
//! batch*; the batch is settled — one log force commits every
//! operation in it — when the first of three things happens:
//!
//! * the **window deadline**: half a second (configurable) after the
//!   previous settle, the §5.4 group-commit clock tick;
//! * **backpressure**: the batch reaches `max_batch_ops` operations;
//! * the **volume forces on its own** because the accumulated images
//!   approach a log third ([`FsdVolume::bulky_threshold`]) — the
//!   scheduler detects this and absorbs the batch into that force.
//!
//! Because everything runs on the simulated clock, the whole schedule —
//! interleavings, forces, latencies — is a deterministic function of
//! the client scripts. [`CommitScheduler::report`] distills it: forces
//! per operation (the quantity the paper's Table 3 bounds), batch
//! occupancy, and commit-latency percentiles.

use crate::volume::{CommitStats, FsdVolume};
use crate::{FsdError, Result};
use cedar_disk::Micros;
use cedar_vol::fs::{CedarFsError, FileInfo, FileSystem, FsBackend, FsStats};

/// Scheduler tuning.
#[derive(Clone, Copy, Debug)]
pub struct SchedConfig {
    /// Group-commit window: a batch waits at most this long (§5.4's
    /// half a second).
    pub window_us: Micros,
    /// Backpressure bound: settle as soon as this many operations are
    /// pending, regardless of the window.
    pub max_batch_ops: usize,
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self {
            window_us: 500_000,
            max_batch_ops: 256,
        }
    }
}

/// Why a batch was settled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Settle {
    /// The window deadline arrived.
    Window,
    /// The batch hit `max_batch_ops`.
    Backpressure,
    /// A client asked for durability ([`FileSystem::sync`]).
    Explicit,
    /// The volume forced on its own mid-operation (bulky batch).
    Internal,
}

/// Commit-latency distribution over the simulated clock, µs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Mean.
    pub mean_us: f64,
    /// Median.
    pub p50_us: Micros,
    /// 90th percentile.
    pub p90_us: Micros,
    /// 99th percentile.
    pub p99_us: Micros,
    /// Worst case.
    pub max_us: Micros,
}

/// What the scheduler did, aggregated — the group-commit extension of
/// [`CommitStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SchedReport {
    /// Operations submitted (and committed).
    pub ops: u64,
    /// Log forces that actually wrote a record, per the volume.
    pub log_forces: u64,
    /// Log forces per operation — the number group commit drives down
    /// as concurrency rises.
    pub forces_per_op: f64,
    /// Batches settled at the window deadline.
    pub window_settles: u64,
    /// Batches settled by the `max_batch_ops` backpressure bound.
    pub backpressure_settles: u64,
    /// Batches settled by an explicit client sync.
    pub explicit_settles: u64,
    /// Batches absorbed into a volume-initiated (bulky) force.
    pub internal_settles: u64,
    /// Window deadlines that passed with nothing pending.
    pub empty_windows: u64,
    /// Mean operations per settled batch.
    pub batch_mean: f64,
    /// Largest settled batch.
    pub batch_max: u64,
    /// Commit latency: submit → the force that made the op durable.
    pub latency: LatencyStats,
}

/// Group-commit scheduler over one [`FsdVolume`].
pub struct CommitScheduler {
    vol: FsdVolume,
    window_us: Micros,
    max_batch_ops: usize,
    /// Start of the current window = time of the last settle (or tick).
    window_anchor: Micros,
    /// Submit times of operations not yet committed.
    pending: Vec<Micros>,
    baseline: CommitStats,
    ops: u64,
    window_settles: u64,
    backpressure_settles: u64,
    explicit_settles: u64,
    internal_settles: u64,
    empty_windows: u64,
    batch_sizes: Vec<u64>,
    latencies: Vec<Micros>,
}

impl CommitScheduler {
    /// Takes ownership of the volume and of all log forcing.
    pub fn new(mut vol: FsdVolume, cfg: SchedConfig) -> Self {
        assert!(cfg.window_us > 0, "zero-length commit window");
        assert!(cfg.max_batch_ops >= 1, "batch bound must admit one op");
        // Disable the volume's own interval daemon; forces now happen
        // only where the scheduler can account for them.
        vol.set_commit_interval(Micros::MAX);
        let window_anchor = vol.clock().now();
        let baseline = vol.commit_stats();
        Self {
            vol,
            window_us: cfg.window_us,
            max_batch_ops: cfg.max_batch_ops,
            window_anchor,
            pending: Vec::new(),
            baseline,
            ops: 0,
            window_settles: 0,
            backpressure_settles: 0,
            explicit_settles: 0,
            internal_settles: 0,
            empty_windows: 0,
            batch_sizes: Vec::new(),
            latencies: Vec::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Micros {
        self.vol.clock().now()
    }

    /// Operations waiting for the next force.
    pub fn pending_ops(&self) -> usize {
        self.pending.len()
    }

    /// Read access to the volume. (There is deliberately no `&mut`
    /// accessor: mutations must go through [`Self::submit`] so the
    /// scheduler's accounting stays truthful.)
    pub fn volume(&self) -> &FsdVolume {
        &self.vol
    }

    /// Settles what is pending and hands the volume back.
    pub fn into_volume(mut self) -> Result<FsdVolume> {
        self.drain()?;
        Ok(self.vol)
    }

    /// Advances simulated time to `target`, firing every window
    /// deadline on the way exactly when it falls due — a deadline with
    /// work settles the batch; an empty one just starts the next
    /// window.
    pub fn advance_to(&mut self, target: Micros) -> Result<()> {
        loop {
            let deadline = self.window_anchor.saturating_add(self.window_us);
            if deadline > target {
                break;
            }
            let now = self.now();
            if deadline > now {
                self.vol.clock().advance(deadline - now);
            }
            if self.pending.is_empty() {
                self.empty_windows += 1;
                self.window_anchor = deadline;
            } else {
                self.settle(Settle::Window)?;
            }
        }
        let now = self.now();
        if target > now {
            self.vol.clock().advance(target - now);
        }
        Ok(())
    }

    /// Runs one client operation against the volume as part of the
    /// current batch. The closure gets the volume with the commit
    /// daemon off; any error passes straight through. On success the
    /// operation joins the pending batch, to be committed by the next
    /// settle (its commit latency is measured to that point).
    pub fn submit<T, E: From<FsdError>>(
        &mut self,
        op: impl FnOnce(&mut FsdVolume) -> std::result::Result<T, E>,
    ) -> std::result::Result<T, E> {
        // A deadline may have fallen due since the last advance.
        if self.now() >= self.window_anchor.saturating_add(self.window_us) {
            self.advance_to(self.now())?;
        }
        let forces_before = self.vol.commit_stats().forces;
        let submitted_at = self.now();
        let out = op(&mut self.vol)?;
        self.ops += 1;
        self.pending.push(submitted_at);
        if self.vol.commit_stats().forces > forces_before {
            // The volume's bulky-batch guard fired inside the
            // operation: everything pending (including this op) went
            // out with that force.
            self.record_settle(Settle::Internal);
        } else if self.pending.len() >= self.max_batch_ops {
            self.settle(Settle::Backpressure)?;
        }
        Ok(out)
    }

    /// Commits the pending batch now (a client called `sync`).
    pub fn force_now(&mut self) -> Result<()> {
        self.settle(Settle::Explicit)
    }

    /// Final drain: commits whatever is still pending. Call once at the
    /// end of a run so the last partial batch is counted.
    pub fn drain(&mut self) -> Result<()> {
        if !self.pending.is_empty() {
            self.settle(Settle::Window)?;
        }
        Ok(())
    }

    fn settle(&mut self, why: Settle) -> Result<()> {
        self.vol.force()?;
        self.record_settle(why);
        Ok(())
    }

    /// Folds the just-forced batch into the statistics and opens the
    /// next window.
    fn record_settle(&mut self, why: Settle) {
        match why {
            Settle::Window => self.window_settles += 1,
            Settle::Backpressure => self.backpressure_settles += 1,
            Settle::Explicit => self.explicit_settles += 1,
            Settle::Internal => self.internal_settles += 1,
        }
        let now = self.now();
        self.batch_sizes.push(self.pending.len() as u64);
        for &at in &self.pending {
            self.latencies.push(now.saturating_sub(at));
        }
        self.pending.clear();
        self.window_anchor = now;
    }

    /// The run's aggregate statistics. (Latency covers committed
    /// operations; call [`Self::drain`] first to include the tail.)
    pub fn report(&self) -> SchedReport {
        let log_forces = self.vol.commit_stats().forces - self.baseline.forces;
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let pct = |p: f64| -> Micros {
            if sorted.is_empty() {
                return 0;
            }
            sorted[((p * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1)]
        };
        SchedReport {
            ops: self.ops,
            log_forces,
            forces_per_op: if self.ops == 0 {
                0.0
            } else {
                log_forces as f64 / self.ops as f64
            },
            window_settles: self.window_settles,
            backpressure_settles: self.backpressure_settles,
            explicit_settles: self.explicit_settles,
            internal_settles: self.internal_settles,
            empty_windows: self.empty_windows,
            batch_mean: if self.batch_sizes.is_empty() {
                0.0
            } else {
                self.batch_sizes.iter().sum::<u64>() as f64 / self.batch_sizes.len() as f64
            },
            batch_max: self.batch_sizes.iter().copied().max().unwrap_or(0),
            latency: LatencyStats {
                mean_us: if sorted.is_empty() {
                    0.0
                } else {
                    sorted.iter().sum::<Micros>() as f64 / sorted.len() as f64
                },
                p50_us: pct(0.50),
                p90_us: pct(0.90),
                p99_us: pct(0.99),
                max_us: sorted.last().copied().unwrap_or(0),
            },
        }
    }
}

/// A cloneable, thread-safe handle to one [`CommitScheduler`].
///
/// The scheduler's accounting is inherently serial (one pending batch,
/// one window clock), so the shared form is a mutex around it; what the
/// redesign buys is *ownership*: [`ClientHandle`]s minted from a
/// `SharedScheduler` are owned and `Send` — they can move into spawned
/// threads — instead of mutably borrowing the scheduler as the old
/// `CommitScheduler::client` handles did. (For a pipeline that actually
/// runs clients in parallel, see `crate::FsdEngine`; this type exists
/// for the deterministic simulated-clock driver.)
#[derive(Clone)]
pub struct SharedScheduler {
    inner: std::sync::Arc<std::sync::Mutex<CommitScheduler>>,
}

impl SharedScheduler {
    /// Wraps a scheduler for sharing.
    pub fn new(sched: CommitScheduler) -> Self {
        Self {
            inner: std::sync::Arc::new(std::sync::Mutex::new(sched)),
        }
    }

    /// Mints an owned client handle.
    pub fn handle(&self, id: usize) -> ClientHandle {
        ClientHandle {
            shared: self.clone(),
            id,
        }
    }

    /// Runs `f` with the scheduler locked.
    pub fn with<T>(&self, f: impl FnOnce(&mut CommitScheduler) -> T) -> T {
        let mut guard = match self.inner.lock() {
            Ok(g) => g,
            // Poison only means another client panicked mid-call; the
            // scheduler's state is WAL-protected underneath.
            Err(p) => p.into_inner(),
        };
        f(&mut guard)
    }

    /// Current simulated time.
    pub fn now(&self) -> Micros {
        self.with(|s| s.now())
    }

    /// Operations waiting for the next force.
    pub fn pending_ops(&self) -> usize {
        self.with(|s| s.pending_ops())
    }

    /// See [`CommitScheduler::advance_to`].
    pub fn advance_to(&self, target: Micros) -> Result<()> {
        self.with(|s| s.advance_to(target))
    }

    /// See [`CommitScheduler::force_now`].
    pub fn force_now(&self) -> Result<()> {
        self.with(|s| s.force_now())
    }

    /// See [`CommitScheduler::drain`].
    pub fn drain(&self) -> Result<()> {
        self.with(|s| s.drain())
    }

    /// See [`CommitScheduler::report`].
    pub fn report(&self) -> SchedReport {
        self.with(|s| s.report())
    }

    /// Settles what is pending and hands the volume back. Every
    /// [`ClientHandle`] (and clone) must be dropped first.
    pub fn into_volume(self) -> Result<FsdVolume> {
        match std::sync::Arc::try_unwrap(self.inner) {
            Ok(m) => {
                let sched = match m.into_inner() {
                    Ok(s) => s,
                    Err(p) => p.into_inner(),
                };
                sched.into_volume()
            }
            Err(_) => Err(FsdError::Check(
                "scheduler handles still outstanding".into(),
            )),
        }
    }
}

/// One client's owned [`FileSystem`] view of the scheduled volume:
/// every operation goes through [`CommitScheduler::submit`] and `sync`
/// settles the shared batch. Owned and `Send` — it can cross threads,
/// though operations serialize behind the scheduler's mutex.
#[derive(Clone)]
pub struct ClientHandle {
    shared: SharedScheduler,
    id: usize,
}

impl ClientHandle {
    /// The client's index (reporting only — namespacing is up to the
    /// workload).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The scheduler this handle submits to.
    pub fn scheduler(&self) -> &SharedScheduler {
        &self.shared
    }
}

impl FileSystem for ClientHandle {
    fn kind(&self) -> &'static str {
        "fsd-sched"
    }

    fn create(&self, name: &str, data: &[u8]) -> std::result::Result<FileInfo, CedarFsError> {
        self.shared
            .with(|s| s.submit(|v| FsBackend::create(v, name, data)))
    }

    fn open(&self, name: &str) -> std::result::Result<FileInfo, CedarFsError> {
        self.shared.with(|s| s.submit(|v| FsBackend::open(v, name)))
    }

    fn read(&self, name: &str) -> std::result::Result<Vec<u8>, CedarFsError> {
        self.shared.with(|s| s.submit(|v| FsBackend::read(v, name)))
    }

    fn write(&self, name: &str, data: &[u8]) -> std::result::Result<FileInfo, CedarFsError> {
        self.shared
            .with(|s| s.submit(|v| FsBackend::write(v, name, data)))
    }

    fn delete(&self, name: &str) -> std::result::Result<(), CedarFsError> {
        self.shared
            .with(|s| s.submit(|v| FsBackend::delete(v, name)))
    }

    fn list(&self, prefix: &str) -> std::result::Result<Vec<FileInfo>, CedarFsError> {
        self.shared
            .with(|s| s.submit(|v| FsBackend::list(v, prefix)))
    }

    fn sync(&self) -> std::result::Result<(), CedarFsError> {
        Ok(self.shared.force_now()?)
    }

    fn stats(&self) -> FsStats {
        self.shared.with(|s| FsBackend::stats(s.volume()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FsdConfig;
    use cedar_disk::{CpuModel, SimDisk};

    fn vol(log_sectors: u32) -> FsdVolume {
        FsdVolume::format(
            SimDisk::tiny(),
            FsdConfig {
                nt_pages: 64,
                log_sectors,
                cpu: CpuModel::FREE,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn sched(log_sectors: u32) -> CommitScheduler {
        CommitScheduler::new(vol(log_sectors), SchedConfig::default())
    }

    #[test]
    fn batch_commits_once_at_the_window() {
        let mut s = sched(512);
        for i in 0..10 {
            s.submit(|v| v.create(&format!("d/f{i}"), b"x")).unwrap();
        }
        assert_eq!(s.report().log_forces, 0, "no force before the window");
        assert_eq!(s.pending_ops(), 10);
        let deadline = s.window_anchor + s.window_us;
        s.advance_to(deadline).unwrap();
        let r = s.report();
        assert_eq!(r.log_forces, 1, "one force for the whole batch");
        assert_eq!(r.window_settles, 1);
        assert_eq!(r.batch_max, 10);
        assert_eq!(s.pending_ops(), 0);
        // Latency: first op waited the whole window (minus its own
        // submit offset), later ops less — bounded by the window plus
        // the force's own disk time.
        assert!(r.latency.max_us <= s.window_us + 50_000, "{r:?}");
        assert!(r.latency.p50_us > 0);
    }

    #[test]
    fn empty_windows_do_not_force() {
        let mut s = sched(512);
        s.advance_to(s.now() + 5 * s.window_us).unwrap();
        let r = s.report();
        assert_eq!(r.log_forces, 0);
        assert_eq!(r.empty_windows, 5);
        assert_eq!(r.window_settles, 0);
    }

    #[test]
    fn backpressure_settles_a_full_batch() {
        let mut s = CommitScheduler::new(
            vol(512),
            SchedConfig {
                window_us: 500_000,
                max_batch_ops: 4,
            },
        );
        for i in 0..9 {
            s.submit(|v| v.create(&format!("d/f{i}"), b"x")).unwrap();
        }
        let r = s.report();
        assert_eq!(r.backpressure_settles, 2, "settled at ops 4 and 8");
        assert_eq!(r.log_forces, 2);
        assert_eq!(s.pending_ops(), 1);
    }

    #[test]
    fn bulky_volume_force_is_absorbed() {
        // A tiny log forces internally long before 500 ms; the scheduler
        // must notice and not double-force.
        let mut s = sched(64);
        let threshold = s.volume().bulky_threshold();
        assert!(threshold < 20, "tiny log should have a small threshold");
        for i in 0..40 {
            s.submit(|v| v.create(&format!("d/file{i:02}"), b"data"))
                .unwrap();
        }
        let r = s.report();
        assert!(r.internal_settles >= 1, "{r:?}");
        assert_eq!(
            r.log_forces,
            r.internal_settles + r.window_settles + r.backpressure_settles,
            "every force is attributed: {r:?}"
        );
    }

    #[test]
    fn scheduled_volume_equals_unscheduled() {
        // The same script through the scheduler and through a plain
        // per-op-forced volume must leave identical visible contents.
        let names = ["a/x", "a/y", "b/z", "a/x"];
        let mut plain = vol(512);
        for n in &names {
            plain.create(n, n.as_bytes()).unwrap();
            plain.force().unwrap();
        }
        let mut s = sched(512);
        for n in &names {
            s.submit(|v| v.create(n, n.as_bytes())).unwrap();
        }
        let mut sv = s.into_volume().unwrap();
        for n in ["a/x", "a/y", "b/z"] {
            let a = FsBackend::read(&mut plain, n).unwrap();
            let b = FsBackend::read(&mut sv, n).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(
            FsBackend::list(&mut plain, "").unwrap(),
            FsBackend::list(&mut sv, "").unwrap()
        );
    }

    #[test]
    fn client_handles_share_one_batch() {
        let s = SharedScheduler::new(sched(512));
        s.handle(0).create("c00/f", b"zero").unwrap();
        s.handle(1).create("c01/f", b"one").unwrap();
        assert_eq!(s.pending_ops(), 2);
        s.handle(1).sync().unwrap();
        let r = s.report();
        assert_eq!(r.explicit_settles, 1);
        assert_eq!(r.log_forces, 1, "both clients' ops in one force");
        assert_eq!(r.batch_max, 2);
        assert_eq!(s.handle(0).read("c01/f").unwrap(), b"one");
    }

    #[test]
    fn owned_handles_cross_threads() {
        // The redesign's point: a handle moves into a spawned thread.
        let s = SharedScheduler::new(sched(512));
        let threads: Vec<_> = (0..4)
            .map(|id| {
                let h = s.handle(id);
                std::thread::spawn(move || {
                    for i in 0..8 {
                        h.create(&format!("c{id:02}/f{i}"), b"data").unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        s.drain().unwrap();
        let r = s.report();
        assert_eq!(r.ops, 32);
        assert!(r.log_forces < r.ops, "batching amortized forces: {r:?}");
        let mut vol = s.into_volume().unwrap();
        assert_eq!(FsBackend::list(&mut vol, "").unwrap().len(), 32);
    }

    #[test]
    fn into_volume_refuses_with_outstanding_handles() {
        let s = SharedScheduler::new(sched(512));
        let h = s.handle(0);
        assert!(s.clone().into_volume().is_err());
        drop(h);
        assert!(s.into_volume().is_ok());
    }

    #[test]
    fn report_math_is_consistent() {
        let mut s = sched(512);
        for i in 0..6 {
            s.submit(|v| v.create(&format!("f{i}"), b"d")).unwrap();
            let t = s.now() + 40_000;
            s.advance_to(t).unwrap();
        }
        s.drain().unwrap();
        let r = s.report();
        assert_eq!(r.ops, 6);
        assert!(r.forces_per_op > 0.0 && r.forces_per_op <= 1.0);
        assert!(r.latency.p50_us <= r.latency.p90_us);
        assert!(r.latency.p90_us <= r.latency.p99_us);
        assert!(r.latency.p99_us <= r.latency.max_us);
        assert!(r.batch_mean >= 1.0);
    }
}
