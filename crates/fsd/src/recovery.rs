//! Crash recovery (§5.9): log redo, then (at worst) VAM reconstruction.
//!
//! "Recovery is fast and easy. There are two types of recovery. First, the
//! VAM can be reconstructed using the name table... Second, the file name
//! table and leaders are recovered from the log. The log is a physical
//! redo log and the algorithm to perform recovery is simple. Log records
//! are read and the copies of pages in the log are written to disk.
//! Recovery rarely takes more than two seconds on the current hardware."
//!
//! Table 2's headline: crash recovery drops from 3600+ seconds (the CFS
//! scavenge) to 25 seconds worst case (log redo plus VAM rebuild).
//! Recovery is idempotent — a crash *during* recovery simply means the
//! next boot redoes the same images.

use crate::cache::{FsdNtStore, NtCache, NtMeta};
use crate::layout::{FsdBootPage, FsdLayout};
use crate::log::{self, Log, PageTarget};
use crate::volume::{FsdConfig, FsdVolume};
use crate::{FsdError, Result};
use cedar_btree::BTree;
use cedar_disk::clock::Micros;
use cedar_disk::sched::{self, IoBatch, IoOp, IoPolicy};
use cedar_disk::{Cpu, SimDisk};
use cedar_vol::{AllocPolicy, Allocator, Run, Vam};
use std::collections::{BTreeSet, HashMap};

/// What boot-time recovery did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Log records replayed.
    pub records_replayed: u64,
    /// Sector images written back to their homes.
    pub images_redone: u64,
    /// Whether the VAM had to be reconstructed from the name table
    /// (`false` means a properly saved VAM was loaded).
    pub vam_reconstructed: bool,
    /// Files walked during VAM reconstruction.
    pub files_scanned: u64,
    /// Simulated time spent on log redo.
    pub redo_us: Micros,
    /// Simulated time spent loading or reconstructing the VAM.
    pub vam_us: Micros,
}

impl RecoveryReport {
    /// Total recovery time.
    pub fn total_us(&self) -> Micros {
        self.redo_us + self.vam_us
    }
}

impl FsdVolume {
    /// Boots an FSD volume: replays the log, then loads or reconstructs
    /// the VAM. This is the whole of FSD crash recovery.
    pub fn boot(disk: SimDisk, config: FsdConfig) -> Result<(FsdVolume, RecoveryReport)> {
        Self::try_boot(disk, config).map_err(|(e, _)| e)
    }

    /// Like [`Self::boot`], but returns the disk alongside the error when
    /// recovery itself is interrupted (e.g. by a crash mid-redo) — the
    /// platters survive a power cycle, so the caller can boot again.
    // The Err variant intentionally hands the (large) SimDisk back to
    // the caller: the platters survive a power cycle mid-recovery.
    #[allow(clippy::result_large_err)]
    pub fn try_boot(
        mut disk: SimDisk,
        config: FsdConfig,
    ) -> std::result::Result<(FsdVolume, RecoveryReport), (FsdError, SimDisk)> {
        let layout = FsdLayout::compute(disk.geometry(), config.nt_pages, config.log_sectors);
        let cpu = Cpu::new(disk.clock(), config.cpu);
        let mut report = RecoveryReport::default();

        let (boot, vam_was_valid) =
            match redo_phase(&mut disk, &layout, &cpu, config.io_policy, &mut report) {
                Ok(x) => x,
                Err(e) => return Err((e, disk)),
            };

        let (dlo, dhi) = layout.data_area();
        let mut log = match Log::fresh(layout.log_start, layout.log_sectors, boot.boot_count) {
            Ok(log) => log,
            Err(e) => return Err((e, disk)),
        };
        log.set_policy(config.io_policy);
        let mut vol = FsdVolume {
            log,
            disk,
            cpu,
            layout,
            boot,
            tree: BTree::open(0),
            cache: NtCache::with_capacity(config.cache_pages),
            pending_pages: BTreeSet::new(),
            leaders: HashMap::new(),
            vam: Vam::new_all_allocated(layout.total_sectors),
            alloc: Allocator::new(
                AllocPolicy::SplitAreas {
                    small_threshold: config.small_threshold,
                },
                dlo,
                dhi,
            ),
            uid_counter: 0,
            last_force: 0,
            commit_interval: config.commit_interval_us,
            vam_hint_on_disk: false,
            commit_stats: Default::default(),
            vam_baseline: None,
            vam_home: HashMap::new(),
            io_policy: config.io_policy,
        };
        vol.last_force = vol.clock().now();

        match vol.finish_boot(vam_was_valid, &mut report) {
            Ok(()) => Ok((vol, report)),
            Err(e) => Err((e, vol.into_disk())),
        }
    }

    /// Phase 2: reattach the tree and establish the VAM.
    fn finish_boot(&mut self, vam_was_valid: bool, report: &mut RecoveryReport) -> Result<()> {
        let root = {
            let mut store = FsdNtStore {
                disk: &mut self.disk,
                cpu: &self.cpu,
                layout: &self.layout,
                cache: &mut self.cache,
                pending: &mut self.pending_pages,
            };
            let raw = store
                .read_through(0)
                .map_err(cedar_btree::BTreeError::Store)?;
            NtMeta::decode(&raw).map_err(FsdError::Check)?.root
        };
        self.tree = BTree::open(root);

        let t1 = self.clock().now();
        // Under the §5.3 VAM-logging extension the save area is a base
        // image the redo sweep just patched: it is current as of the last
        // commit whether or not the shutdown was clean.
        let trust_saved = vam_was_valid || self.boot.vam_logged;
        let mut need_rebuild = !trust_saved;
        if trust_saved {
            match read_saved_vam(&mut self.disk, &self.layout) {
                Ok(vam) => self.vam = vam,
                Err(e) if e.is_crash() => return Err(e),
                // §5.8, error class 4: "the VAM can have disk errors;
                // these are recovered by reconstructing the VAM."
                Err(_) => need_rebuild = true,
            }
        }
        if need_rebuild {
            report.vam_reconstructed = true;
            report.files_scanned = self.reconstruct_vam()?;
        }
        if self.boot.vam_logged {
            // New log epoch: write a fresh base image and restart the
            // delta chain from it.
            self.save_vam_and_mark_valid()?;
            self.vam_baseline = Some(self.padded_vam_bytes());
        }
        report.vam_us = self.clock().now() - t1;
        Ok(())
    }

    /// Rebuilds the VAM by walking the name table: everything in the data
    /// area is free except the pages the entries claim (§5.5).
    fn reconstruct_vam(&mut self) -> Result<u64> {
        let mut vam = Vam::new_all_allocated(self.layout.total_sectors);
        vam.free_run(Run::new(
            self.layout.small_start,
            self.layout.nt_a_start - self.layout.small_start,
        ));
        vam.free_run(Run::new(
            self.layout.central_end,
            self.layout.total_sectors - self.layout.central_end,
        ));
        let mut entries: Vec<Vec<u8>> = Vec::new();
        let tree = self.tree;
        {
            let mut store = FsdNtStore {
                disk: &mut self.disk,
                cpu: &self.cpu,
                layout: &self.layout,
                cache: &mut self.cache,
                pending: &mut self.pending_pages,
            };
            tree.for_each(&mut store, &mut |_, v| {
                entries.push(v.to_vec());
                true
            })?;
        }
        let files = entries.len() as u64;
        self.cpu.entries(files);
        for raw in entries {
            let entry = crate::entry::FileEntry::decode(&raw)?;
            if entry.leader_addr != 0 {
                vam.allocate_run(Run::new(entry.leader_addr, 1));
            }
            for r in entry.run_table.runs() {
                vam.allocate_run(*r);
            }
        }
        self.vam = vam;
        Ok(files)
    }
}

/// Phase 1: read the boot page, replay the log, start a new epoch.
fn redo_phase(
    disk: &mut SimDisk,
    layout: &FsdLayout,
    cpu: &Cpu,
    policy: IoPolicy,
    report: &mut RecoveryReport,
) -> Result<(FsdBootPage, bool)> {
    let t0 = disk.clock().now();

    // Boot page: copy A, falling back to copy B (§5.8, error class 5).
    let mut boot = read_boot_page(disk, layout)?;

    // Log redo: read the chain from the replicated meta pointer, compute
    // the final image of every touched sector in memory (records are in
    // sequence order, so the last image of a sector wins), then write
    // everything home in one sorted sweep with contiguous sectors merged
    // into single transfers. This is what keeps redo under two seconds.
    let meta = Log::read_meta(disk, layout.log_start)?;
    let records = log::scan_records(disk, layout.log_start, layout.log_sectors, &meta)?;
    let mut final_images: std::collections::BTreeMap<u32, Vec<u8>> =
        std::collections::BTreeMap::new();
    for rec in &records {
        for (target, img) in &rec.images {
            match target {
                PageTarget::NtSector { page, sector } => {
                    final_images.insert(layout.nt_a_sector(*page) + sector, img.clone());
                    final_images.insert(layout.nt_b_sector(*page) + sector, img.clone());
                }
                PageTarget::Leader { addr } => {
                    final_images.insert(*addr, img.clone());
                }
                PageTarget::VamSector { index } => {
                    final_images.insert(layout.vam_a + index, img.clone());
                    final_images.insert(layout.vam_b + index, img.clone());
                }
            }
            report.images_redone += 1;
        }
        cpu.sectors(rec.images.len() as u64);
    }
    report.records_replayed = records.len() as u64;
    if !final_images.is_empty() {
        // One write per sector, one window: the addresses are unique, the
        // map iterates in sorted order, and the scheduler coalesces
        // contiguous runs into single transfers.
        let mut redo = IoBatch::new();
        for (addr, img) in &final_images {
            redo.push(IoOp::Write {
                start: *addr,
                data: img.clone(),
            });
        }
        sched::execute(disk, policy, &redo)?;
    }

    // New epoch: bump the boot count, clear the VAM flag on disk, and
    // start a fresh (empty) log — the homes are now current. The redo
    // sweep above was submitted separately, so it is durable before the
    // boot pages change.
    let vam_was_valid = boot.vam_valid;
    boot.boot_count += 1;
    boot.vam_valid = false;
    crate::layout::write_replicas(disk, policy, layout.boot_a, layout.boot_b, boot.encode())?;
    let mut fresh = Log::fresh(layout.log_start, layout.log_sectors, boot.boot_count)?;
    fresh.set_policy(policy);
    fresh.write_meta(disk)?;
    report.redo_us = disk.clock().now() - t0;
    Ok((boot, vam_was_valid))
}

/// Reads the boot page, preferring copy A.
fn read_boot_page(disk: &mut SimDisk, layout: &FsdLayout) -> Result<FsdBootPage> {
    for addr in [layout.boot_a, layout.boot_b] {
        match disk.read(addr, 1) {
            Ok(bytes) => {
                if let Ok(b) = FsdBootPage::decode(&bytes) {
                    return Ok(b);
                }
            }
            Err(cedar_disk::DiskError::Crashed) => {
                return Err(FsdError::Disk(cedar_disk::DiskError::Crashed))
            }
            Err(_) => continue,
        }
    }
    Err(FsdError::Check("both boot page copies unreadable".into()))
}

/// Reads the saved VAM, falling back to its replica.
fn read_saved_vam(disk: &mut SimDisk, layout: &FsdLayout) -> Result<Vam> {
    for addr in [layout.vam_a, layout.vam_b] {
        match disk.read(addr, layout.vam_sectors as usize) {
            Ok(bytes) => {
                if let Ok(v) = Vam::from_bytes(&bytes) {
                    return Ok(v);
                }
            }
            Err(cedar_disk::DiskError::Crashed) => {
                return Err(FsdError::Disk(cedar_disk::DiskError::Crashed))
            }
            Err(_) => continue,
        }
    }
    Err(FsdError::Check("both VAM save copies unreadable".into()))
}
