//! Crash recovery (§5.9): log redo, then (at worst) VAM reconstruction.
//!
//! "Recovery is fast and easy. There are two types of recovery. First, the
//! VAM can be reconstructed using the name table... Second, the file name
//! table and leaders are recovered from the log. The log is a physical
//! redo log and the algorithm to perform recovery is simple. Log records
//! are read and the copies of pages in the log are written to disk.
//! Recovery rarely takes more than two seconds on the current hardware."
//!
//! Table 2's headline: crash recovery drops from 3600+ seconds (the CFS
//! scavenge) to 25 seconds worst case (log redo plus VAM rebuild).
//! Recovery is idempotent — a crash *during* recovery simply means the
//! next boot redoes the same images.
//!
//! # The escalation ladder
//!
//! Media faults (§5.8) escalate recovery through three rungs, reported in
//! [`RecoveryReport::rung`]:
//!
//! 1. **Redo** — the plain log replay above; every structure read clean.
//! 2. **Replica scrub** — some replicated structure (boot page, log meta,
//!    log record sector, saved VAM, name-table page) had a damaged copy.
//!    The survivor serves the read and the damaged copy is rewritten from
//!    it; a sector that stays bad after the rewrite is remapped into the
//!    spare region ([`crate::spare::SpareMap`]).
//! 3. **Scavenge** — the log (or the name table it protects) is beyond
//!    replica repair. The volume is rebuilt from leader pages alone
//!    ([`crate::scavenge`]), the way CFS recovered from hardware labels.
use crate::cache::{FsdNtStore, NtCache, NtMeta};
use crate::layout::{FsdBootPage, FsdLayout};
use crate::leader::LeaderPage;
use crate::log::{self, Log, PageTarget};
use crate::scavenge::{self, ScavengeSummary};
use crate::spare::{self, SpareMap};
use crate::volume::{FsdConfig, FsdVolume};
use crate::{FsdError, Result};
use cedar_btree::BTree;
use cedar_disk::clock::Micros;
use cedar_disk::sched::{self, IoBatch, IoOp, IoPolicy, OpResult};
use cedar_disk::{Cpu, SectorAddr, SimDisk, SECTOR_BYTES};
use cedar_vol::{AllocPolicy, Allocator, Run, Vam};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The highest recovery rung a boot had to climb to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecoveryRung {
    /// Plain log redo; every structure read clean.
    #[default]
    Redo,
    /// At least one replicated structure was repaired from its survivor
    /// copy (scrubbed in place or remapped to a spare sector).
    ReplicaScrub,
    /// The log was beyond replica repair: the volume was rebuilt from
    /// leader pages.
    Scavenge,
}

/// What boot-time recovery did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Log records replayed.
    pub records_replayed: u64,
    /// Sector images written back to their homes.
    pub images_redone: u64,
    /// Whether the VAM had to be reconstructed from the name table
    /// (`false` means a properly saved VAM was loaded).
    pub vam_reconstructed: bool,
    /// Files walked during VAM reconstruction.
    pub files_scanned: u64,
    /// Simulated time spent on log redo.
    pub redo_us: Micros,
    /// Simulated time spent loading or reconstructing the VAM.
    pub vam_us: Micros,
    /// The highest rung of the escalation ladder this boot reached.
    pub rung: RecoveryRung,
    /// Damaged sectors rewritten in place from a surviving replica.
    pub scrubbed_sectors: u64,
    /// Permanently bad sectors remapped into the spare region.
    pub remapped_sectors: u64,
    /// Simulated time spent scavenging (rung 3 only).
    pub scavenge_us: Micros,
    /// What the scavenger found and lost (rung 3 only).
    pub scavenge: Option<ScavengeSummary>,
}

impl RecoveryReport {
    /// Total recovery time.
    pub fn total_us(&self) -> Micros {
        self.redo_us + self.vam_us + self.scavenge_us
    }
}

impl FsdVolume {
    /// Boots an FSD volume: replays the log, then loads or reconstructs
    /// the VAM — escalating to a replica scrub or a full scavenge when
    /// the media demands it. This is the whole of FSD crash recovery.
    pub fn boot(disk: SimDisk, config: FsdConfig) -> Result<(FsdVolume, RecoveryReport)> {
        Self::try_boot(disk, config).map_err(|(e, _)| e)
    }

    /// Like [`Self::boot`], but returns the disk alongside the error when
    /// recovery itself is interrupted (e.g. by a crash mid-redo) — the
    /// platters survive a power cycle, so the caller can boot again.
    // The Err variant intentionally hands the (large) SimDisk back to
    // the caller: the platters survive a power cycle mid-recovery.
    #[allow(clippy::result_large_err)]
    pub fn try_boot(
        mut disk: SimDisk,
        config: FsdConfig,
    ) -> std::result::Result<(FsdVolume, RecoveryReport), (FsdError, SimDisk)> {
        let layout = FsdLayout::compute(disk.geometry(), config.nt_pages, config.log_sectors);
        let cpu = Cpu::new(disk.clock(), config.cpu);
        let mut report = RecoveryReport::default();

        let (boot, vam_was_valid, spare) =
            match redo_phase(&mut disk, &layout, &cpu, config.io_policy, &mut report) {
                Ok(x) => x,
                Err(e) if e.is_crash() => return Err((e, disk)),
                // Rung 3: the log chain (or a structure it needs) is
                // beyond replica repair — rebuild from leader pages.
                Err(e) => return scavenge::scavenge_boot(disk, config, report, e),
            };

        let (dlo, dhi) = layout.data_area();
        let mut log = match Log::fresh(layout.log_start, layout.log_sectors, boot.boot_count) {
            Ok(log) => log,
            Err(e) => return Err((e, disk)),
        };
        log.set_policy(config.io_policy);
        let mut vol = FsdVolume {
            log,
            disk,
            cpu,
            layout,
            boot,
            tree: BTree::open(0),
            cache: NtCache::with_capacity(config.cache_pages),
            pending_pages: BTreeSet::new(),
            leaders: HashMap::new(),
            vam: Vam::new_all_allocated(layout.total_sectors),
            alloc: Allocator::new(
                AllocPolicy::SplitAreas {
                    small_threshold: config.small_threshold,
                },
                dlo,
                dhi,
            ),
            uid_counter: 0,
            last_force: 0,
            commit_interval: config.commit_interval_us,
            vam_hint_on_disk: false,
            commit_stats: Default::default(),
            vam_baseline: None,
            vam_home: HashMap::new(),
            io_policy: config.io_policy,
            spare,
            repl: None,
        };
        vol.last_force = vol.clock().now();

        match vol.finish_boot(vam_was_valid, config.scavenge_workers, &mut report) {
            Ok(()) => {
                report.scrubbed_sectors += vol.spare.scrubbed;
                report.remapped_sectors += vol.spare.remapped;
                if report.scrubbed_sectors + report.remapped_sectors > 0 {
                    report.rung = RecoveryRung::ReplicaScrub;
                }
                Ok((vol, report))
            }
            Err(e) if e.is_crash() => Err((e, vol.into_disk())),
            // Rung 3 from phase 2: the name table itself (needed for the
            // VAM rebuild) is beyond replica repair.
            Err(e) => scavenge::scavenge_boot(vol.into_disk(), config, report, e),
        }
    }

    /// Phase 2: reattach the tree and establish the VAM.
    fn finish_boot(
        &mut self,
        vam_was_valid: bool,
        workers: usize,
        report: &mut RecoveryReport,
    ) -> Result<()> {
        let root = {
            let mut store = FsdNtStore {
                disk: &mut self.disk,
                cpu: &self.cpu,
                layout: &self.layout,
                policy: self.io_policy,
                spare: &mut self.spare,
                cache: &mut self.cache,
                pending: &mut self.pending_pages,
            };
            let raw = store
                .read_through(0)
                .map_err(cedar_btree::BTreeError::Store)?;
            NtMeta::decode_root(&raw).map_err(FsdError::Check)?
        };
        self.tree = BTree::open(root);

        let t1 = self.clock().now();
        // Under the §5.3 VAM-logging extension the save area is a base
        // image the redo sweep just patched: it is current as of the last
        // commit whether or not the shutdown was clean.
        let trust_saved = vam_was_valid || self.boot.vam_logged;
        let mut need_rebuild = !trust_saved;
        if trust_saved {
            match read_saved_vam(
                &mut self.disk,
                &self.layout,
                self.io_policy,
                &mut self.spare,
            ) {
                Ok(vam) => self.vam = vam,
                Err(e) if e.is_crash() => return Err(e),
                // §5.8, error class 4: "the VAM can have disk errors;
                // these are recovered by reconstructing the VAM."
                Err(_) => need_rebuild = true,
            }
        }
        if need_rebuild {
            report.vam_reconstructed = true;
            report.files_scanned = self.reconstruct_vam(workers)?;
        }
        if self.boot.vam_logged {
            // New log epoch: write a fresh base image and restart the
            // delta chain from it.
            self.save_vam_and_mark_valid()?;
            self.vam_baseline = Some(self.padded_vam_bytes());
        }
        report.vam_us = self.clock().now() - t1;
        Ok(())
    }

    /// Rebuilds the VAM by walking the name table: everything in the data
    /// area is free except the pages the entries claim (§5.5).
    ///
    /// The tree walk is serial — it owns the spindle — but with
    /// `workers > 1` the entry decoding shards across CPU workers, each
    /// building a partial claimed-sector bitmap; the shards merge with a
    /// word-level OR and subtract from the base free map, which is
    /// bit-identical to the serial allocate-per-run loop.
    fn reconstruct_vam(&mut self, workers: usize) -> Result<u64> {
        let mut vam = Vam::new_all_allocated(self.layout.total_sectors);
        vam.free_run(Run::new(
            self.layout.small_start,
            self.layout.nt_a_start - self.layout.small_start,
        ));
        vam.free_run(Run::new(
            self.layout.central_end,
            self.layout.total_sectors - self.layout.central_end,
        ));
        let mut entries: Vec<Vec<u8>> = Vec::new();
        let tree = self.tree;
        {
            let mut store = FsdNtStore {
                disk: &mut self.disk,
                cpu: &self.cpu,
                layout: &self.layout,
                policy: self.io_policy,
                spare: &mut self.spare,
                cache: &mut self.cache,
                pending: &mut self.pending_pages,
            };
            // Batch-read the whole allocated table up front: the walk
            // then runs from the cache instead of paying two seek+rotate
            // round trips per page.
            let meta = store.read_meta().map_err(cedar_btree::BTreeError::Store)?;
            let in_use: Vec<u32> = (0..self.layout.nt_pages)
                .filter(|&p| meta.in_use(p))
                .collect();
            store
                .prefetch_pages(&in_use)
                .map_err(cedar_btree::BTreeError::Store)?;
            tree.for_each(&mut store, &mut |_, v| {
                entries.push(v.to_vec());
                true
            })?;
        }
        let files = entries.len() as u64;
        if workers <= 1 || entries.is_empty() {
            self.cpu.entries(files);
            for raw in entries {
                let entry = crate::entry::FileEntry::decode(&raw)?;
                if entry.leader_addr != 0 {
                    vam.allocate_run(Run::new(entry.leader_addr, 1));
                }
                for r in entry.run_table.runs() {
                    vam.allocate_run(*r);
                }
            }
        } else {
            let t0 = self.clock().now();
            let total_sectors = self.layout.total_sectors;
            let shard_len = entries.len().div_ceil(workers);
            let cpu = &self.cpu;
            let shards: Vec<Result<(Vam, cedar_disk::clock::Micros)>> = std::thread::scope(|s| {
                let handles: Vec<_> = entries
                    .chunks(shard_len)
                    .map(|shard| {
                        let mut wcpu = cpu.worker();
                        s.spawn(move || {
                            let mut claimed = Vam::new_all_allocated(total_sectors);
                            wcpu.entries(shard.len() as u64);
                            for raw in shard {
                                let entry = crate::entry::FileEntry::decode(raw)?;
                                if entry.leader_addr != 0 {
                                    claimed.free_run(Run::new(entry.leader_addr, 1));
                                }
                                for r in entry.run_table.runs() {
                                    claimed.free_run(*r);
                                }
                            }
                            Ok((claimed, wcpu.into_us()))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join()
                            .unwrap_or(Err(FsdError::Check("VAM rebuild worker died".into())))
                    })
                    .collect()
            });
            let mut claimed = Vam::new_all_allocated(total_sectors);
            let mut worker_us = Vec::with_capacity(shards.len());
            let mut first_err = None;
            for shard in shards {
                match shard {
                    Ok((part, us)) => {
                        claimed.merge_or(&part);
                        worker_us.push(us);
                    }
                    Err(e) => first_err = first_err.or(Some(e)),
                }
            }
            self.cpu.join_parallel(t0, &worker_us);
            if let Some(e) = first_err {
                return Err(e);
            }
            vam.subtract(&claimed);
        }
        self.vam = vam;
        Ok(files)
    }
}

/// Phase 1: read the boot page, replay the log, start a new epoch.
fn redo_phase(
    disk: &mut SimDisk,
    layout: &FsdLayout,
    cpu: &Cpu,
    policy: IoPolicy,
    report: &mut RecoveryReport,
) -> Result<(FsdBootPage, bool, SpareMap)> {
    let t0 = disk.clock().now();

    // Boot page: copy A, falling back to copy B (§5.8, error class 5),
    // scrubbing a damaged copy back from the survivor. The remap table
    // lives here, so it is available before any other structure is read.
    let mut boot = read_boot_page(disk, layout, report)?;
    let mut spare = SpareMap::with_entries(layout, &boot.spare_map);

    // Log redo: read the chain from the replicated meta pointer, compute
    // the final image of every touched sector in memory (records are in
    // sequence order, so the last image of a sector wins), then write
    // everything home in one sorted sweep with contiguous sectors merged
    // into single transfers. This is what keeps redo under two seconds.
    let meta = Log::read_meta(disk, policy, &mut spare, layout.log_start)?;
    let records = log::scan_records(disk, layout.log_start, layout.log_sectors, &spare, &meta)?;
    let mut final_images: BTreeMap<u32, Vec<u8>> = BTreeMap::new();
    let mut leader_images: BTreeMap<u32, Vec<u8>> = BTreeMap::new();
    for rec in &records {
        for (target, img) in &rec.images {
            // Targets are four bytes off a log sector whose checksum
            // covers transmission damage, not a hostile image: an
            // impossible page/address must escalate to the scavenger
            // rather than panic in address math or write outside the
            // region the record claims (§5.8, error class 2).
            target.validate(layout)?;
            match target {
                PageTarget::NtSector { page, sector } => {
                    final_images.insert(layout.nt_a_sector(*page) + sector, img.clone());
                    final_images.insert(layout.nt_b_sector(*page) + sector, img.clone());
                }
                PageTarget::Leader { addr } => {
                    leader_images.insert(*addr, img.clone());
                }
                PageTarget::VamSector { index } => {
                    final_images.insert(layout.vam_a + index, img.clone());
                    final_images.insert(layout.vam_b + index, img.clone());
                }
            }
            report.images_redone += 1;
        }
        cpu.sectors(rec.images.len() as u64);
    }
    report.records_replayed = records.len() as u64;
    if !final_images.is_empty() {
        // One write per sector, one window: the addresses are unique, the
        // map iterates in sorted order, and the scheduler coalesces
        // contiguous runs into single transfers.
        spare::write_home_batch(disk, policy, &mut spare, final_images.into_iter().collect())?;
    }
    redo_leaders(disk, policy, &spare, leader_images)?;

    // New epoch: bump the boot count, clear the VAM flag on disk, record
    // any sectors the sweep remapped, and start a fresh (empty) log — the
    // homes are now current. The redo sweep above was submitted
    // separately, so it is durable before the boot pages change.
    let vam_was_valid = boot.vam_valid;
    boot.boot_count += 1;
    boot.vam_valid = false;
    boot.spare_map = spare.entries().to_vec();
    spare.take_dirty();
    crate::layout::write_replicas(disk, policy, layout.boot_a, layout.boot_b, boot.encode())?;
    let mut fresh = Log::fresh(layout.log_start, layout.log_sectors, boot.boot_count)?;
    fresh.set_policy(policy);
    fresh.write_meta(disk, &mut spare)?;
    report.redo_us = disk.clock().now() - t0;
    Ok((boot, vam_was_valid, spare))
}

/// Applies logged leader images to their home sectors, best-effort.
///
/// Two guards protect sectors the log no longer speaks for:
///
/// * a home sector that decodes as a leader with a *newer* uid was
///   reallocated and rewritten after this record was logged — skip;
/// * a home sector that no longer decodes as a leader at all was
///   reallocated as a **data** page (data writes are synchronous and
///   never logged) — applying the stale leader would clobber it — skip.
///
/// And because the leader is a cross-check, "not ... needed for
/// operation" (§5.2), a data-area sector that stays bad under the
/// rewrite loses the check, never the boot: unlike the metadata sweep,
/// persistent failures here are dropped, not escalated.
fn redo_leaders(
    disk: &mut SimDisk,
    policy: IoPolicy,
    spare: &SpareMap,
    images: BTreeMap<u32, Vec<u8>>,
) -> Result<()> {
    let mut writes: Vec<(SectorAddr, Vec<u8>)> = Vec::new();
    for (addr, img) in images {
        let (bytes, mask) = spare
            .read_allow_damage(disk, addr, 1)
            .map_err(FsdError::Disk)?;
        let apply = if mask[0] {
            true // Damaged home: the logged image is the only copy left.
        } else {
            match (LeaderPage::decode(&bytes), LeaderPage::decode(&img)) {
                (Ok(home), Ok(logged)) => logged.uid >= home.uid,
                (Ok(_), Err(_)) => true,
                (Err(_), _) => false, // Reallocated as a data page.
            }
        };
        if apply {
            writes.push((addr, img));
        }
    }
    for _ in 0..2 {
        if writes.is_empty() {
            return Ok(());
        }
        let mut batch = IoBatch::new();
        let idxs: Vec<usize> = writes
            .iter()
            .map(|(addr, img)| {
                batch.push(IoOp::Write {
                    start: *addr,
                    data: img.clone(),
                })
            })
            .collect();
        let results = sched::execute_partial(disk, policy, &batch)?;
        let mut keep = Vec::new();
        for (w, idx) in writes.into_iter().zip(idxs) {
            if !matches!(results[idx], OpResult::Ok(_)) {
                keep.push(w);
            }
        }
        writes = keep;
    }
    Ok(())
}

/// Reads the boot page, preferring copy A and scrubbing a damaged copy
/// back from the survivor. Boot pages sit outside the remappable ranges
/// (the map must be readable before it can be applied), so replication
/// is their only defence: a scrub rewrite that fails too is dropped.
fn read_boot_page(
    disk: &mut SimDisk,
    layout: &FsdLayout,
    report: &mut RecoveryReport,
) -> Result<FsdBootPage> {
    let mut good: Option<FsdBootPage> = None;
    let mut bad: Vec<SectorAddr> = Vec::new();
    for addr in [layout.boot_a, layout.boot_b] {
        match disk.read(addr, 1) {
            Ok(bytes) => match FsdBootPage::decode(&bytes) {
                Ok(b) => {
                    if good.is_none() {
                        good = Some(b);
                    }
                }
                Err(_) => bad.push(addr),
            },
            Err(cedar_disk::DiskError::Crashed) => {
                return Err(FsdError::Disk(cedar_disk::DiskError::Crashed))
            }
            Err(_) => bad.push(addr),
        }
    }
    let Some(boot) = good else {
        return Err(FsdError::Check("both boot page copies unreadable".into()));
    };
    if !bad.is_empty() {
        let bytes = boot.encode();
        for addr in bad {
            match disk.write(addr, &bytes) {
                Ok(()) => report.scrubbed_sectors += 1,
                Err(cedar_disk::DiskError::Crashed) => {
                    return Err(FsdError::Disk(cedar_disk::DiskError::Crashed))
                }
                Err(_) => {}
            }
        }
    }
    Ok(boot)
}

/// Reads the saved VAM: per-sector cross-copy salvage (a sector damaged
/// in one copy is taken from the other), then a scrub writing damaged
/// sectors back from the survivor image.
fn read_saved_vam(
    disk: &mut SimDisk,
    layout: &FsdLayout,
    policy: IoPolicy,
    spare: &mut SpareMap,
) -> Result<Vam> {
    let n = layout.vam_sectors as usize;
    let (a, am) = spare
        .read_allow_damage(disk, layout.vam_a, n)
        .map_err(FsdError::Disk)?;
    let (b, bm) = spare
        .read_allow_damage(disk, layout.vam_b, n)
        .map_err(FsdError::Disk)?;
    // Both reads asked for `n` sectors; a short buffer or mask would
    // slice out of bounds in the splice below.
    if a.len() != n * SECTOR_BYTES || am.len() != n || b.len() != n * SECTOR_BYTES || bm.len() != n
    {
        return Err(FsdError::Check(
            "vam save read returned a malformed buffer".into(),
        ));
    }
    // Prefer a whole clean copy; otherwise splice the readable sectors
    // (both copies are written from one image in one window, so any mix
    // that passes the checksum is that committed image).
    let mut candidates: Vec<Vec<u8>> = Vec::new();
    if !am.iter().any(|&d| d) {
        candidates.push(a.clone());
    }
    if !bm.iter().any(|&d| d) {
        candidates.push(b.clone());
    }
    if am.iter().zip(&bm).all(|(&x, &y)| !x || !y) {
        let mut mix = a.clone();
        for (i, &damaged) in am.iter().enumerate() {
            let range = i * SECTOR_BYTES..(i + 1) * SECTOR_BYTES;
            if damaged {
                mix[range.clone()].copy_from_slice(&b[range]);
            }
        }
        candidates.push(mix);
    }
    let mut chosen: Option<(Vam, Vec<u8>)> = None;
    for c in candidates {
        if let Ok(v) = Vam::from_bytes(&c) {
            chosen = Some((v, c));
            break;
        }
    }
    let Some((vam, image)) = chosen else {
        return Err(FsdError::Check("both VAM save copies unreadable".into()));
    };
    // Scrub every damaged save-area sector back from the chosen image.
    let mut writes: Vec<(SectorAddr, Vec<u8>)> = Vec::new();
    for i in 0..n {
        let range = i * SECTOR_BYTES..(i + 1) * SECTOR_BYTES;
        if am[i] {
            spare.note_damaged(layout.vam_a + i as u32);
            writes.push((layout.vam_a + i as u32, image[range.clone()].to_vec()));
        }
        if bm[i] {
            spare.note_damaged(layout.vam_b + i as u32);
            writes.push((layout.vam_b + i as u32, image[range].to_vec()));
        }
    }
    if let Err(e) = spare::scrub_batch(disk, policy, spare, writes) {
        if e.is_crash() {
            return Err(e);
        }
        // Spare slots exhausted: the damage stays, but the image is in
        // hand and the caller can still rebuild the VAM if it worsens.
    }
    Ok(vam)
}
