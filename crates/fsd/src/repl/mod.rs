//! Log-shipping replication (ROADMAP open item 1).
//!
//! The paper's physical redo log is a complete, self-describing record of
//! every committed *metadata* change — which makes it a replication
//! stream for free. But FSD writes file **data** pages synchronously,
//! direct to disk, and never logs them (§5.2), so a faithful replication
//! stream must carry two currents:
//!
//! * the sealed log records of each group commit (name-table sectors,
//!   leader images, optionally VAM sectors), re-encoded in their exact
//!   `2n + 5` on-disk form; and
//! * the raw data-area sector writes since the previous commit, drained
//!   from the [`cedar_disk::SimDisk`] write journal.
//!
//! One successful [`crate::FsdVolume::force`] seals one [`ReplFrame`]
//! holding both. Frames are strictly ordered by id; the replica applies
//! them with continuous redo (the same write discipline as boot-time
//! recovery) and refuses gaps, which is what makes the catch-up resync
//! protocol ([`ReplSession::resync`]) sound.
//!
//! Three acknowledgement modes ([`ReplMode`]) give the classic
//! durability/latency trade (the FITO-style contract table lives in
//! DESIGN.md "Replication and failover"):
//!
//! | mode | ack point | acknowledged-loss bound on primary failure |
//! |------|-----------|--------------------------------------------|
//! | `Sync` | replica **applied** (forced) | zero |
//! | `SemiSync` | replica **received** | zero (loss requires both machines failing) |
//! | `Async` | primary force only | ≤ configured `max_lag_frames` commits |
//!
//! Module map: [`replica`] is the receiving volume and its redo engine,
//! [`session`] is the deterministic single-threaded driver used by the
//! bench and fault campaign, [`shipper`] is the background thread the
//! concurrent [`crate::FsdEngine`] hands sealed frames to.

pub mod replica;
pub mod session;
pub mod shipper;

pub use replica::{Replica, ReplicaStats};
pub use session::{FailoverOutcome, ReplSession, ReplSessionConfig, ResyncKind, ResyncOutcome};
pub use shipper::{ReplHandle, ShipperConfig, ShipperStats};

use cedar_disk::Label;

/// When the primary acknowledges a commit to its clients.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplMode {
    /// Ack after the replica has *applied* (forced) the frame: zero
    /// acknowledged loss even if the primary's disk is destroyed.
    Sync,
    /// Ack after the replica has *received* the frame into its buffer:
    /// an acknowledged write survives any single-machine failure.
    SemiSync,
    /// Ack after the primary's own force; frames ship in the background
    /// with lag bounded by [`ReplSessionConfig::max_lag_frames`].
    Async,
}

impl ReplMode {
    /// Short stable name used in bench output and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Sync => "sync",
            Self::SemiSync => "semi_sync",
            Self::Async => "async",
        }
    }

    /// All modes, in contract-strength order.
    pub const ALL: [ReplMode; 3] = [ReplMode::Sync, ReplMode::SemiSync, ReplMode::Async];
}

/// One raw sector write mirrored from the primary's write journal. The
/// address is *physical* (post-remap): the replica's disk is a physical
/// clone of the primary's, so no translation is needed on apply.
#[derive(Clone, Debug)]
pub struct DataWrite {
    /// Physical sector address on the (cloned) volume.
    pub addr: u32,
    /// New sector contents, if the data field was written.
    pub data: Option<Vec<u8>>,
    /// New label, if the label field was written.
    pub label: Option<Label>,
}

/// One replication frame: everything one successful group commit (or a
/// data-only interval between commits) changed on the primary's disk,
/// minus the log region itself (the replica keeps its own log).
#[derive(Clone, Debug)]
pub struct ReplFrame {
    /// Monotonic frame id, starting at 1; the replica refuses gaps.
    pub id: u64,
    /// Sequence number of the first sealed record (0 if `records` empty).
    pub first_seq: u64,
    /// Sequence number of the last sealed record (0 if `records` empty).
    pub last_seq: u64,
    /// Sealed log records in their exact `2n + 5` sector byte form.
    pub records: Vec<Vec<u8>>,
    /// Raw data-area (and boot-page) writes since the previous frame.
    pub data: Vec<DataWrite>,
    /// The primary's bad-sector remap table as of this frame (tiny; lets
    /// the replica translate logical record targets exactly as the
    /// primary would).
    pub spare: Vec<(u32, u32)>,
}

impl ReplFrame {
    /// Bytes this frame occupies on the wire (records + data images +
    /// labels + fixed header), used for link bandwidth accounting.
    pub fn encoded_len(&self) -> usize {
        let rec: usize = self.records.iter().map(Vec::len).sum();
        let data: usize = self
            .data
            .iter()
            .map(|w| 8 + w.data.as_ref().map_or(0, Vec::len) + w.label.map_or(0, |_| 16))
            .sum();
        64 + rec + data + self.spare.len() * 8
    }

    /// Whether the frame carries any change at all.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty() && self.data.is_empty()
    }
}

/// The primary-side tap state held by [`crate::FsdVolume`]: sealed
/// frames waiting for the shipper (or the session driver) to take them.
#[derive(Debug, Default)]
pub(crate) struct ReplTap {
    /// Id the next sealed frame will get (first frame is 1).
    pub(crate) next_frame: u64,
    /// Frames sealed since the last [`crate::FsdVolume::take_repl_frames`].
    pub(crate) frames: Vec<ReplFrame>,
}

impl ReplTap {
    pub(crate) fn new() -> Self {
        Self {
            next_frame: 1,
            frames: Vec::new(),
        }
    }
}
