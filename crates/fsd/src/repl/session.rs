//! Deterministic replication driver: one primary, one replica, one
//! simulated link.
//!
//! [`ReplSession`] is the single-threaded counterpart of the concurrent
//! [`crate::repl::shipper`] thread: the bench and the fault campaign
//! drive it step by step, so every lag sample, retry, partition and
//! failover is reproducible. The shipping protocol is identical in both:
//! frames seal at [`crate::FsdVolume::force`], ship strictly in order,
//! and the acknowledgement point is the mode's durability point.
//!
//! Bounded retention is what makes resync interesting: the session keeps
//! at most [`ReplSessionConfig::retain_frames`] sealed-but-unshipped
//! frames (the stand-in for the primary's finite log). A partition that
//! outlives the buffer evicts frames, the replica's cursor is lapped,
//! and [`ReplSession::resync`] must fall back from cursor replay to a
//! full-state transfer.

use crate::repl::replica::{Replica, ReplicaApplyError, ReplicaStats};
use crate::repl::{ReplFrame, ReplMode};
use crate::volume::{FsdConfig, FsdVolume};
use cedar_disk::clock::Micros;
use cedar_disk::{Link, LinkPlan, LinkStats, SECTOR_BYTES};
use cedar_vol::fs::CedarFsError;
use std::collections::{HashMap, VecDeque};

/// Full-transfer chunk size in sectors (128 KB on the wire at a time,
/// so bandwidth-limited links charge realistic serialization).
const TRANSFER_CHUNK_SECTORS: usize = 256;

/// Session configuration: the mode plus link fault/retry policy.
#[derive(Clone, Debug)]
pub struct ReplSessionConfig {
    /// Acknowledgement mode.
    pub mode: ReplMode,
    /// Link latency/bandwidth/fault plan.
    pub link: LinkPlan,
    /// Retries per frame after the first attempt.
    pub retry_attempts: u32,
    /// Initial retry backoff (doubles per attempt); simulated time
    /// advances by it, so a backoff can outlive a partition window.
    pub backoff_us: Micros,
    /// Sealed frames retained for cursor resync; older unshipped frames
    /// are evicted (the primary's log has finite capacity).
    pub retain_frames: usize,
    /// Async mode: commits block once this many frames are unshipped.
    pub max_lag_frames: usize,
}

impl ReplSessionConfig {
    /// Defaults for `mode`: a healthy low-latency link, three retries
    /// with 2 ms backoff, 64 retained frames, 8-frame async lag bound.
    pub fn for_mode(mode: ReplMode) -> Self {
        Self {
            mode,
            link: LinkPlan {
                latency_us: 500,
                bytes_per_sec: 10_000_000,
                ..LinkPlan::default()
            },
            retry_attempts: 3,
            backoff_us: 2_000,
            retain_frames: 64,
            max_lag_frames: 8,
        }
    }
}

/// How a [`ReplSession::resync`] converged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResyncKind {
    /// The replica's cursor was still covered by retained frames: the
    /// missing suffix was replayed over the link.
    CursorReplay,
    /// The retention buffer had lapped the cursor: full-state transfer.
    FullTransfer,
}

/// Result of a catch-up resync.
#[derive(Clone, Copy, Debug)]
pub struct ResyncOutcome {
    /// Which protocol leg converged.
    pub kind: ResyncKind,
    /// Frames replayed (cursor replay only).
    pub frames: u64,
    /// Sectors transferred (full transfer only).
    pub sectors: u64,
    /// Simulated time the resync took on the primary's clock.
    pub resync_us: Micros,
}

/// Result of promoting the replica after primary failure.
pub struct FailoverOutcome {
    /// The promoted, serving volume.
    pub volume: FsdVolume,
    /// Boot-time recovery report of the promotion.
    pub report: crate::recovery::RecoveryReport,
    /// Simulated promotion time (buffered redo + boot) on the replica's
    /// clock.
    pub failover_us: Micros,
    /// Frame cursor the promoted volume serves from.
    pub promoted_cursor: u64,
    /// Replica counters at promotion.
    pub replica_stats: ReplicaStats,
}

/// One primary + one replica + one link, driven deterministically.
pub struct ReplSession {
    primary: FsdVolume,
    replica: Replica,
    link: Link,
    cfg: ReplSessionConfig,
    /// Sealed frames the replica has not yet received, oldest first.
    unshipped: VecDeque<ReplFrame>,
    /// Highest frame id evicted from `unshipped` (0 = none): if it
    /// passes the replica's high-water mark, only a full transfer can
    /// reconverge.
    evicted_to: u64,
    /// Primary-clock seal time per in-flight frame id (lag accounting).
    seal_times: HashMap<u64, Micros>,
    /// Commit-to-applied lag per frame, in simulated µs.
    lag_samples: Vec<Micros>,
    /// Highest frame id acknowledged at the mode's durability point.
    acked_high: u64,
}

impl ReplSession {
    /// Installs a replica of `primary` (full-state transfer) and starts
    /// shipping with `cfg`. The primary gets its replication tap enabled.
    pub fn new(
        mut primary: FsdVolume,
        config: FsdConfig,
        cfg: ReplSessionConfig,
    ) -> Result<Self, CedarFsError> {
        let replica = Replica::install(&mut primary, config)?;
        let link = Link::new(cfg.link.clone());
        Ok(Self {
            primary,
            replica,
            link,
            cfg,
            unshipped: VecDeque::new(),
            evicted_to: 0,
            seal_times: HashMap::new(),
            lag_samples: Vec::new(),
            acked_high: 0,
        })
    }

    /// The primary volume (runs the client workload).
    pub fn primary_mut(&mut self) -> &mut FsdVolume {
        &mut self.primary
    }

    /// The link (fault injection: `force_down`, plan swaps).
    pub fn link_mut(&mut self) -> &mut Link {
        &mut self.link
    }

    /// Replica-side counters.
    pub fn replica_stats(&self) -> ReplicaStats {
        self.replica.stats()
    }

    /// Link-side counters.
    pub fn link_stats(&self) -> LinkStats {
        self.link.stats()
    }

    /// Commit-to-applied lag samples collected so far (simulated µs).
    pub fn lag_samples(&self) -> &[Micros] {
        &self.lag_samples
    }

    /// Frames sealed on the primary but not yet applied by the replica.
    pub fn frames_behind(&self) -> usize {
        self.unshipped.len() + self.replica.buffered()
    }

    /// Highest frame id acknowledged at the mode's durability point.
    pub fn acked_high(&self) -> u64 {
        self.acked_high
    }

    /// Whether only a full-state transfer can reconverge the replica.
    pub fn needs_full_transfer(&self) -> bool {
        self.evicted_to > self.replica.high_water()
    }

    /// Forces the primary's log and ships the sealed frames per the
    /// session mode. `Ok` means the commit is acknowledged at the mode's
    /// durability point; a [`CedarFsError::Link`] error means the commit
    /// is durable on the primary but NOT acknowledged (retryable: heal
    /// the link and call [`Self::resync`] or commit again).
    pub fn commit(&mut self) -> Result<(), CedarFsError> {
        self.primary.force().map_err(CedarFsError::from)?;
        self.collect_sealed();
        match self.cfg.mode {
            ReplMode::Sync => {
                self.drain_unshipped(true)?;
            }
            ReplMode::SemiSync => {
                // Ack point: every frame received. Redo is continuous but
                // off the ack path.
                self.drain_unshipped(false)?;
                self.replica.apply_received().map_err(apply_err)?;
            }
            ReplMode::Async => {
                // Ack is local; ship opportunistically in the background
                // and only block (with retries) at the lag bound.
                if let Some(high) = self.unshipped.back().map(|f| f.id) {
                    self.acked_high = self.acked_high.max(high);
                }
                self.try_drain_async();
                if self.unshipped.len() > self.cfg.max_lag_frames {
                    self.drain_unshipped(true)?;
                }
            }
        }
        Ok(())
    }

    /// Async background pump: ships what the link will take, without
    /// erroring or retrying. Also applies any received backlog.
    pub fn pump(&mut self) {
        self.collect_sealed();
        self.try_drain_async();
        let _ = self.replica.apply_received();
    }

    /// Catch-up after a partition (heals a manual partition first): a
    /// log-cursor handshake decides between replaying retained frames
    /// and a full-state transfer when the retention buffer has lapped
    /// the replica's cursor.
    pub fn resync(&mut self) -> Result<ResyncOutcome, CedarFsError> {
        self.link.heal();
        self.collect_sealed();
        let t0 = self.primary.clock().now();
        // The handshake: replica reports its high-water frame id; the
        // primary compares against the oldest change it can still replay.
        if self.needs_full_transfer() {
            let sectors = u64::from(self.primary.disk.materialized_sectors());
            self.ship_bytes(sectors as usize * SECTOR_BYTES)?;
            self.replica.reseed(&mut self.primary)?;
            self.unshipped.clear();
            self.seal_times.clear();
            self.evicted_to = 0;
            self.acked_high = self.acked_high.max(self.replica.cursor());
            Ok(ResyncOutcome {
                kind: ResyncKind::FullTransfer,
                frames: 0,
                sectors,
                resync_us: self.primary.clock().now() - t0,
            })
        } else {
            let frames = self.unshipped.len() as u64;
            self.drain_unshipped(true)?;
            Ok(ResyncOutcome {
                kind: ResyncKind::CursorReplay,
                frames,
                sectors: 0,
                resync_us: self.primary.clock().now() - t0,
            })
        }
    }

    /// Simulates primary failure: abandons the primary and promotes the
    /// replica at its current commit boundary. Anything unshipped is
    /// lost — which is exactly what the per-mode loss bounds quantify.
    pub fn failover(self) -> Result<FailoverOutcome, CedarFsError> {
        let clock = self.replica.clock();
        let stats = self.replica.stats();
        let t0 = clock.now();
        let promoted_cursor = self.replica.high_water();
        let (volume, report) = self.replica.promote()?;
        Ok(FailoverOutcome {
            failover_us: clock.now() - t0,
            volume,
            report,
            promoted_cursor,
            replica_stats: stats,
        })
    }

    /// Consumes the session, returning the primary volume (controlled
    /// shutdown of replication).
    pub fn into_primary(self) -> FsdVolume {
        self.primary
    }

    // ----- internals ------------------------------------------------------------

    /// Moves newly sealed frames into the bounded unshipped queue,
    /// stamping seal times and evicting beyond the retention bound.
    fn collect_sealed(&mut self) {
        let now = self.primary.clock().now();
        for frame in self.primary.take_repl_frames() {
            self.seal_times.insert(frame.id, now);
            self.unshipped.push_back(frame);
        }
        while self.unshipped.len() > self.cfg.retain_frames {
            if let Some(f) = self.unshipped.pop_front() {
                self.evicted_to = self.evicted_to.max(f.id);
                self.seal_times.remove(&f.id);
            }
        }
    }

    /// Ships every unshipped frame in order with retry/backoff. When
    /// `apply` is set the replica redoes each frame before the next
    /// ships (sync mode / resync replay); otherwise frames are only
    /// received (semi-sync ack point).
    fn drain_unshipped(&mut self, apply: bool) -> Result<(), CedarFsError> {
        while let Some(front) = self.unshipped.front() {
            let wire = front.encoded_len();
            self.ship_with_retry(wire)?;
            let frame = match self.unshipped.pop_front() {
                Some(f) => f,
                None => break,
            };
            let id = frame.id;
            if apply {
                let rc = self.replica.clock();
                let t0 = rc.now();
                self.replica.receive_apply(frame).map_err(apply_err)?;
                // The primary waits for the apply-then-ack in sync mode:
                // charge the replica's redo time to the primary's clock.
                self.primary.clock().advance(rc.now() - t0);
            } else {
                self.replica.receive(frame).map_err(apply_err)?;
            }
            self.acked_high = self.acked_high.max(id);
            if let Some(sealed) = self.seal_times.remove(&id) {
                self.lag_samples
                    .push(self.primary.clock().now().saturating_sub(sealed));
            }
        }
        Ok(())
    }

    /// Best-effort async shipping: single attempt per frame, stop at the
    /// first link refusal, apply immediately (continuous redo).
    fn try_drain_async(&mut self) {
        while let Some(front) = self.unshipped.front() {
            let now = self.primary.clock().now();
            let Ok(delay) = self.link.send(now, front.encoded_len()) else {
                return;
            };
            let Some(frame) = self.unshipped.pop_front() else {
                return;
            };
            let id = frame.id;
            // Background shipping does not stall the primary's clock;
            // lag still accounts the wire delay.
            if self.replica.receive_apply(frame).is_err() {
                return;
            }
            if let Some(sealed) = self.seal_times.remove(&id) {
                self.lag_samples.push((now + delay).saturating_sub(sealed));
            }
        }
    }

    /// One send with the session's retry/backoff policy. Advances the
    /// primary clock by the wire delay (and by each backoff).
    fn ship_with_retry(&mut self, bytes: usize) -> Result<Micros, CedarFsError> {
        let mut backoff = self.cfg.backoff_us.max(1);
        let mut attempt = 0;
        loop {
            let now = self.primary.clock().now();
            match self.link.send(now, bytes) {
                Ok(delay) => {
                    self.primary.clock().advance(delay);
                    return Ok(delay);
                }
                Err(e) if attempt < self.cfg.retry_attempts => {
                    attempt += 1;
                    let _ = e;
                    self.primary.clock().advance(backoff);
                    backoff = backoff.saturating_mul(2);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Ships a bulk payload (full-state transfer) in chunks.
    fn ship_bytes(&mut self, bytes: usize) -> Result<(), CedarFsError> {
        let chunk = TRANSFER_CHUNK_SECTORS * SECTOR_BYTES;
        let mut left = bytes;
        while left > 0 {
            let take = left.min(chunk);
            self.ship_with_retry(take)?;
            left -= take;
        }
        Ok(())
    }
}

/// Maps a replica apply error to the filesystem error surface: gaps are
/// retryable link-level losses (heal + resync), redo failures keep their
/// own class.
pub(crate) fn apply_err(e: ReplicaApplyError) -> CedarFsError {
    match e {
        ReplicaApplyError::Gap { expected, got } => CedarFsError::Link(format!(
            "replica cursor gap (expected frame {expected}, got {got}); resync required"
        )),
        ReplicaApplyError::Fsd(e) => e.into(),
    }
}
