//! The background shipper thread for the concurrent [`crate::FsdEngine`].
//!
//! The engine's log-writer thread seals [`ReplFrame`]s inside
//! `FsdVolume::force` and hands them to the shipper through
//! [`ShipperShared`] — a queue guarded by a [`crate::sync::Mutex`] with
//! two condvars (`work` wakes the shipper, `ack` wakes the writer), so
//! the same hand-off is model-checked under loom (`tests/loom_repl.rs`).
//!
//! Ack ordering is the whole contract: the writer's per-mode wait in
//! [`ShipperShared::submit_and_wait`] blocks *before* the batch's client
//! slots complete, so a client is never acknowledged before the mode's
//! durability point (`applied_high` for sync, `shipped_high` for
//! semi-sync, local force for async with `max_lag_frames` backpressure).
//!
//! Failure discipline (ISSUE satellite 1): the shipper never *drops* a
//! frame. When a frame exhausts its link retries the sticky `failed`
//! error is raised, the frame stays at the queue front, and the waiting
//! writer completes that batch's clients with the retryable
//! `CedarFsError::Link` — so an unshipped record is by construction an
//! *unacknowledged* record in sync mode. The next submission (or an
//! explicit [`ReplHandle::kick`] after healing the link) clears the
//! sticky failure and retries from the front, preserving strict frame
//! order. On engine shutdown or poison the writer drains its queue and
//! stops, then the shipper drains *its* queue (one last bounded-retry
//! pass per frame) before returning the [`Replica`] to the caller.

use std::collections::VecDeque;
use std::sync::Arc;

use cedar_disk::clock::Micros;
use cedar_disk::{Link, LinkPlan, LinkStats};
use cedar_vol::fs::CedarFsError;

use crate::repl::replica::{Replica, ReplicaStats};
use crate::repl::{ReplFrame, ReplMode};
use crate::sync::{Condvar, Mutex, MutexGuard};

/// Configuration for the engine-attached shipper thread.
#[derive(Clone, Debug)]
pub struct ShipperConfig {
    /// Acknowledgement mode (where `submit_and_wait` blocks).
    pub mode: ReplMode,
    /// Simulated link fault/latency/bandwidth plan.
    pub link: LinkPlan,
    /// Send retries per frame before raising the sticky failure.
    pub retry_attempts: u32,
    /// Initial backoff between retries (doubles each attempt), in
    /// simulated microseconds charged to the replica's clock.
    pub backoff_us: Micros,
    /// Async mode: `submit_and_wait` blocks while more than this many
    /// frames are queued (bounded lag — the mode's loss bound).
    pub max_lag_frames: usize,
}

impl ShipperConfig {
    /// Defaults mirroring [`crate::repl::ReplSessionConfig::for_mode`].
    pub fn for_mode(mode: ReplMode) -> Self {
        Self {
            mode,
            link: LinkPlan::with_latency(500),
            retry_attempts: 3,
            backoff_us: 2_000,
            max_lag_frames: 8,
        }
    }
}

/// Counters published by the shipper thread.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShipperStats {
    /// Frames handed over by the log writer.
    pub frames_enqueued: u64,
    /// Frames successfully sent over the link.
    pub frames_shipped: u64,
    /// Frames applied by the replica's redo engine.
    pub frames_applied: u64,
    /// Wire bytes shipped.
    pub bytes_shipped: u64,
    /// Link send attempts that failed and were retried.
    pub retries: u64,
    /// Times a frame exhausted its retries and raised the sticky
    /// failure (the frame itself stays queued).
    pub stalls: u64,
}

/// Queue state behind the shared mutex.
struct ShipState {
    /// Frames awaiting shipment, strictly ordered by id.
    frames: VecDeque<ReplFrame>,
    /// The simulated link (kept under the lock so tests can inject
    /// partitions through [`ReplHandle`] while the shipper runs).
    link: Link,
    /// Set by the engine at shutdown: drain the queue, then exit.
    stop: bool,
    /// Generation counter bumped on every enqueue/kick/stop so the
    /// shipper can park after a sticky failure without missing work.
    kick: u64,
    /// Highest frame id ever enqueued.
    enqueued_high: u64,
    /// Highest frame id received by the replica (semi-sync ack point).
    shipped_high: u64,
    /// Highest frame id applied by the replica (sync ack point).
    applied_high: u64,
    /// Sticky failure: the front frame exhausted its retries (or the
    /// replica refused a frame). Cleared by the next submit or kick.
    failed: Option<CedarFsError>,
    stats: ShipperStats,
    /// Snapshot of the replica's own counters, refreshed after each
    /// apply so [`ReplHandle::replica_stats`] works while the replica
    /// is owned by the shipper thread.
    replica_stats: ReplicaStats,
}

/// The writer/shipper rendezvous: queue + two condvars.
pub(crate) struct ShipperShared {
    cfg: ShipperConfig,
    state: Mutex<ShipState>,
    /// Signalled when frames are enqueued, the link is kicked, or stop
    /// is requested; the shipper waits here.
    work: Condvar,
    /// Signalled on ship/apply progress and on failure; the log writer
    /// waits here for the mode's ack point.
    ack: Condvar,
}

/// See `engine.rs` — lock acquisition that shrugs off poisoning so a
/// crashed client thread can never wedge the writer/shipper pair.
fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

impl ShipperShared {
    pub(crate) fn new(cfg: ShipperConfig) -> Self {
        let link = Link::new(cfg.link.clone());
        Self {
            cfg,
            state: Mutex::new(ShipState {
                frames: VecDeque::new(),
                link,
                stop: false,
                kick: 0,
                enqueued_high: 0,
                shipped_high: 0,
                applied_high: 0,
                failed: None,
                stats: ShipperStats::default(),
                replica_stats: ReplicaStats::default(),
            }),
            work: Condvar::new(),
            ack: Condvar::new(),
        }
    }

    /// Log-writer side: enqueue this force's sealed frames and block
    /// until the configured mode's durability point. Returns `Err` (and
    /// the writer then fails the batch's clients) if the frames could
    /// not reach that point — they stay queued for a later retry, so
    /// nothing acknowledged is ever dropped.
    pub(crate) fn submit_and_wait(&self, frames: Vec<ReplFrame>) -> Result<(), CedarFsError> {
        let mut st = plock(&self.state);
        let mut high = st.enqueued_high;
        for f in frames {
            high = high.max(f.id);
            st.stats.frames_enqueued += 1;
            st.frames.push_back(f);
        }
        let fresh_work = high > st.enqueued_high;
        st.enqueued_high = high;
        if fresh_work {
            // New work gives a previously-stalled front frame another
            // round of retries.
            st.failed = None;
            st.kick += 1;
            self.work.notify_all();
        }
        match self.cfg.mode {
            ReplMode::Async => {
                // Ack locally; only block when the replica has fallen
                // more than `max_lag_frames` behind (the loss bound).
                while st.frames.len() > self.cfg.max_lag_frames {
                    if let Some(e) = st.failed.clone() {
                        return Err(e);
                    }
                    if st.stop {
                        break;
                    }
                    st = match self.ack.wait(st) {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    };
                }
                Ok(())
            }
            ReplMode::SemiSync => {
                while st.shipped_high < high {
                    if let Some(e) = st.failed.clone() {
                        return Err(e);
                    }
                    st = match self.ack.wait(st) {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    };
                }
                Ok(())
            }
            ReplMode::Sync => {
                while st.applied_high < high {
                    if let Some(e) = st.failed.clone() {
                        return Err(e);
                    }
                    st = match self.ack.wait(st) {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    };
                }
                Ok(())
            }
        }
    }

    /// Request the shipper drain its queue and exit.
    pub(crate) fn request_stop(&self) {
        let mut st = plock(&self.state);
        st.stop = true;
        st.kick += 1;
        self.work.notify_all();
        self.ack.notify_all();
    }
}

/// What the shipper decided to do after waiting for work.
enum Action {
    Ship(ReplFrame),
    Exit,
}

/// Body of the `fsd-shipper` thread. Owns the [`Replica`]; returns it
/// when asked to stop (after a final drain pass).
pub(crate) fn shipper_loop(shared: Arc<ShipperShared>, mut replica: Replica) -> Replica {
    loop {
        let action = {
            let mut st = plock(&shared.state);
            loop {
                if st.stop && (st.frames.is_empty() || st.failed.is_some()) {
                    // Drained, or draining but the front frame already
                    // exhausted its final round of retries: anything
                    // left was never acknowledged in sync mode.
                    break Action::Exit;
                }
                if st.failed.is_none() {
                    if let Some(f) = st.frames.front() {
                        break Action::Ship(f.clone());
                    }
                }
                let kick = st.kick;
                while st.kick == kick {
                    st = match shared.work.wait(st) {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    };
                }
            }
        };
        let frame = match action {
            Action::Ship(f) => f,
            Action::Exit => return replica,
        };
        ship_one(&shared, &mut replica, frame);
    }
}

/// Ship one frame with bounded retries, then receive + apply it on the
/// replica, updating the ack marks in order (shipped before applied).
fn ship_one(shared: &ShipperShared, replica: &mut Replica, frame: ReplFrame) {
    let wire = frame.encoded_len();
    let id = frame.id;
    let mut backoff = shared.cfg.backoff_us.max(1);
    let mut attempt: u32 = 0;
    loop {
        let now = replica.clock().now();
        let sent = {
            let mut st = plock(&shared.state);
            st.link.send(now, wire)
        };
        match sent {
            Ok(delay) => {
                replica.clock().advance(delay);
                break;
            }
            Err(e) => {
                attempt += 1;
                let mut st = plock(&shared.state);
                st.stats.retries += 1;
                if attempt > shared.cfg.retry_attempts {
                    st.stats.stalls += 1;
                    st.failed = Some(CedarFsError::from(e));
                    shared.ack.notify_all();
                    return;
                }
                drop(st);
                replica.clock().advance(backoff);
                backoff = backoff.saturating_mul(2);
            }
        }
    }
    // Receive: the semi-sync durability point.
    if let Err(e) = replica.receive(frame) {
        let mut st = plock(&shared.state);
        st.failed = Some(crate::repl::session::apply_err(e));
        shared.ack.notify_all();
        return;
    }
    {
        let mut st = plock(&shared.state);
        st.frames.pop_front();
        st.stats.frames_shipped += 1;
        st.stats.bytes_shipped += wire as u64;
        st.shipped_high = st.shipped_high.max(id);
        st.replica_stats = replica.stats();
        shared.ack.notify_all();
    }
    // Apply (continuous redo): the sync durability point.
    match replica.apply_received() {
        Ok(_) => {
            let mut st = plock(&shared.state);
            st.stats.frames_applied += 1;
            st.applied_high = st.applied_high.max(id);
            st.replica_stats = replica.stats();
            shared.ack.notify_all();
        }
        Err(e) => {
            let mut st = plock(&shared.state);
            st.failed = Some(crate::repl::session::apply_err(e));
            shared.ack.notify_all();
        }
    }
}

/// Test/observability handle onto a running shipper, returned by
/// [`crate::FsdEngine::repl_handle`]. Lets callers inspect ack marks
/// and inject link faults while the engine runs.
#[derive(Clone)]
pub struct ReplHandle {
    pub(crate) shared: Arc<ShipperShared>,
}

impl ReplHandle {
    /// Shipper counters.
    pub fn stats(&self) -> ShipperStats {
        plock(&self.shared.state).stats
    }

    /// Replica-side counters (snapshot taken after each apply).
    pub fn replica_stats(&self) -> ReplicaStats {
        plock(&self.shared.state).replica_stats
    }

    /// Link counters.
    pub fn link_stats(&self) -> LinkStats {
        plock(&self.shared.state).link.stats()
    }

    /// Highest frame id handed to the shipper.
    pub fn enqueued_high(&self) -> u64 {
        plock(&self.shared.state).enqueued_high
    }

    /// Highest frame id received by the replica (semi-sync ack point).
    pub fn shipped_high(&self) -> u64 {
        plock(&self.shared.state).shipped_high
    }

    /// Highest frame id applied by the replica (sync ack point).
    pub fn applied_high(&self) -> u64 {
        plock(&self.shared.state).applied_high
    }

    /// Frames queued but not yet shipped.
    pub fn backlog(&self) -> usize {
        plock(&self.shared.state).frames.len()
    }

    /// The sticky failure, if the front frame is stalled.
    pub fn failed(&self) -> Option<CedarFsError> {
        plock(&self.shared.state).failed.clone()
    }

    /// Force the link down (drops/rejects sends until [`Self::heal`]).
    pub fn force_down(&self) {
        plock(&self.shared.state).link.force_down();
    }

    /// Heal a forced-down link and kick the shipper to retry the front
    /// frame (clearing the sticky failure).
    pub fn heal(&self) {
        let mut st = plock(&self.shared.state);
        st.link.heal();
        st.failed = None;
        st.kick += 1;
        self.shared.work.notify_all();
    }

    /// Clear the sticky failure and wake the shipper without touching
    /// the link (e.g. after a transient partition window expired).
    pub fn kick(&self) {
        let mut st = plock(&self.shared.state);
        st.failed = None;
        st.kick += 1;
        self.shared.work.notify_all();
    }
}
