//! The replica volume: continuous redo of shipped frames.
//!
//! A replica is *not* a mounted [`FsdVolume`] — it is the primary's disk
//! image plus a redo engine, exactly as a crashed volume mid-recovery is
//! a disk plus the redo sweep. Shipped frames are applied with the same
//! write discipline as boot-time recovery ([`crate::recovery`]): raw
//! data-area writes first (they happened before the commit they ride
//! with), then each sealed record's images to their home locations —
//! name-table sectors to *both* copies, VAM sectors to both save areas,
//! leader images to their home address — all through the remap-aware
//! batched writer. Promotion is then literally a boot: the home copies
//! are current, the replica's own log is empty, and recovery's existing
//! machinery (VAM reconstruction, scavenge escalation) does the rest.

use crate::error::FsdError;
use crate::layout::FsdLayout;
use crate::log::{self, PageTarget, DATA_START};
use crate::recovery::RecoveryReport;
use crate::repl::{DataWrite, ReplFrame};
use crate::spare::{self, SpareMap};
use crate::volume::{FsdConfig, FsdVolume};
use crate::Result;
use cedar_disk::{SimClock, SimDisk};
use std::collections::{BTreeMap, VecDeque};

/// Counters the bench and fault campaign report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Frames received (buffered or applied).
    pub frames_received: u64,
    /// Frames fully applied to the home copies.
    pub frames_applied: u64,
    /// Sealed records decoded and redone.
    pub records_applied: u64,
    /// Logged sector images written home.
    pub images_applied: u64,
    /// Raw data-area sector writes mirrored.
    pub data_writes_applied: u64,
    /// Full-state transfers (the initial install plus any lapped-log
    /// resync fallbacks).
    pub full_transfers: u64,
    /// Sectors shipped by those full-state transfers.
    pub transfer_sectors: u64,
}

/// Why a frame could not be applied.
#[derive(Debug)]
pub enum ReplicaApplyError {
    /// The frame does not extend the replica's cursor — frames were lost
    /// in a partition and the session must resync.
    Gap {
        /// Frame id the replica needs next.
        expected: u64,
        /// Frame id that arrived.
        got: u64,
    },
    /// The redo write itself failed.
    Fsd(FsdError),
}

impl std::fmt::Display for ReplicaApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Gap { expected, got } => {
                write!(f, "frame gap: replica expected {expected}, got {got}")
            }
            Self::Fsd(e) => write!(f, "replica redo failed: {e}"),
        }
    }
}

impl From<FsdError> for ReplicaApplyError {
    fn from(e: FsdError) -> Self {
        Self::Fsd(e)
    }
}

/// A standby volume applying the primary's replication stream.
#[derive(Debug)]
pub struct Replica {
    disk: SimDisk,
    layout: FsdLayout,
    config: FsdConfig,
    /// Id of the last fully applied frame.
    cursor: u64,
    /// Frames received but not yet applied (the semi-sync durability
    /// point is entry into this buffer).
    received: VecDeque<ReplFrame>,
    stats: ReplicaStats,
}

impl Replica {
    /// Seeds a replica from the primary by full-state transfer.
    ///
    /// Protocol order matters: the primary is forced (all commits
    /// durable), the replication tap is enabled (or its pending frames
    /// discarded — the transfer already carries their effects), and only
    /// then is the disk image cloned. The clone is booted once on the
    /// replica's own clock — recovery replays any live log and brings
    /// every home copy current — and the replica's log data area is then
    /// zeroed so no stale primary record can masquerade as live when the
    /// replica is eventually promoted (the record scan keys on sequence
    /// numbers, not epochs).
    ///
    /// Returns the replica positioned at the primary's current frame
    /// cursor: the next sealed frame extends it with no gap.
    pub fn install(primary: &mut FsdVolume, config: FsdConfig) -> Result<Replica> {
        primary.force()?;
        if primary.repl_tap_enabled() {
            // Effects of any sealed-but-unshipped frames are in the disk
            // image we are about to clone.
            primary.take_repl_frames();
        } else {
            primary.enable_repl_tap();
        }
        primary.seal_repl_data_frame();
        primary.take_repl_frames();
        let cursor = primary.repl.as_ref().map(|t| t.next_frame - 1).unwrap_or(0);
        let fork = primary.disk.fork_with_clock(SimClock::new());
        let transfer_sectors = u64::from(fork.materialized_sectors());

        let (mut vol, _report) = FsdVolume::boot(fork, config)?;
        vol.sync_home_all()?;
        let layout = vol.layout;
        let remap = vol.spare.entries().to_vec();
        let mut disk = vol.into_disk();
        zero_log_data(&mut disk, &layout, &remap)?;

        Ok(Replica {
            disk,
            layout,
            config,
            cursor,
            received: VecDeque::new(),
            stats: ReplicaStats {
                full_transfers: 1,
                transfer_sectors,
                ..ReplicaStats::default()
            },
        })
    }

    /// Replaces this replica's disk state by a fresh full-state transfer
    /// from the primary (the lapped-log resync fallback). The receive
    /// buffer is discarded — its frames are subsumed by the transfer.
    pub fn reseed(&mut self, primary: &mut FsdVolume) -> Result<()> {
        let fresh = Replica::install(primary, self.config)?;
        self.disk = fresh.disk;
        self.layout = fresh.layout;
        self.config = fresh.config;
        self.cursor = fresh.cursor;
        self.received.clear();
        self.stats.full_transfers += 1;
        self.stats.transfer_sectors += fresh.stats.transfer_sectors;
        Ok(())
    }

    /// Id of the last applied frame (the resync handshake cursor).
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Id of the newest frame the replica holds (applied or buffered).
    pub fn high_water(&self) -> u64 {
        self.received.back().map_or(self.cursor, |f| f.id)
    }

    /// Frames received but not yet applied.
    pub fn buffered(&self) -> usize {
        self.received.len()
    }

    /// Counters so far.
    pub fn stats(&self) -> ReplicaStats {
        self.stats
    }

    /// The replica machine's clock (independent of the primary's).
    pub fn clock(&self) -> SimClock {
        self.disk.clock()
    }

    /// Accepts a frame into the receive buffer — the semi-sync
    /// durability point. Rejects gaps: the stream is strictly ordered.
    pub fn receive(&mut self, frame: ReplFrame) -> std::result::Result<(), ReplicaApplyError> {
        let expected = self.high_water() + 1;
        if frame.id != expected {
            return Err(ReplicaApplyError::Gap {
                expected,
                got: frame.id,
            });
        }
        self.stats.frames_received += 1;
        self.received.push_back(frame);
        Ok(())
    }

    /// Applies every buffered frame (continuous redo). Returns the
    /// number of frames applied.
    pub fn apply_received(&mut self) -> std::result::Result<usize, ReplicaApplyError> {
        let mut n = 0;
        while let Some(frame) = self.received.pop_front() {
            self.apply(&frame)?;
            n += 1;
        }
        Ok(n)
    }

    /// Receives and immediately applies one frame (the sync-mode path).
    pub fn receive_apply(
        &mut self,
        frame: ReplFrame,
    ) -> std::result::Result<(), ReplicaApplyError> {
        self.receive(frame)?;
        self.apply_received()?;
        Ok(())
    }

    /// Redoes one frame against the home copies: data writes first, then
    /// each record's images, with the same target routing as boot-time
    /// recovery.
    fn apply(&mut self, frame: &ReplFrame) -> std::result::Result<(), ReplicaApplyError> {
        debug_assert_eq!(frame.id, self.cursor + 1);
        self.apply_data(&frame.data).map_err(FsdError::Disk)?;

        // Decode every record up front (transport corruption must not
        // leave a half-applied frame), then route images exactly as
        // `recovery::redo_phase` does: later images of the same sector
        // win, one sorted remap-aware sweep writes them home.
        let mut final_images: BTreeMap<u32, Vec<u8>> = BTreeMap::new();
        let mut records = 0u64;
        let mut images = 0u64;
        for bytes in &frame.records {
            let rec = log::decode_record_bytes(bytes)?;
            records += 1;
            for (target, img) in &rec.images {
                target.validate(&self.layout)?;
                images += 1;
                match target {
                    PageTarget::NtSector { page, sector } => {
                        final_images.insert(self.layout.nt_a_sector(*page) + sector, img.clone());
                        final_images.insert(self.layout.nt_b_sector(*page) + sector, img.clone());
                    }
                    PageTarget::Leader { addr } => {
                        // No reallocation guard needed (unlike crash
                        // recovery): frames apply in commit order, so a
                        // sector reallocated later is rewritten later.
                        final_images.insert(*addr, img.clone());
                    }
                    PageTarget::VamSector { index } => {
                        final_images.insert(self.layout.vam_a + index, img.clone());
                        final_images.insert(self.layout.vam_b + index, img.clone());
                    }
                }
            }
        }
        if !final_images.is_empty() {
            let mut remap = SpareMap::with_entries(&self.layout, &frame.spare);
            spare::write_home_batch(
                &mut self.disk,
                self.config.io_policy,
                &mut remap,
                final_images.into_iter().collect(),
            )?;
        }
        self.cursor = frame.id;
        self.stats.frames_applied += 1;
        self.stats.records_applied += records;
        self.stats.images_applied += images;
        Ok(())
    }

    /// Mirrors raw journal writes, coalescing contiguous same-shape runs
    /// into single transfers (label+data writes go in one pass, as on
    /// the primary).
    fn apply_data(&mut self, writes: &[DataWrite]) -> cedar_disk::Result<()> {
        let mut i = 0;
        while i < writes.len() {
            let w = &writes[i];
            let shape = (w.data.is_some(), w.label.is_some());
            let mut j = i + 1;
            while j < writes.len()
                && writes[j].addr == w.addr + (j - i) as u32
                && (writes[j].data.is_some(), writes[j].label.is_some()) == shape
            {
                j += 1;
            }
            let run = &writes[i..j];
            match shape {
                (true, true) => {
                    let bytes: Vec<u8> = run
                        .iter()
                        .flat_map(|w| w.data.as_deref().unwrap_or(&[]).to_vec())
                        .collect();
                    let labels: Vec<_> = run.iter().filter_map(|w| w.label).collect();
                    self.disk.write_with_labels(w.addr, &bytes, &labels)?;
                }
                (true, false) => {
                    let bytes: Vec<u8> = run
                        .iter()
                        .flat_map(|w| w.data.as_deref().unwrap_or(&[]).to_vec())
                        .collect();
                    self.disk.write(w.addr, &bytes)?;
                }
                (false, true) => {
                    let labels: Vec<_> = run.iter().filter_map(|w| w.label).collect();
                    self.disk.write_labels(w.addr, &labels, None)?;
                }
                (false, false) => {}
            }
            self.stats.data_writes_applied += run.len() as u64;
            i = j;
        }
        Ok(())
    }

    /// Promotes the replica to a serving volume at its current commit
    /// boundary: any buffered frames are applied first, then the volume
    /// boots — home copies are current and the replica log is empty, so
    /// this is the fast recovery path (VAM reconstruction at worst).
    pub fn promote(mut self) -> Result<(FsdVolume, RecoveryReport)> {
        self.apply_received().map_err(|e| match e {
            ReplicaApplyError::Gap { expected, got } => FsdError::Check(format!(
                "buffered frame gap at promote: {expected} vs {got}"
            )),
            ReplicaApplyError::Fsd(e) => e,
        })?;
        FsdVolume::boot(self.disk, self.config)
    }
}

/// Zeroes the log *data* area (meta replicas stay) through the remap
/// table, so a promoted replica's record scan can never decode a stale
/// record inherited from the primary's image.
fn zero_log_data(disk: &mut SimDisk, layout: &FsdLayout, remap: &[(u32, u32)]) -> Result<()> {
    let translate = |logical: u32| {
        remap
            .iter()
            .find(|&&(l, _)| l == logical)
            .map(|&(_, p)| p)
            .unwrap_or(logical)
    };
    let lo = layout.log_start + DATA_START;
    let hi = layout.log_start + layout.log_sectors;
    let mut addr = lo;
    while addr < hi {
        let phys = translate(addr);
        let mut len = 1u32;
        while addr + len < hi && translate(addr + len) == phys + len {
            len += 1;
        }
        let zeros = vec![0u8; len as usize * cedar_disk::SECTOR_BYTES];
        disk.write(phys, &zeros).map_err(FsdError::Disk)?;
        addr += len;
    }
    Ok(())
}
