//! The concurrent FSD service: per-client op queues, a dedicated
//! log-writer thread, and group-commit epochs formed **across OS
//! threads**.
//!
//! §5.4's group commit is a concurrency optimization: "all of the
//! transactions that were committing during this period are written to
//! the log together, and the log is only forced once for all of these
//! transactions." The [`CommitScheduler`](crate::CommitScheduler)
//! models that behaviour on the simulated clock for deterministic
//! measurements; this module *implements* it for real threads.
//!
//! # Architecture
//!
//! ```text
//!  client threads                    log-writer thread
//!  ─────────────                     ─────────────────
//!  create/write/delete ─┐
//!  sync ────────────────┼─► per-client queues ─► batch ─► apply ─► force
//!  read (cache miss) ───┘        (one per ThreadId)          │       │
//!                                                            ▼       ▼
//!  open/list ──► COW name index ◄──── epoch publish ◄── index+cache update
//!  read (hit) ─► sharded content cache ◄┘
//! ```
//!
//! * **Mutating operations** (`create`, `write`, `delete`) and `sync`
//!   markers enqueue on the calling thread's queue and **block until
//!   the epoch containing them is forced** — commit-on-return, which is
//!   exactly the paper's group commit: every thread that arrives while
//!   an epoch is being applied or forced joins the *next* epoch, and
//!   the whole cohort shares one force. (The lazy half-second flavour,
//!   where dirty pages ride along unforced, is what the window-based
//!   scheduler models; the engine gives the durable flavour threads
//!   expect from a return.)
//! * **The log-writer thread owns the [`FsdVolume`] outright** — it is
//!   moved into the thread at [`FsdEngine::start`] and moved back out
//!   at [`FsdEngine::shutdown`]. There is no volume lock to hold across
//!   a force because there is no volume lock at all.
//! * **The read path does not queue behind writers.** `open` and `list`
//!   are served from a copy-on-write name index (an
//!   `RwLock<Arc<BTreeMap>>` whose snapshot is republished once per
//!   epoch — readers clone the `Arc` and walk it lock-free), and `read`
//!   from a sharded content cache. Only a cache miss on a name the
//!   index knows enqueues a `Read` op, which completes when applied —
//!   it does not wait for the force.
//! * `sync` is an **epoch wait**: a marker op that completes when the
//!   current epoch's force finishes.
//!
//! Reads observe committed state (the index is published only after a
//! successful force); a thread's own writes are visible to it as soon
//! as they return, because the publish happens before the commit slots
//! are released. That is linearizability at group-commit boundaries,
//! and the concurrent conformance suite checks it.
//!
//! On a crash (the simulated disk's power-fail), the force fails, every
//! waiting op completes with the error, and the engine is *poisoned*:
//! all later submissions fail fast. [`FsdEngine::shutdown`] still
//! returns the volume so a test can reboot the disk and watch recovery
//! replay the log to the last commit boundary.

use crate::repl::replica::Replica;
use crate::repl::shipper::{shipper_loop, ReplHandle, ShipperConfig, ShipperShared};
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::thread::{JoinHandle, ThreadId};
use crate::sync::{Condvar, Mutex, MutexGuard, RwLock};
use crate::volume::{CommitStats, FsdVolume};
use cedar_disk::Micros;
use cedar_vol::fs::{CedarFsError, FileInfo, FileSystem, FsBackend, FsStats};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine tuning.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Largest number of operations applied per epoch (backpressure
    /// bound, mirroring `SchedConfig::max_batch_ops`).
    pub max_batch_ops: usize,
    /// Number of content-cache shards (readers hash names across them).
    pub shards: usize,
    /// Bound on cached files per shard; a full shard is reset rather
    /// than LRU-tracked (the cache is a performance device, not state).
    pub cache_entries_per_shard: usize,
    /// Real-time pacing: seconds of wall time per second of simulated
    /// disk time. `None` runs the simulation at full speed;
    /// `Some(0.05)` makes an 80 ms simulated force occupy 4 ms of wall
    /// time, so the saturation bench can measure when the *disk* —
    /// not a lock — becomes the bottleneck.
    pub pace_scale: Option<f64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_batch_ops: 256,
            shards: 16,
            cache_entries_per_shard: 1024,
            pace_scale: None,
        }
    }
}

/// Aggregate counters for an engine run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Operations completed (all verbs, including cache-served reads).
    pub ops: u64,
    /// Mutating operations + syncs (the ones that wait for a force).
    pub write_ops: u64,
    /// Reads and opens served from the index/cache without queueing.
    pub read_hits: u64,
    /// Reads that had to queue for the log-writer.
    pub read_misses: u64,
    /// Committed epochs.
    pub epochs: u64,
    /// Log forces that wrote a record (per the volume's accounting).
    pub log_forces: u64,
    /// Largest epoch cohort.
    pub batch_max: u64,
}

impl EngineStats {
    /// Log forces per completed operation — the §5.4 quantity.
    pub fn forces_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.log_forces as f64 / self.ops as f64
        }
    }
}

/// One queued operation.
enum Op {
    Create { name: String, data: Arc<Vec<u8>> },
    Write { name: String, data: Arc<Vec<u8>> },
    Delete { name: String },
    Read { name: String },
    Sync,
}

/// What an operation yields.
enum Reply {
    Info(FileInfo),
    Data(Arc<Vec<u8>>),
    Unit,
}

type OpResult = Result<Reply, CedarFsError>;

/// The completion slot a client blocks on.
struct Slot {
    state: Mutex<Option<OpResult>>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    fn complete(&self, result: OpResult) {
        *plock(&self.state) = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> OpResult {
        let mut state = plock(&self.state);
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            state = match self.cv.wait(state) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }
}

struct OpReq {
    op: Op,
    slot: Arc<Slot>,
}

/// One client thread's submission queue.
struct ClientQueue {
    state: Mutex<QueueState>,
}

#[derive(Default)]
struct QueueState {
    ops: VecDeque<OpReq>,
    /// Set by the log-writer during shutdown, under this lock: once
    /// closed, no op can slip in after the final drain.
    closed: bool,
}

struct Registry {
    queues: Vec<Arc<ClientQueue>>,
    by_thread: HashMap<ThreadId, usize>,
    /// Round-robin sweep position, so no queue starves under
    /// backpressure.
    next: usize,
}

struct Signal {
    pending: usize,
    stop: bool,
}

/// Locks a mutex, recovering from poison (a panicked peer does not
/// corrupt the protected data — every durable invariant lives in the
/// WAL underneath). This is the engine's only answer to poison: no
/// `unwrap` on a `LockResult` anywhere, so a client thread that dies
/// mid-operation can never wedge the writer or other clients. The
/// loom harness (`tests/loom_engine.rs`) exercises the recovery under
/// model-checked interleavings of a crashing schedule.
fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Real-time pacing of simulated disk time (see
/// [`EngineConfig::pace_scale`]).
struct Pacer {
    scale: f64,
    free_at: Mutex<Instant>,
}

impl Pacer {
    fn new(scale: f64) -> Self {
        Self {
            scale,
            free_at: Mutex::new(Instant::now()),
        }
    }

    /// Blocks until `sim_us` of simulated time has been "spent" at the
    /// configured scale, measured from when the previous spend ended.
    fn pace(&self, sim_us: Micros) {
        let target = {
            let mut free_at = plock(&self.free_at);
            let base = (*free_at).max(Instant::now());
            *free_at = base + Duration::from_secs_f64(sim_us as f64 * self.scale / 1e6);
            *free_at
        };
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
    }
}

struct EngineShared {
    cfg: EngineConfig,
    signal: Mutex<Signal>,
    wake: Condvar,
    registry: Mutex<Registry>,
    /// Copy-on-write name index: name → newest version's info, as of
    /// the last committed epoch. Readers clone the `Arc` and never hold
    /// the `RwLock` past the clone.
    index: RwLock<Arc<BTreeMap<String, FileInfo>>>,
    /// Sharded content cache: full contents of recently written or read
    /// files. The log-writer is the only mutator.
    cache: Vec<RwLock<HashMap<String, Arc<Vec<u8>>>>>,
    stats: Mutex<FsStats>,
    engine_stats: Mutex<EngineStats>,
    poison: Mutex<Option<CedarFsError>>,
    epoch: AtomicU64,
    ops: AtomicU64,
    read_hits: AtomicU64,
    pacer: Option<Pacer>,
    /// When replicated: the shipper rendezvous the log-writer submits
    /// sealed frames to after each force (see `repl::shipper`).
    repl: Option<Arc<ShipperShared>>,
}

impl EngineShared {
    fn shard(&self, name: &str) -> &RwLock<HashMap<String, Arc<Vec<u8>>>> {
        let h = name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100000001b3)
        });
        &self.cache[(h as usize) % self.cache.len()]
    }

    fn snapshot_index(&self) -> Arc<BTreeMap<String, FileInfo>> {
        match self.index.read() {
            Ok(g) => Arc::clone(&g),
            Err(p) => Arc::clone(&p.into_inner()),
        }
    }

    fn cache_get(&self, name: &str) -> Option<Arc<Vec<u8>>> {
        let shard = self.shard(name);
        let map = match shard.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        map.get(name).cloned()
    }

    fn cache_put(&self, name: &str, data: Arc<Vec<u8>>) {
        let shard = self.shard(name);
        let mut map = match shard.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if map.len() >= self.cfg.cache_entries_per_shard && !map.contains_key(name) {
            map.clear();
        }
        map.insert(name.to_string(), data);
    }

    fn cache_remove(&self, name: &str) {
        let shard = self.shard(name);
        let mut map = match shard.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        map.remove(name);
    }

    fn poisoned(&self) -> Option<CedarFsError> {
        plock(&self.poison).clone()
    }

    fn set_poison(&self, e: &CedarFsError) {
        let mut poison = plock(&self.poison);
        if poison.is_none() {
            *poison = Some(e.clone());
        }
    }

    /// The calling thread's queue, created on first use.
    fn my_queue(&self) -> Result<Arc<ClientQueue>, CedarFsError> {
        let tid = crate::sync::thread::current().id();
        let mut reg = plock(&self.registry);
        if let Some(&i) = reg.by_thread.get(&tid) {
            return Ok(Arc::clone(&reg.queues[i]));
        }
        if plock(&self.signal).stop {
            return Err(CedarFsError::Busy("engine shutting down".into()));
        }
        let q = Arc::new(ClientQueue {
            state: Mutex::new(QueueState::default()),
        });
        let slot_index = reg.queues.len();
        reg.by_thread.insert(tid, slot_index);
        reg.queues.push(Arc::clone(&q));
        Ok(q)
    }

    /// Enqueues an op and blocks until the log-writer completes it.
    fn submit(&self, op: Op) -> OpResult {
        if let Some(e) = self.poisoned() {
            return Err(e);
        }
        let queue = self.my_queue()?;
        let slot = Slot::new();
        {
            let mut q = plock(&queue.state);
            if q.closed {
                return Err(self
                    .poisoned()
                    .unwrap_or_else(|| CedarFsError::Busy("engine shutting down".into())));
            }
            q.ops.push_back(OpReq {
                op,
                slot: Arc::clone(&slot),
            });
        }
        {
            let mut sig = plock(&self.signal);
            sig.pending += 1;
            self.wake.notify_all();
        }
        let result = slot.wait();
        self.ops.fetch_add(1, Ordering::Relaxed);
        result
    }

    fn count_hit(&self) {
        self.read_hits.fetch_add(1, Ordering::Relaxed);
        self.ops.fetch_add(1, Ordering::Relaxed);
    }
}

/// The concurrent FSD file service. See the module docs.
pub struct FsdEngine {
    shared: Arc<EngineShared>,
    writer: Mutex<Option<JoinHandle<FsdVolume>>>,
    /// The shipper thread, when started with [`Self::start_replicated`];
    /// joins to the [`Replica`] it owns.
    shipper: Mutex<Option<JoinHandle<Replica>>>,
}

impl FsdEngine {
    /// Moves `vol` onto a dedicated log-writer thread and starts
    /// serving. The volume's own interval commit daemon is disabled:
    /// from here on, the log-writer does all forcing.
    pub fn start(vol: FsdVolume, cfg: EngineConfig) -> Result<Self, CedarFsError> {
        Self::validate_cfg(&cfg)?;
        Self::start_inner(vol, cfg, None, None)
    }

    /// [`Self::start`] with log-shipping replication: installs a
    /// [`Replica`] (full-state transfer of the volume), spawns the
    /// `fsd-shipper` thread, and from then on every group commit's
    /// sealed frames are handed over with the acknowledgement
    /// discipline of `ship.mode` — clients are not released before the
    /// mode's durability point. `config` is the volume's own
    /// [`crate::FsdConfig`], needed to boot the replica clone.
    pub fn start_replicated(
        mut vol: FsdVolume,
        cfg: EngineConfig,
        config: crate::FsdConfig,
        ship: ShipperConfig,
    ) -> Result<Self, CedarFsError> {
        // Validate before spawning anything so no thread leaks on a
        // refused start.
        Self::validate_cfg(&cfg)?;
        let replica = Replica::install(&mut vol, config).map_err(CedarFsError::from)?;
        let shared_ship = Arc::new(ShipperShared::new(ship));
        let ship_shared = Arc::clone(&shared_ship);
        let handle = crate::sync::thread::Builder::new()
            .name("fsd-shipper".into())
            .spawn(move || shipper_loop(ship_shared, replica))
            .map_err(|e| CedarFsError::Busy(format!("cannot spawn shipper: {e}")))?;
        Self::start_inner(vol, cfg, Some(shared_ship), Some(handle))
    }

    fn validate_cfg(cfg: &EngineConfig) -> Result<(), CedarFsError> {
        // Config errors are the caller's to handle, not a panic: the
        // engine refuses to start rather than dividing by a zero shard
        // count or spinning on an empty batch bound later.
        if cfg.max_batch_ops < 1 {
            return Err(CedarFsError::Busy(
                "engine config: max_batch_ops must admit at least one op".into(),
            ));
        }
        if cfg.shards < 1 {
            return Err(CedarFsError::Busy(
                "engine config: need at least one cache shard".into(),
            ));
        }
        Ok(())
    }

    fn start_inner(
        mut vol: FsdVolume,
        cfg: EngineConfig,
        repl: Option<Arc<ShipperShared>>,
        shipper: Option<JoinHandle<Replica>>,
    ) -> Result<Self, CedarFsError> {
        vol.set_commit_interval(Micros::MAX);
        // Warm the name index so reads are served without queueing from
        // the first operation.
        let mut index = BTreeMap::new();
        match FsBackend::list(&mut vol, "") {
            Ok(infos) => {
                for info in infos {
                    index.insert(info.name.clone(), info);
                }
            }
            Err(e) => {
                // Refused start: don't leak a parked shipper thread.
                if let Some(r) = &repl {
                    r.request_stop();
                }
                if let Some(sh) = shipper {
                    let _ = sh.join();
                }
                return Err(e);
            }
        }
        let stats = FsBackend::stats(&vol);
        let baseline = vol.commit_stats();
        let shared = Arc::new(EngineShared {
            signal: Mutex::new(Signal {
                pending: 0,
                stop: false,
            }),
            wake: Condvar::new(),
            registry: Mutex::new(Registry {
                queues: Vec::new(),
                by_thread: HashMap::new(),
                next: 0,
            }),
            index: RwLock::new(Arc::new(index)),
            cache: (0..cfg.shards)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            stats: Mutex::new(stats),
            engine_stats: Mutex::new(EngineStats::default()),
            poison: Mutex::new(None),
            epoch: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            read_hits: AtomicU64::new(0),
            pacer: cfg.pace_scale.map(Pacer::new),
            repl,
            cfg,
        });
        let writer_shared = Arc::clone(&shared);
        let handle = match crate::sync::thread::Builder::new()
            .name("fsd-log-writer".into())
            .spawn(move || writer_loop(vol, writer_shared, baseline))
        {
            Ok(h) => h,
            Err(e) => {
                // Don't leak a parked shipper if the writer can't start.
                if let Some(r) = &shared.repl {
                    r.request_stop();
                }
                if let Some(sh) = shipper {
                    let _ = sh.join();
                }
                return Err(CedarFsError::Busy(format!("cannot spawn log-writer: {e}")));
            }
        };
        Ok(Self {
            shared,
            writer: Mutex::new(Some(handle)),
            shipper: Mutex::new(shipper),
        })
    }

    /// Committed epochs so far.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Aggregate engine counters (epoch-grained fields are as of the
    /// last committed epoch).
    pub fn engine_stats(&self) -> EngineStats {
        let mut s = *plock(&self.shared.engine_stats);
        s.ops = self.shared.ops.load(Ordering::Relaxed);
        s.read_hits = self.shared.read_hits.load(Ordering::Relaxed);
        s
    }

    /// The crash error the engine is poisoned with, if any.
    pub fn poisoned(&self) -> Option<CedarFsError> {
        self.shared.poisoned()
    }

    /// Stops the log-writer (after a final drain and force) and moves
    /// the volume back out. Outstanding operations complete first; new
    /// ones get [`CedarFsError::Busy`].
    pub fn shutdown(self) -> Result<FsdVolume, CedarFsError> {
        let handle = self.stop_writer();
        match handle {
            Some(h) => h
                .join()
                .map_err(|_| CedarFsError::Corrupt("log-writer thread panicked".into())),
            None => Err(CedarFsError::Busy("engine already shut down".into())),
        }
    }

    /// [`Self::shutdown`] for an engine behind an `Arc` (fails if other
    /// references are still alive).
    pub fn shutdown_arc(engine: Arc<Self>) -> Result<FsdVolume, CedarFsError> {
        match Arc::try_unwrap(engine) {
            Ok(e) => e.shutdown(),
            Err(_) => Err(CedarFsError::Busy(
                "engine references still outstanding".into(),
            )),
        }
    }

    fn stop_writer(&self) -> Option<JoinHandle<FsdVolume>> {
        {
            let mut sig = plock(&self.shared.signal);
            sig.stop = true;
            self.shared.wake.notify_all();
        }
        plock(&self.writer).take()
    }

    /// Observability/fault-injection handle onto the shipper, if this
    /// engine was started with [`Self::start_replicated`].
    pub fn repl_handle(&self) -> Option<ReplHandle> {
        self.shared.repl.as_ref().map(|r| ReplHandle {
            shared: Arc::clone(r),
        })
    }

    /// [`Self::shutdown`] for a replicated engine: stops the log-writer
    /// (final drain + force, with its frames submitted under the
    /// configured ack mode), then asks the shipper to drain its queue
    /// and hands back both the primary volume and the [`Replica`].
    /// Works after a crash-poisoning too — everything the shipper can
    /// still ship is drained, so sync-mode acknowledgements stay
    /// honest.
    pub fn shutdown_replicated(self) -> Result<(FsdVolume, Replica), CedarFsError> {
        let vol = match self.stop_writer() {
            Some(h) => h
                .join()
                .map_err(|_| CedarFsError::Corrupt("log-writer thread panicked".into()))?,
            None => return Err(CedarFsError::Busy("engine already shut down".into())),
        };
        let handle = self.stop_shipper();
        match handle {
            Some(h) => {
                let replica = h
                    .join()
                    .map_err(|_| CedarFsError::Corrupt("shipper thread panicked".into()))?;
                Ok((vol, replica))
            }
            None => Err(CedarFsError::Busy("engine is not replicated".into())),
        }
    }

    fn stop_shipper(&self) -> Option<JoinHandle<Replica>> {
        if let Some(r) = &self.shared.repl {
            r.request_stop();
        }
        plock(&self.shipper).take()
    }
}

impl Drop for FsdEngine {
    fn drop(&mut self) {
        if let Some(h) = self.stop_writer() {
            // The volume is discarded; join only so the thread does not
            // outlive the engine.
            let _ = h.join();
        }
        if let Some(h) = self.stop_shipper() {
            // Likewise the replica: drained and discarded.
            let _ = h.join();
        }
    }
}

impl FileSystem for FsdEngine {
    fn kind(&self) -> &'static str {
        "fsd-engine"
    }

    fn create(&self, name: &str, data: &[u8]) -> Result<FileInfo, CedarFsError> {
        match self.shared.submit(Op::Create {
            name: name.to_string(),
            data: Arc::new(data.to_vec()),
        })? {
            Reply::Info(i) => Ok(i),
            _ => Err(CedarFsError::Corrupt("create reply shape".into())),
        }
    }

    fn open(&self, name: &str) -> Result<FileInfo, CedarFsError> {
        // Served from the committed-epoch snapshot, never queued.
        let index = self.shared.snapshot_index();
        self.shared.count_hit();
        index
            .get(name)
            .cloned()
            .ok_or_else(|| CedarFsError::NotFound(name.to_string()))
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, CedarFsError> {
        let index = self.shared.snapshot_index();
        if !index.contains_key(name) {
            self.shared.count_hit();
            return Err(CedarFsError::NotFound(name.to_string()));
        }
        if let Some(data) = self.shared.cache_get(name) {
            self.shared.count_hit();
            return Ok(data.as_ref().clone());
        }
        match self.shared.submit(Op::Read {
            name: name.to_string(),
        })? {
            Reply::Data(d) => Ok(d.as_ref().clone()),
            _ => Err(CedarFsError::Corrupt("read reply shape".into())),
        }
    }

    fn write(&self, name: &str, data: &[u8]) -> Result<FileInfo, CedarFsError> {
        match self.shared.submit(Op::Write {
            name: name.to_string(),
            data: Arc::new(data.to_vec()),
        })? {
            Reply::Info(i) => Ok(i),
            _ => Err(CedarFsError::Corrupt("write reply shape".into())),
        }
    }

    fn delete(&self, name: &str) -> Result<(), CedarFsError> {
        self.shared.submit(Op::Delete {
            name: name.to_string(),
        })?;
        Ok(())
    }

    fn list(&self, prefix: &str) -> Result<Vec<FileInfo>, CedarFsError> {
        let index = self.shared.snapshot_index();
        self.shared.count_hit();
        Ok(index
            .range(prefix.to_string()..)
            .take_while(|(name, _)| name.starts_with(prefix))
            .map(|(_, info)| info.clone())
            .collect())
    }

    fn sync(&self) -> Result<(), CedarFsError> {
        self.shared.submit(Op::Sync)?;
        Ok(())
    }

    fn stats(&self) -> FsStats {
        *plock(&self.shared.stats)
    }
}

// ---------------------------------------------------------------------------
// Log-writer thread
// ---------------------------------------------------------------------------

/// How an applied op changes the published name index.
enum IndexUpdate {
    Put(FileInfo),
    Remove(String),
}

/// An applied-but-uncommitted mutating op, waiting for the force.
struct HeldOp {
    slot: Arc<Slot>,
    result: OpResult,
    /// Index/cache effect, applied only if the force succeeds.
    update: Option<IndexUpdate>,
    cache: Option<(String, Option<Arc<Vec<u8>>>)>,
}

fn writer_loop(mut vol: FsdVolume, shared: Arc<EngineShared>, baseline: CommitStats) -> FsdVolume {
    let mut last_sim_us = vol.clock().now();
    loop {
        let stopping = wait_for_work(&shared);
        let batch = gather(&shared, shared.cfg.max_batch_ops);
        if batch.is_empty() {
            if stopping {
                // Close every queue (no op can slip past the closed
                // flag), drain the stragglers, and exit.
                let rest = close_and_drain(&shared);
                if !rest.is_empty() {
                    process_batch(&mut vol, &shared, rest, &baseline, &mut last_sim_us);
                }
                break;
            }
            continue;
        }
        process_batch(&mut vol, &shared, batch, &baseline, &mut last_sim_us);
    }
    vol
}

/// Blocks until there is work or a stop request; returns the stop flag.
fn wait_for_work(shared: &EngineShared) -> bool {
    let mut sig = plock(&shared.signal);
    loop {
        if sig.pending > 0 || sig.stop {
            return sig.stop;
        }
        sig = match shared.wake.wait(sig) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
    }
}

/// Takes up to `cap` ops, sweeping the queues round-robin from where
/// the last sweep stopped.
fn gather(shared: &EngineShared, cap: usize) -> Vec<OpReq> {
    let queues: Vec<Arc<ClientQueue>>;
    let start;
    {
        let reg = plock(&shared.registry);
        queues = reg.queues.clone();
        start = reg.next;
    }
    let mut batch = Vec::new();
    if queues.is_empty() {
        return batch;
    }
    let mut idle_rounds = 0;
    let mut i = start % queues.len();
    while batch.len() < cap && idle_rounds < queues.len() {
        let popped = {
            let mut q = plock(&queues[i].state);
            q.ops.pop_front()
        };
        match popped {
            Some(req) => {
                batch.push(req);
                idle_rounds = 0;
            }
            None => idle_rounds += 1,
        }
        i = (i + 1) % queues.len();
    }
    {
        let mut reg = plock(&shared.registry);
        reg.next = i;
    }
    if !batch.is_empty() {
        let mut sig = plock(&shared.signal);
        sig.pending = sig.pending.saturating_sub(batch.len());
    }
    batch
}

/// Shutdown path: closes all queues and returns everything still
/// enqueued.
fn close_and_drain(shared: &EngineShared) -> Vec<OpReq> {
    let queues: Vec<Arc<ClientQueue>> = plock(&shared.registry).queues.clone();
    let mut rest = Vec::new();
    for queue in queues {
        let mut q = plock(&queue.state);
        q.closed = true;
        rest.extend(q.ops.drain(..));
    }
    let mut sig = plock(&shared.signal);
    sig.pending = sig.pending.saturating_sub(rest.len());
    rest
}

/// Applies one batch, forces once for all its mutations, publishes the
/// new epoch, and releases the waiting clients.
fn process_batch(
    vol: &mut FsdVolume,
    shared: &EngineShared,
    batch: Vec<OpReq>,
    baseline: &CommitStats,
    last_sim_us: &mut Micros,
) {
    let mut held: Vec<HeldOp> = Vec::new();
    let mut need_force = false;
    let batch_len = batch.len() as u64;

    for req in batch {
        match req.op {
            Op::Create { name, data } | Op::Write { name, data } => {
                // Both verbs log the next version of the name on FSD.
                match FsBackend::create(vol, &name, &data) {
                    Ok(info) => {
                        need_force = true;
                        held.push(HeldOp {
                            slot: req.slot,
                            update: Some(IndexUpdate::Put(info.clone())),
                            cache: Some((name, Some(data))),
                            result: Ok(Reply::Info(info)),
                        });
                    }
                    Err(e) => {
                        if e.is_crash() {
                            shared.set_poison(&e);
                        }
                        req.slot.complete(Err(e));
                    }
                }
            }
            Op::Delete { name } => match FsBackend::delete(vol, &name) {
                Ok(()) => {
                    need_force = true;
                    // An older version may become the newest; ask the
                    // volume what the name looks like now.
                    let update = match FsBackend::open(vol, &name) {
                        Ok(info) => IndexUpdate::Put(info),
                        Err(_) => IndexUpdate::Remove(name.clone()),
                    };
                    held.push(HeldOp {
                        slot: req.slot,
                        update: Some(update),
                        cache: Some((name, None)),
                        result: Ok(Reply::Unit),
                    });
                }
                Err(e) => {
                    if e.is_crash() {
                        shared.set_poison(&e);
                    }
                    req.slot.complete(Err(e));
                }
            },
            Op::Read { name } => match FsBackend::read(vol, &name) {
                Ok(data) => {
                    let data = Arc::new(data);
                    shared.cache_put(&name, Arc::clone(&data));
                    bump_misses(shared);
                    req.slot.complete(Ok(Reply::Data(data)));
                }
                Err(e) => {
                    if e.is_crash() {
                        shared.set_poison(&e);
                    }
                    bump_misses(shared);
                    req.slot.complete(Err(e));
                }
            },
            Op::Sync => {
                need_force = true;
                held.push(HeldOp {
                    slot: req.slot,
                    update: None,
                    cache: None,
                    result: Ok(Reply::Unit),
                });
            }
        }
    }

    let force_err: Option<CedarFsError> = if need_force {
        match vol.force() {
            Ok(()) => None,
            Err(e) => {
                let ce: CedarFsError = e.into();
                if ce.is_crash() {
                    shared.set_poison(&ce);
                }
                Some(ce)
            }
        }
    } else {
        None
    };

    match force_err {
        None => {
            // Replication hand-off happens *before* any client slot
            // completes: submit_and_wait blocks until the configured
            // mode's durability point (replica applied for sync,
            // received for semi-sync, bounded backlog for async), so an
            // acknowledgement is never issued early. On a shipping
            // failure the batch's clients get the retryable `Link`
            // error — the epoch is still published (it is durable on
            // the primary and the frames stay queued for retry), but
            // nothing is acknowledged as replicated when it is not.
            let repl_err: Option<CedarFsError> = match &shared.repl {
                Some(r) if vol.repl_tap_enabled() => {
                    r.submit_and_wait(vol.take_repl_frames()).err()
                }
                _ => None,
            };
            publish_epoch(vol, shared, &held, baseline, batch_len);
            pace_epoch(vol, shared, last_sim_us);
            match repl_err {
                None => {
                    for op in held {
                        op.slot.complete(op.result);
                    }
                }
                Some(e) => {
                    for op in held {
                        op.slot.complete(Err(e.clone()));
                    }
                }
            }
        }
        Some(e) => {
            // Nothing from this epoch is published: the index keeps the
            // last committed snapshot, matching what recovery will
            // reconstruct.
            for op in held {
                op.slot.complete(Err(e.clone()));
            }
        }
    }
}

fn bump_misses(shared: &EngineShared) {
    plock(&shared.engine_stats).read_misses += 1;
}

/// Publishes the committed epoch: new index snapshot, cache updates,
/// stats, counters — all *before* any waiting client is released, so a
/// client's own write is visible to its next read.
fn publish_epoch(
    vol: &mut FsdVolume,
    shared: &EngineShared,
    held: &[HeldOp],
    baseline: &CommitStats,
    batch_len: u64,
) {
    let updates: Vec<&IndexUpdate> = held.iter().filter_map(|h| h.update.as_ref()).collect();
    if !updates.is_empty() {
        let mut next = shared.snapshot_index().as_ref().clone();
        for u in &updates {
            match u {
                IndexUpdate::Put(info) => {
                    next.insert(info.name.clone(), info.clone());
                }
                IndexUpdate::Remove(name) => {
                    next.remove(name);
                }
            }
        }
        let next = Arc::new(next);
        match shared.index.write() {
            Ok(mut g) => *g = next,
            Err(p) => *p.into_inner() = next,
        }
    }
    for h in held {
        match &h.cache {
            Some((name, Some(data))) => shared.cache_put(name, Arc::clone(data)),
            Some((name, None)) => shared.cache_remove(name),
            None => {}
        }
    }
    *plock(&shared.stats) = FsBackend::stats(vol);
    {
        let mut es = plock(&shared.engine_stats);
        es.epochs += 1;
        es.write_ops += held.len() as u64;
        es.log_forces = vol.commit_stats().forces - baseline.forces;
        es.batch_max = es.batch_max.max(batch_len);
    }
    shared.epoch.fetch_add(1, Ordering::AcqRel);
}

/// Converts the epoch's simulated-time cost into wall time when pacing
/// is configured. Runs after the force and before clients are released,
/// so client threads experience the simulated disk's latency.
fn pace_epoch(vol: &FsdVolume, shared: &EngineShared, last_sim_us: &mut Micros) {
    let now = vol.clock().now();
    let delta = now.saturating_sub(*last_sim_us);
    *last_sim_us = now;
    if let Some(pacer) = &shared.pacer {
        if delta > 0 {
            pacer.pace(delta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FsdConfig;
    use cedar_disk::{CpuModel, SimDisk};

    /// Deterministic per-name test payload.
    fn content_for(name: &str, bytes: usize) -> Vec<u8> {
        name.bytes().cycle().take(bytes).collect()
    }

    fn vol(log_sectors: u32) -> FsdVolume {
        FsdVolume::format(
            SimDisk::tiny(),
            FsdConfig {
                nt_pages: 96,
                log_sectors,
                cpu: CpuModel::FREE,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn engine(log_sectors: u32) -> Arc<FsdEngine> {
        Arc::new(FsdEngine::start(vol(log_sectors), EngineConfig::default()).unwrap())
    }

    #[test]
    fn single_thread_roundtrip() {
        let e = engine(512);
        let info = e.create("d/a", b"one").unwrap();
        assert_eq!((info.version, info.bytes), (1, 3));
        assert_eq!(e.read("d/a").unwrap(), b"one");
        assert_eq!(e.open("d/a").unwrap().version, 1);
        let info = e.write("d/a", b"two!").unwrap();
        assert_eq!(info.version, 2);
        assert_eq!(e.read("d/a").unwrap(), b"two!");
        assert_eq!(e.list("d/").unwrap().len(), 1);
        e.delete("d/a").unwrap();
        // Older version resurfaces in the index after the delete.
        assert_eq!(e.open("d/a").unwrap().version, 1);
        assert_eq!(e.read("d/a").unwrap(), b"one");
        e.sync().unwrap();
        let mut vol = FsdEngine::shutdown_arc(e).unwrap();
        assert_eq!(FsBackend::read(&mut vol, "d/a").unwrap(), b"one");
    }

    #[test]
    fn threads_share_forces() {
        let e = engine(512);
        let threads: Vec<_> = (0..8)
            .map(|id| {
                let e = Arc::clone(&e);
                std::thread::spawn(move || {
                    for i in 0..12 {
                        let name = format!("c{id:02}/f{i}");
                        e.create(&name, &content_for(&name, 256)).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = e.engine_stats();
        assert_eq!(stats.write_ops, 96);
        assert!(
            stats.log_forces < 96,
            "group commit must amortize forces: {stats:?}"
        );
        assert!(e.list("").unwrap().len() == 96);
        let vol = FsdEngine::shutdown_arc(e).unwrap();
        assert!(vol.commit_stats().forces > 0);
    }

    #[test]
    fn reads_do_not_queue_after_warmup() {
        let e = engine(512);
        e.create("a/x", b"hello").unwrap();
        // First read may queue (cache fill on create makes even that a
        // hit); subsequent reads and opens must all be hits.
        let before = e.engine_stats();
        for _ in 0..10 {
            assert_eq!(e.read("a/x").unwrap(), b"hello");
            e.open("a/x").unwrap();
            e.list("a/").unwrap();
        }
        let after = e.engine_stats();
        assert_eq!(after.read_misses, before.read_misses, "all served shared");
        assert!(after.read_hits >= before.read_hits + 30);
        drop(e);
    }

    #[test]
    fn not_found_and_poison_paths() {
        let e = engine(512);
        assert!(matches!(e.read("nope"), Err(CedarFsError::NotFound(_))));
        assert!(matches!(e.open("nope"), Err(CedarFsError::NotFound(_))));
        assert!(matches!(e.delete("nope"), Err(CedarFsError::NotFound(_))));
        assert!(e.poisoned().is_none());
        drop(e);
    }

    #[test]
    fn index_warm_from_existing_volume() {
        let mut v = vol(512);
        FsBackend::create(&mut v, "pre/x", b"cold").unwrap();
        v.force().unwrap();
        let e = Arc::new(FsdEngine::start(v, EngineConfig::default()).unwrap());
        assert_eq!(e.open("pre/x").unwrap().bytes, 4);
        assert_eq!(e.read("pre/x").unwrap(), b"cold");
        drop(e);
    }

    #[test]
    fn shutdown_completes_outstanding_work() {
        let e = engine(512);
        for i in 0..20 {
            e.create(&format!("f{i}"), b"d").unwrap();
        }
        let mut vol = FsdEngine::shutdown_arc(e).unwrap();
        assert_eq!(FsBackend::list(&mut vol, "").unwrap().len(), 20);
        assert!(vol.verify().is_ok());
    }

    #[test]
    fn submissions_after_shutdown_fail_fast() {
        let e = FsdEngine::start(vol(512), EngineConfig::default()).unwrap();
        e.create("a", b"1").unwrap();
        let vol = e.shutdown().unwrap();
        drop(vol);
    }

    #[test]
    fn degenerate_config_is_a_typed_error_not_a_panic() {
        let cfg = EngineConfig {
            max_batch_ops: 0,
            ..Default::default()
        };
        assert!(matches!(
            FsdEngine::start(vol(256), cfg),
            Err(CedarFsError::Busy(_))
        ));
        let cfg = EngineConfig {
            shards: 0,
            ..Default::default()
        };
        assert!(matches!(
            FsdEngine::start(vol(256), cfg),
            Err(CedarFsError::Busy(_))
        ));
    }
}
