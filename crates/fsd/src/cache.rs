//! The name-table page cache and its logged page store.
//!
//! "Updates are applied to buffered copies of pages, but the copies are
//! not forced to disk — they are just written to the log." (§5.3). This
//! module provides:
//!
//! * [`NtCache`] — cached name-table pages. Each page tracks its current
//!   image, the *baseline* (the image as of its last log force or home
//!   write — what the group-commit code diffs against to log only changed
//!   sectors), which third of the log its newest log copy lives in, and
//!   whether the home copies on disk are stale;
//! * [`NtMeta`] — name-table logical page 0: the B-tree root pointer and
//!   the page-allocation bitmap. It travels through the same cache and
//!   log as every other page, which is what makes multi-page tree updates
//!   atomic;
//! * [`FsdNtStore`] — the [`PageStore`] the B-tree runs on: reads fall
//!   through to the double-written home copies ("When a page is read,
//!   both copies are read and checked", §5.1), writes touch only the
//!   cache and the pending-commit set.

use crate::layout::FsdLayout;
use crate::spare::{self, SpareMap};
use crate::{FsdError, NT_PAGE_BYTES, NT_PAGE_SECTORS};
use cedar_btree::{PageId, PageStore, StoreError};
use cedar_disk::scan;
use cedar_disk::sched::IoPolicy;
use cedar_disk::{Cpu, DiskError, SimDisk, SECTOR_BYTES};
use cedar_vol::codec::{Reader, Writer};
use std::collections::{BTreeSet, HashMap};

/// Magic number identifying the name-table meta page.
pub const NT_META_MAGIC: u32 = 0xF5D_3E7B;

/// Bytes of header (magic, root, word count) at the front of meta page 0.
const NT_META_HEADER_BYTES: usize = 10;

/// Bitmap words that fit in meta page 0 after the header.
pub const NT_META_P0_WORDS: usize = (NT_PAGE_BYTES - NT_META_HEADER_BYTES) / 8;

/// Bitmap words per continuation meta page (raw `u64`s, no header).
pub const NT_META_CONT_WORDS: usize = NT_PAGE_BYTES / 8;

/// A cached name-table page.
#[derive(Clone, Debug)]
pub struct CachedPage {
    /// Current content (may include uncommitted updates).
    pub image: Vec<u8>,
    /// Content as of the last log force or home write; `None` means the
    /// page was freshly allocated and every sector must be logged at the
    /// next force.
    pub baseline: Option<Vec<u8>>,
    /// The log third holding the page's newest log copy, if any.
    pub last_logged_third: Option<u8>,
    /// `true` when logged changes have not yet been written to the home
    /// copies.
    pub needs_home: bool,
    /// Approximate-LRU stamp.
    pub last_used: u64,
}

/// The name-table page cache.
///
/// Unbounded by default; with a capacity set (the Dorado's memory was
/// finite), clean pages are evicted approximately-LRU. Pages that are
/// dirty (pending commit) or whose home copies are stale are pinned —
/// "the cache is maintained such that the 'dirty but logged' pages are
/// kept in the cache" (§5.3).
#[derive(Debug, Default)]
pub struct NtCache {
    /// Cached pages by logical page id.
    pub pages: HashMap<PageId, CachedPage>,
    /// Maximum resident pages; 0 = unbounded.
    pub capacity: usize,
    /// Monotone use counter for the LRU stamps.
    pub tick: u64,
}

impl NtCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a cache bounded to `capacity` pages (0 = unbounded).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity,
            ..Self::default()
        }
    }

    /// Bumps and returns the use counter.
    pub fn stamp(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Evicts clean LRU pages until within capacity. Pages in `pinned`
    /// (the pending-commit set) and pages with stale homes stay resident;
    /// the meta page (0) is always pinned.
    pub fn evict_to_capacity(&mut self, pinned: &std::collections::BTreeSet<PageId>) {
        if self.capacity == 0 {
            return;
        }
        while self.pages.len() > self.capacity {
            let victim = self
                .pages
                .iter()
                .filter(|(id, p)| **id != 0 && !p.needs_home && !pinned.contains(id))
                .min_by_key(|(_, p)| p.last_used)
                .map(|(id, _)| *id);
            match victim {
                Some(id) => {
                    self.pages.remove(&id);
                }
                None => break, // Everything resident is pinned.
            }
        }
    }
}

/// The decoded name-table meta record (logical page 0 and, on volumes
/// whose allocation bitmap outgrows one page, raw continuation pages
/// 1..K — all pre-marked allocated so the tree never claims them).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NtMeta {
    /// Root page of the name-table B-tree (always in page 0, at a fixed
    /// byte offset, so root-only readers never need the full bitmap).
    pub root: u32,
    /// Page-allocation bitmap (bit set ⇒ page in use; bits 0..K cover
    /// the meta pages themselves).
    pub bitmap: Vec<u64>,
}

impl NtMeta {
    /// Meta pages needed for a bitmap of `words` `u64` words.
    pub fn meta_pages_for_words(words: usize) -> usize {
        1 + words
            .saturating_sub(NT_META_P0_WORDS)
            .div_ceil(NT_META_CONT_WORDS)
    }

    /// Meta pages needed for a volume with `nt_pages` logical pages.
    pub fn meta_pages_for(nt_pages: u32) -> usize {
        Self::meta_pages_for_words((nt_pages as usize).div_ceil(64))
    }

    /// Meta pages this instance occupies.
    pub fn meta_pages(&self) -> usize {
        Self::meta_pages_for_words(self.bitmap.len())
    }

    /// Index of the meta page holding bitmap word `w`.
    pub fn meta_page_of_word(w: usize) -> usize {
        if w < NT_META_P0_WORDS {
            0
        } else {
            1 + (w - NT_META_P0_WORDS) / NT_META_CONT_WORDS
        }
    }

    /// A fresh meta record for `nt_pages` logical pages, with only the
    /// meta pages themselves allocated.
    pub fn new(nt_pages: u32) -> Self {
        let words = (nt_pages as usize).div_ceil(64);
        let mut bitmap = vec![0u64; words];
        for page in 0..Self::meta_pages_for_words(words) as u32 {
            bitmap[page as usize / 64] |= 1 << (page % 64);
        }
        Self { root: 0, bitmap }
    }

    /// Encodes a single-page meta into a full name-table page. Panics if
    /// the bitmap spills past page 0 — use [`NtMeta::encode_pages`] then.
    pub fn encode(&self) -> Vec<u8> {
        assert_eq!(self.meta_pages(), 1, "NT meta overflow — use encode_pages");
        self.encode_pages().swap_remove(0)
    }

    /// Encodes into one page image per meta page: page 0 carries the
    /// header plus the first [`NT_META_P0_WORDS`] words, continuation
    /// pages carry raw words (no word ever spans a page boundary).
    pub fn encode_pages(&self) -> Vec<Vec<u8>> {
        let mut pages = Vec::with_capacity(self.meta_pages());
        let head = self.bitmap.len().min(NT_META_P0_WORDS);
        let mut w = Writer::new();
        // The word count is bounded far below `u16::MAX` by the layout
        // (a saturated count would fail `decode_pages`'s page-count
        // check loudly rather than alias a smaller bitmap).
        w.u32(NT_META_MAGIC)
            .u32(self.root)
            .u16(u16::try_from(self.bitmap.len()).unwrap_or(u16::MAX));
        for word in &self.bitmap[..head] {
            w.u64(*word);
        }
        let mut p0 = w.into_bytes();
        p0.resize(NT_PAGE_BYTES, 0);
        pages.push(p0);
        for chunk in self.bitmap[head..].chunks(NT_META_CONT_WORDS) {
            let mut w = Writer::new();
            for word in chunk {
                w.u64(*word);
            }
            let mut p = w.into_bytes();
            p.resize(NT_PAGE_BYTES, 0);
            pages.push(p);
        }
        pages
    }

    /// Decodes a single-page meta from a name-table page.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        Self::decode_pages(std::slice::from_ref(&bytes.to_vec()))
    }

    /// Decodes from meta page images (page 0 first, then continuations).
    pub fn decode_pages(pages: &[Vec<u8>]) -> Result<Self, String> {
        let p0 = pages.first().ok_or_else(|| "empty NT meta".to_string())?;
        let mut r = Reader::new(p0);
        if r.u32()? != NT_META_MAGIC {
            return Err("bad NT meta magic".into());
        }
        let root = r.u32()?;
        let words = r.u16()? as usize;
        let need = Self::meta_pages_for_words(words);
        if pages.len() < need {
            return Err(format!(
                "NT meta: {words}-word bitmap spans {need} pages, got {}",
                pages.len()
            ));
        }
        let mut bitmap = Vec::with_capacity(words);
        for _ in 0..words.min(NT_META_P0_WORDS) {
            bitmap.push(r.u64()?);
        }
        for page in pages[1..need].iter() {
            let take = (words - bitmap.len()).min(NT_META_CONT_WORDS);
            let mut r = Reader::new(page);
            for _ in 0..take {
                bitmap.push(r.u64()?);
            }
        }
        Ok(Self { root, bitmap })
    }

    /// Reads just the root pointer from meta page 0. Valid whatever the
    /// bitmap's page span — the header never leaves page 0.
    pub fn decode_root(bytes: &[u8]) -> Result<u32, String> {
        let mut r = Reader::new(bytes);
        if r.u32()? != NT_META_MAGIC {
            return Err("bad NT meta magic".into());
        }
        r.u32()
    }

    /// Allocates a page from the bitmap.
    pub fn alloc(&mut self, nt_pages: u32) -> Option<u32> {
        for page in 1..nt_pages {
            let (w, b) = (page as usize / 64, page % 64);
            if self.bitmap[w] >> b & 1 == 0 {
                self.bitmap[w] |= 1 << b;
                return Some(page);
            }
        }
        None
    }

    /// Frees a page in the bitmap.
    pub fn free(&mut self, page: u32) {
        assert_ne!(page, 0, "cannot free the meta page");
        let (w, b) = (page as usize / 64, page % 64);
        self.bitmap[w] &= !(1 << b);
    }

    /// Returns `true` if the page is allocated.
    pub fn in_use(&self, page: u32) -> bool {
        let (w, b) = (page as usize / 64, page % 64);
        self.bitmap[w] >> b & 1 == 1
    }
}

fn to_store_err(e: DiskError) -> StoreError {
    match e {
        DiskError::Crashed => StoreError::Crashed,
        other => StoreError::Io(other.to_string()),
    }
}

/// The logged page store backing the FSD name-table B-tree.
pub struct FsdNtStore<'a> {
    /// The disk (reads, plus scrub rewrites of damaged replica sectors).
    pub disk: &'a mut SimDisk,
    /// CPU charger.
    pub cpu: &'a Cpu,
    /// Volume layout.
    pub layout: &'a FsdLayout,
    /// I/O policy for scrub rewrites.
    pub policy: IoPolicy,
    /// Bad-sector remap table: reads translate through it, and a scrub
    /// whose rewrite fails grows it.
    pub spare: &'a mut SpareMap,
    /// The page cache.
    pub cache: &'a mut NtCache,
    /// Pages dirtied since the last group commit.
    pub pending: &'a mut BTreeSet<PageId>,
}

impl FsdNtStore<'_> {
    /// Reads a page through the cache, falling back to the home copies.
    pub fn read_through(&mut self, id: PageId) -> Result<Vec<u8>, StoreError> {
        let stamp = self.cache.stamp();
        if let Some(p) = self.cache.pages.get_mut(&id) {
            p.last_used = stamp;
            return Ok(p.image.clone());
        }
        // "When a page is read, both copies are read and checked." A
        // damaged copy is scrubbed from its twin immediately: a second
        // media fault must not find the damage still in place.
        let at_a = self.layout.nt_a_sector(id);
        let at_b = self.layout.nt_b_sector(id);
        let (a, a_mask) = self
            .spare
            .read_allow_damage(self.disk, at_a, NT_PAGE_SECTORS as usize)
            .map_err(to_store_err)?;
        let (b, b_mask) = self
            .spare
            .read_allow_damage(self.disk, at_b, NT_PAGE_SECTORS as usize)
            .map_err(to_store_err)?;
        let a_ok = a_mask.iter().all(|&d| !d);
        let b_ok = b_mask.iter().all(|&d| !d);
        let image = if a_ok {
            a
        } else if b_ok {
            b
        } else {
            // Salvage sector by sector: the failure model says at most two
            // consecutive sectors die, so A and B never lose the same one.
            let mut img = Vec::with_capacity(NT_PAGE_BYTES);
            for i in 0..NT_PAGE_SECTORS as usize {
                let range = i * SECTOR_BYTES..(i + 1) * SECTOR_BYTES;
                if !a_mask[i] {
                    img.extend_from_slice(&a[range]);
                } else if !b_mask[i] {
                    img.extend_from_slice(&b[range]);
                } else {
                    return Err(StoreError::Io(format!(
                        "name table page {id}: sector {i} lost in both copies"
                    )));
                }
            }
            img
        };
        let mut needs_home = false;
        if !a_ok || !b_ok {
            let mut writes = Vec::new();
            for i in 0..NT_PAGE_SECTORS as usize {
                let range = i * SECTOR_BYTES..(i + 1) * SECTOR_BYTES;
                if a_mask[i] {
                    self.spare.note_damaged(at_a + i as u32);
                    writes.push((at_a + i as u32, image[range.clone()].to_vec()));
                }
                if b_mask[i] {
                    self.spare.note_damaged(at_b + i as u32);
                    writes.push((at_b + i as u32, image[range].to_vec()));
                }
            }
            if let Err(e) = spare::scrub_batch(self.disk, self.policy, self.spare, writes) {
                if matches!(e, FsdError::Disk(DiskError::Crashed)) {
                    return Err(StoreError::Crashed);
                }
                // Spare slots exhausted: fall back to the pre-sparing
                // behavior and leave the repair to the next home write.
                needs_home = true;
            }
        }
        self.cache.pages.insert(
            id,
            CachedPage {
                image: image.clone(),
                baseline: Some(image.clone()),
                last_logged_third: None,
                needs_home,
                last_used: stamp,
            },
        );
        self.cache.evict_to_capacity(self.pending);
        Ok(image)
    }

    /// Batch-reads the home copies of `ids` into the cache with large
    /// C-SCAN transfers — the recovery-scan fast path for whole-table
    /// walks such as the VAM rebuild, replacing two seek+rotate round
    /// trips per page with one ascending sweep per copy. Pages already
    /// cached (redo may hold newer images than home), pages with
    /// sectors remapped into the spare region, and pages damaged in
    /// either copy are left to the usual dual-copy
    /// [`FsdNtStore::read_through`], which checks and scrubs on demand.
    pub fn prefetch_pages(&mut self, ids: &[PageId]) -> Result<(), StoreError> {
        let remapped: std::collections::HashSet<u32> = self
            .spare
            .entries()
            .iter()
            .map(|&(logical, _)| logical)
            .collect();
        let mut want: Vec<PageId> = ids
            .iter()
            .copied()
            .filter(|id| !self.cache.pages.contains_key(id))
            .filter(|&id| {
                (0..NT_PAGE_SECTORS).all(|i| {
                    !remapped.contains(&(self.layout.nt_a_sector(id) + i))
                        && !remapped.contains(&(self.layout.nt_b_sector(id) + i))
                })
            })
            .collect();
        want.sort_unstable();
        want.dedup();
        if want.is_empty() {
            return Ok(());
        }
        // One range per contiguous page run, per copy: reads never
        // conflict, so the whole batch is a single barrier-free window
        // the scheduler services in C-SCAN order.
        let mut runs: Vec<(usize, usize)> = Vec::new(); // (index into want, pages)
        for (i, &id) in want.iter().enumerate() {
            match runs.last_mut() {
                Some((s, n)) if want[*s] + *n as u32 == id => *n += 1,
                _ => runs.push((i, 1)),
            }
        }
        let mut ranges: Vec<(u32, usize)> = Vec::with_capacity(runs.len() * 2);
        for &(s, n) in &runs {
            ranges.push((
                self.layout.nt_a_sector(want[s]),
                n * NT_PAGE_SECTORS as usize,
            ));
        }
        for &(s, n) in &runs {
            ranges.push((
                self.layout.nt_b_sector(want[s]),
                n * NT_PAGE_SECTORS as usize,
            ));
        }
        let chunks = scan::read_chunks(self.disk, self.policy, &ranges, 0).map_err(to_store_err)?;
        let (a_chunks, b_chunks) = chunks.split_at(runs.len());
        for (ri, &(s, n)) in runs.iter().enumerate() {
            let (a, b) = (&a_chunks[ri], &b_chunks[ri]);
            // The chunk shapes came back from the I/O layer; a short one
            // would slice out of bounds below. Skip it — `read_through`
            // salvages on demand.
            let need = n * NT_PAGE_SECTORS as usize;
            if a.sectors() != need
                || b.sectors() != need
                || a.bytes.len() != need * SECTOR_BYTES
                || b.bytes.len() != need * SECTOR_BYTES
            {
                continue;
            }
            for j in 0..n {
                let lo = j * NT_PAGE_SECTORS as usize;
                let hi = lo + NT_PAGE_SECTORS as usize;
                if a.damaged[lo..hi].iter().any(|&d| d) || b.damaged[lo..hi].iter().any(|&d| d) {
                    continue; // read_through will salvage and scrub.
                }
                let image = a.bytes[lo * SECTOR_BYTES..hi * SECTOR_BYTES].to_vec();
                let stamp = self.cache.stamp();
                self.cache.pages.insert(
                    want[s + j],
                    CachedPage {
                        image: image.clone(),
                        baseline: Some(image),
                        last_logged_third: None,
                        needs_home: false,
                        last_used: stamp,
                    },
                );
            }
        }
        self.cache.evict_to_capacity(self.pending);
        Ok(())
    }

    /// Reads and decodes the full (possibly multi-page) NT meta.
    pub fn read_meta(&mut self) -> Result<NtMeta, StoreError> {
        let k = NtMeta::meta_pages_for(self.layout.nt_pages);
        let mut pages = Vec::with_capacity(k);
        for id in 0..k as u32 {
            pages.push(self.read_through(id)?);
        }
        NtMeta::decode_pages(&pages).map_err(StoreError::Io)
    }

    /// Writes every meta page back (cache-only, like any page write).
    pub fn write_meta(&mut self, meta: &NtMeta) -> Result<(), StoreError> {
        for (id, page) in meta.encode_pages().into_iter().enumerate() {
            self.write_page(id as u32, &page)?;
        }
        Ok(())
    }
}

impl PageStore for FsdNtStore<'_> {
    fn page_size(&self) -> usize {
        NT_PAGE_BYTES
    }

    fn read_page(&mut self, id: PageId) -> Result<Vec<u8>, StoreError> {
        self.cpu.btree_nodes(1);
        self.read_through(id)
    }

    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<(), StoreError> {
        self.cpu.btree_nodes(1);
        // No disk write: updates live in the cache until group commit
        // logs them (§5.3).
        let stamp = self.cache.stamp();
        match self.cache.pages.get_mut(&id) {
            Some(p) => {
                p.image = data.to_vec();
                p.last_used = stamp;
            }
            None => {
                self.cache.pages.insert(
                    id,
                    CachedPage {
                        image: data.to_vec(),
                        baseline: None, // Fresh page: log every sector.
                        last_logged_third: None,
                        needs_home: false,
                        last_used: stamp,
                    },
                );
            }
        }
        self.pending.insert(id);
        self.cache.evict_to_capacity(self.pending);
        Ok(())
    }

    fn alloc_page(&mut self) -> Result<PageId, StoreError> {
        let mut meta = self.read_meta()?;
        let page = meta.alloc(self.layout.nt_pages).ok_or(StoreError::Full)?;
        // Only the meta page holding the flipped bit is dirtied.
        let idx = NtMeta::meta_page_of_word(page as usize / 64);
        let image = meta.encode_pages().swap_remove(idx);
        self.write_page(idx as u32, &image)?;
        Ok(page)
    }

    fn free_page(&mut self, id: PageId) -> Result<(), StoreError> {
        let mut meta = self.read_meta()?;
        meta.free(id);
        let idx = NtMeta::meta_page_of_word(id as usize / 64);
        let image = meta.encode_pages().swap_remove(idx);
        self.write_page(idx as u32, &image)?;
        self.cache.pages.remove(&id);
        self.pending.remove(&id);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_disk::{CpuModel, DiskGeometry};

    fn setup() -> (SimDisk, Cpu, FsdLayout) {
        let disk = SimDisk::tiny();
        let cpu = Cpu::new(disk.clock(), CpuModel::FREE);
        let layout = FsdLayout::compute(&DiskGeometry::TINY, 16, 128);
        (disk, cpu, layout)
    }

    #[test]
    fn meta_roundtrip_and_alloc() {
        let mut m = NtMeta::new(100);
        assert!(m.in_use(0));
        let p = m.alloc(100).unwrap();
        assert_eq!(p, 1);
        m.root = 7;
        let decoded = NtMeta::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
        assert!(decoded.in_use(1));
    }

    #[test]
    fn meta_multi_page_roundtrip() {
        // 20 000 pages → 313 bitmap words → 3 meta pages.
        let mut m = NtMeta::new(20_000);
        assert_eq!(m.meta_pages(), 3);
        for p in 0..3 {
            assert!(m.in_use(p), "meta page {p} must be pre-allocated");
        }
        assert_eq!(m.alloc(20_000), Some(3));
        // Claim a page whose bitmap word lives on a continuation page.
        let far = 19_999;
        let (w, b) = (far as usize / 64, far % 64);
        m.bitmap[w] |= 1 << b;
        m.root = 9;
        let pages = m.encode_pages();
        assert_eq!(pages.len(), 3);
        let decoded = NtMeta::decode_pages(&pages).unwrap();
        assert_eq!(decoded, m);
        assert!(decoded.in_use(far));
        assert_eq!(NtMeta::decode_root(&pages[0]).unwrap(), 9);
        assert_eq!(NtMeta::meta_page_of_word(w), 2);
        // Page 0 alone is enough for the root but not the bitmap.
        assert!(NtMeta::decode_pages(&pages[..1]).is_err());
    }

    #[test]
    fn meta_single_page_layout_unchanged() {
        // Small volumes keep the one-page encoding bit for bit.
        let m = NtMeta::new(128);
        assert_eq!(m.meta_pages(), 1);
        assert_eq!(m.encode(), m.encode_pages().remove(0));
    }

    #[test]
    fn meta_free_and_exhaustion() {
        let mut m = NtMeta::new(3);
        assert_eq!(m.alloc(3), Some(1));
        assert_eq!(m.alloc(3), Some(2));
        assert_eq!(m.alloc(3), None);
        m.free(1);
        assert_eq!(m.alloc(3), Some(1));
    }

    #[test]
    fn writes_do_not_touch_disk() {
        let (mut disk, cpu, layout) = setup();
        let mut cache = NtCache::new();
        let mut pending = BTreeSet::new();
        let mut spare = SpareMap::for_layout(&layout);
        let mut store = FsdNtStore {
            disk: &mut disk,
            cpu: &cpu,
            layout: &layout,
            policy: IoPolicy::InOrder,
            spare: &mut spare,
            cache: &mut cache,
            pending: &mut pending,
        };
        store.write_page(3, &vec![7u8; NT_PAGE_BYTES]).unwrap();
        assert_eq!(store.disk.stats().writes, 0);
        assert!(store.pending.contains(&3));
        assert_eq!(store.read_page(3).unwrap(), vec![7u8; NT_PAGE_BYTES]);
        // Fresh page: baseline None → everything logs at next force.
        assert!(store.cache.pages[&3].baseline.is_none());
    }

    #[test]
    fn miss_reads_both_copies() {
        let (mut disk, cpu, layout) = setup();
        disk.write(layout.nt_a_sector(2), &vec![5u8; NT_PAGE_BYTES])
            .unwrap();
        disk.write(layout.nt_b_sector(2), &vec![5u8; NT_PAGE_BYTES])
            .unwrap();
        let mut cache = NtCache::new();
        let mut pending = BTreeSet::new();
        let mut spare = SpareMap::for_layout(&layout);
        let mut store = FsdNtStore {
            disk: &mut disk,
            cpu: &cpu,
            layout: &layout,
            policy: IoPolicy::InOrder,
            spare: &mut spare,
            cache: &mut cache,
            pending: &mut pending,
        };
        let before = store.disk.stats().reads;
        assert_eq!(store.read_page(2).unwrap(), vec![5u8; NT_PAGE_BYTES]);
        assert_eq!(store.disk.stats().reads - before, 2);
        // Second read hits the cache.
        let before = store.disk.stats().reads;
        store.read_page(2).unwrap();
        assert_eq!(store.disk.stats().reads, before);
    }

    #[test]
    fn damaged_copy_a_read_from_b() {
        let (mut disk, cpu, layout) = setup();
        disk.write(layout.nt_a_sector(2), &vec![1u8; NT_PAGE_BYTES])
            .unwrap();
        disk.write(layout.nt_b_sector(2), &vec![1u8; NT_PAGE_BYTES])
            .unwrap();
        disk.damage_sector(layout.nt_a_sector(2));
        let mut cache = NtCache::new();
        let mut pending = BTreeSet::new();
        let mut spare = SpareMap::for_layout(&layout);
        let mut store = FsdNtStore {
            disk: &mut disk,
            cpu: &cpu,
            layout: &layout,
            policy: IoPolicy::InOrder,
            spare: &mut spare,
            cache: &mut cache,
            pending: &mut pending,
        };
        assert_eq!(store.read_page(2).unwrap(), vec![1u8; NT_PAGE_BYTES]);
        // The damaged copy was scrubbed from its twin on the spot: no
        // pending home write remains and copy A reads clean again.
        assert!(!store.cache.pages[&2].needs_home);
        assert_eq!(store.spare.scrubbed, 1);
        assert_eq!(
            store.disk.read(layout.nt_a_sector(2), 1).unwrap(),
            vec![1u8; cedar_disk::SECTOR_BYTES]
        );
    }

    #[test]
    fn grown_defect_under_nt_read_is_remapped() {
        let (mut disk, cpu, layout) = setup();
        disk.write(layout.nt_a_sector(2), &vec![1u8; NT_PAGE_BYTES])
            .unwrap();
        disk.write(layout.nt_b_sector(2), &vec![1u8; NT_PAGE_BYTES])
            .unwrap();
        // A permanently dead sector in copy A: the scrub rewrite fails
        // too, so the sector is remapped into the spare region.
        disk.hard_damage_sector(layout.nt_a_sector(2));
        let mut cache = NtCache::new();
        let mut pending = BTreeSet::new();
        let mut spare = SpareMap::for_layout(&layout);
        let mut store = FsdNtStore {
            disk: &mut disk,
            cpu: &cpu,
            layout: &layout,
            policy: IoPolicy::InOrder,
            spare: &mut spare,
            cache: &mut cache,
            pending: &mut pending,
        };
        assert_eq!(store.read_page(2).unwrap(), vec![1u8; NT_PAGE_BYTES]);
        assert!(!store.cache.pages[&2].needs_home);
        assert_eq!(store.spare.remapped, 1);
        assert_eq!(
            store.spare.translate(layout.nt_a_sector(2)),
            layout.spare_start
        );
        // A fresh store built over the same spare map reads the page back
        // whole through the remap table.
        store.cache.pages.clear();
        assert_eq!(store.read_page(2).unwrap(), vec![1u8; NT_PAGE_BYTES]);
    }

    #[test]
    fn cross_copy_sector_salvage() {
        let (mut disk, cpu, layout) = setup();
        disk.write(layout.nt_a_sector(2), &vec![1u8; NT_PAGE_BYTES])
            .unwrap();
        disk.write(layout.nt_b_sector(2), &vec![1u8; NT_PAGE_BYTES])
            .unwrap();
        // Different sectors damaged in each copy: salvage combines them.
        disk.damage_sector(layout.nt_a_sector(2));
        disk.damage_sector(layout.nt_b_sector(2) + 1);
        let mut cache = NtCache::new();
        let mut pending = BTreeSet::new();
        let mut spare = SpareMap::for_layout(&layout);
        let mut store = FsdNtStore {
            disk: &mut disk,
            cpu: &cpu,
            layout: &layout,
            policy: IoPolicy::InOrder,
            spare: &mut spare,
            cache: &mut cache,
            pending: &mut pending,
        };
        assert_eq!(store.read_page(2).unwrap(), vec![1u8; NT_PAGE_BYTES]);
    }

    #[test]
    fn same_sector_lost_in_both_copies_is_io_error() {
        let (mut disk, cpu, layout) = setup();
        disk.damage_sector(layout.nt_a_sector(2));
        disk.damage_sector(layout.nt_b_sector(2));
        let mut cache = NtCache::new();
        let mut pending = BTreeSet::new();
        let mut spare = SpareMap::for_layout(&layout);
        let mut store = FsdNtStore {
            disk: &mut disk,
            cpu: &cpu,
            layout: &layout,
            policy: IoPolicy::InOrder,
            spare: &mut spare,
            cache: &mut cache,
            pending: &mut pending,
        };
        assert!(matches!(store.read_page(2), Err(StoreError::Io(_))));
    }

    #[test]
    fn alloc_free_through_meta_page() {
        let (mut disk, cpu, layout) = setup();
        let mut cache = NtCache::new();
        let mut pending = BTreeSet::new();
        let mut spare = SpareMap::for_layout(&layout);
        let mut store = FsdNtStore {
            disk: &mut disk,
            cpu: &cpu,
            layout: &layout,
            policy: IoPolicy::InOrder,
            spare: &mut spare,
            cache: &mut cache,
            pending: &mut pending,
        };
        // Seed the meta page in cache (as format does).
        store.write_page(0, &NtMeta::new(16).encode()).unwrap();
        let p = store.alloc_page().unwrap();
        assert_eq!(p, 1);
        let meta = NtMeta::decode(&store.read_page(0).unwrap()).unwrap();
        assert!(meta.in_use(1));
        store.free_page(p).unwrap();
        let meta = NtMeta::decode(&store.read_page(0).unwrap()).unwrap();
        assert!(!meta.in_use(1));
        // All of that happened without any disk writes.
        assert_eq!(store.disk.stats().writes, 0);
    }
}
