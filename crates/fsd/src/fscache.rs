//! The remote-file cache — the "FS" half of Cedar's file system.
//!
//! "The Cedar File Package and File System, FS, together implement the
//! abstraction of a named file" (§2), and FS keeps "cached copies of
//! remote files" among its name-table entries (§4). This module supplies
//! that layer on top of [`FsdVolume`]:
//!
//! * remote files are fetched from a [`FileServer`] and stored as
//!   `CachedRemote` entries, one local file per remote version — "New
//!   versions of files may be cached, but old versions are immutable
//!   (except that they may be flushed)" (§5.6);
//! * every cache hit refreshes the entry's last-used-time through the
//!   ordinary `open` path — the lazily committed property update that is
//!   §5.4's one-page log record example;
//! * cache pressure is relieved by flushing the least-recently-used
//!   copies.

use crate::entry::EntryKind;
use crate::error::FsdError;
use crate::volume::{FsdFile, FsdVolume};
use crate::Result;
use std::collections::HashMap;

/// A remote file server, as seen by the cache.
///
/// The real servers were Alpine/IFS machines over the Ethernet; the
/// simulation only needs the fetch interface.
pub trait FileServer {
    /// Highest version of `name` on the server, if it exists.
    fn newest_version(&mut self, name: &str) -> Option<u32>;
    /// Fetches a specific version's contents.
    fn fetch(&mut self, name: &str, version: u32) -> Option<Vec<u8>>;
}

/// An in-memory file server for tests and examples.
#[derive(Debug, Default)]
pub struct MemServer {
    /// name → contents per version (index 0 = version 1).
    files: HashMap<String, Vec<Vec<u8>>>,
    /// Fetches served (for asserting cache hits).
    pub fetches: u64,
}

impl MemServer {
    /// Creates an empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a new version of `name`, returning its version number.
    pub fn publish(&mut self, name: &str, data: &[u8]) -> u32 {
        let stack = self.files.entry(name.to_string()).or_default();
        stack.push(data.to_vec());
        u32::try_from(stack.len()).unwrap_or(u32::MAX)
    }
}

impl FileServer for MemServer {
    fn newest_version(&mut self, name: &str) -> Option<u32> {
        self.files
            .get(name)
            .map(|s| u32::try_from(s.len()).unwrap_or(u32::MAX))
    }

    fn fetch(&mut self, name: &str, version: u32) -> Option<Vec<u8>> {
        let data = self
            .files
            .get(name)?
            .get(version.checked_sub(1)? as usize)
            .cloned()?;
        self.fetches += 1;
        Some(data)
    }
}

/// The caching layer: a local FSD volume fronting a file server.
pub struct CachingFs<S: FileServer> {
    /// The local volume holding the cached copies.
    pub volume: FsdVolume,
    /// The remote server.
    pub server: S,
}

/// Local name of the cached copy of `name!version`.
fn cache_name(name: &str, version: u32) -> String {
    format!("cache/{name}@v{version}")
}

impl<S: FileServer> CachingFs<S> {
    /// Wraps a volume and a server.
    pub fn new(volume: FsdVolume, server: S) -> Self {
        Self { volume, server }
    }

    /// Opens the newest version of a remote file, fetching it into the
    /// cache on a miss. Returns the open file and whether it was a hit.
    /// Either way the copy's last-used-time is refreshed (lazily, via the
    /// group commit).
    pub fn open_remote(&mut self, name: &str) -> Result<(FsdFile, bool)> {
        let version = self
            .server
            .newest_version(name)
            .ok_or_else(|| FsdError::NotFound(format!("[server]{name}")))?;
        let local = cache_name(name, version);
        match self.volume.open(&local, None) {
            Ok(f) => Ok((f, true)),
            Err(FsdError::NotFound(_)) => {
                let data = self
                    .server
                    .fetch(name, version)
                    .ok_or_else(|| FsdError::NotFound(format!("[server]{name}!{version}")))?;
                self.volume.create_cached(&local, &data)?;
                let f = self.volume.open(&local, None)?;
                Ok((f, false))
            }
            Err(e) => Err(e),
        }
    }

    /// Reads the newest version of a remote file through the cache.
    pub fn read_remote(&mut self, name: &str) -> Result<Vec<u8>> {
        let (mut f, _) = self.open_remote(name)?;
        self.volume.read_file(&mut f)
    }

    /// Flushes least-recently-used cached copies until at least
    /// `min_free` data sectors are available (or the cache is empty).
    /// Returns how many copies were flushed. Old versions go first
    /// regardless of use, as Cedar's flusher preferred.
    pub fn flush_lru(&mut self, min_free: u32) -> Result<usize> {
        let mut flushed = 0;
        // Shadow-held pages count: they become free at the commit below.
        while self.volume.free_sectors() + self.volume.shadow_sectors() < min_free {
            // Collect cached entries with their last-used-times.
            let mut candidates: Vec<(String, u32, u64)> = Vec::new();
            for (fname, entry) in self.volume.list("cache/")? {
                if let EntryKind::CachedRemote { last_used } = entry.kind {
                    candidates.push((fname.name.clone(), fname.version, last_used));
                }
            }
            let Some((name, version, _)) = candidates
                .into_iter()
                .min_by_key(|(_, _, last_used)| *last_used)
            else {
                break; // Nothing left to flush.
            };
            self.volume.delete(&name, Some(version))?;
            flushed += 1;
        }
        if flushed > 0 {
            // Make the flushes' space reusable now.
            self.volume.force()?;
        }
        Ok(flushed)
    }

    /// Number of cached copies currently held.
    pub fn cached_copies(&mut self) -> Result<usize> {
        Ok(self.volume.list("cache/")?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::FsdConfig;
    use cedar_disk::{CpuModel, SimDisk};

    fn setup() -> CachingFs<MemServer> {
        let vol = FsdVolume::format(
            SimDisk::tiny(),
            FsdConfig {
                nt_pages: 32,
                log_sectors: 128,
                cpu: CpuModel::FREE,
                ..FsdConfig::default()
            },
        )
        .unwrap();
        CachingFs::new(vol, MemServer::new())
    }

    #[test]
    fn miss_fetches_then_hits() {
        let mut fs = setup();
        fs.server.publish("Compiler.bcd", b"code v1");
        let (f, hit) = fs.open_remote("Compiler.bcd").unwrap();
        assert!(!hit);
        assert!(matches!(f.entry.kind, EntryKind::CachedRemote { .. }));
        assert_eq!(fs.server.fetches, 1);
        // Second open: served locally, no fetch.
        let (_, hit) = fs.open_remote("Compiler.bcd").unwrap();
        assert!(hit);
        assert_eq!(fs.server.fetches, 1);
        assert_eq!(fs.read_remote("Compiler.bcd").unwrap(), b"code v1");
        assert_eq!(fs.server.fetches, 1);
    }

    #[test]
    fn new_remote_version_fetched_old_immutable() {
        let mut fs = setup();
        fs.server.publish("doc", b"v1");
        fs.open_remote("doc").unwrap();
        fs.server.publish("doc", b"v2");
        let (_, hit) = fs.open_remote("doc").unwrap();
        assert!(!hit, "a newer remote version is a miss");
        assert_eq!(fs.read_remote("doc").unwrap(), b"v2");
        // Both versions are cached; the old one is immutable and intact.
        assert_eq!(fs.cached_copies().unwrap(), 2);
        let mut old = fs.volume.open(&cache_name("doc", 1), None).unwrap();
        assert_eq!(fs.volume.read_file(&mut old).unwrap(), b"v1");
    }

    #[test]
    fn missing_remote_file_errors() {
        let mut fs = setup();
        assert!(matches!(
            fs.open_remote("ghost"),
            Err(FsdError::NotFound(_))
        ));
    }

    #[test]
    fn hits_refresh_last_used_time() {
        let mut fs = setup();
        fs.server.publish("a", b"aa");
        fs.server.publish("b", b"bb");
        fs.open_remote("a").unwrap();
        fs.volume.clock().advance(1_000_000);
        fs.open_remote("b").unwrap();
        fs.volume.clock().advance(1_000_000);
        fs.open_remote("a").unwrap(); // "a" is now the most recent.
                                      // Probe through list(): an open would itself refresh the stamp.
        let lu = |fs: &mut CachingFs<MemServer>, n: &str| -> u64 {
            let want = cache_name(n, 1);
            fs.volume
                .list("cache/")
                .unwrap()
                .into_iter()
                .find(|(f, _)| f.name == want)
                .map(|(_, e)| match e.kind {
                    EntryKind::CachedRemote { last_used } => last_used,
                    _ => panic!("not cached"),
                })
                .expect("cached copy present")
        };
        assert!(lu(&mut fs, "a") > lu(&mut fs, "b"));
    }

    #[test]
    fn flush_lru_evicts_least_recent_first() {
        let mut fs = setup();
        for i in 0..6 {
            fs.server.publish(&format!("f{i}"), &vec![i as u8; 3000]);
            fs.open_remote(&format!("f{i}")).unwrap();
            fs.volume.clock().advance(500_000);
            // Touch again so ordering is by these stamps.
            fs.open_remote(&format!("f{i}")).unwrap();
        }
        let free = fs.volume.free_sectors();
        let flushed = fs.flush_lru(free + 12).unwrap();
        assert!(flushed >= 2);
        // The oldest-touched copies went first: f0 gone, f5 survives.
        assert!(fs.volume.open(&cache_name("f0", 1), None).is_err());
        assert!(fs.volume.open(&cache_name("f5", 1), None).is_ok());
        assert!(fs.volume.free_sectors() >= free + 12);
        // A flushed file simply refetches.
        let (_, hit) = fs.open_remote("f0").unwrap();
        assert!(!hit);
    }

    #[test]
    fn cache_state_survives_crash_when_committed() {
        let mut fs = setup();
        fs.server.publish("persist", b"bytes");
        fs.open_remote("persist").unwrap();
        fs.volume.force().unwrap();
        let server = std::mem::take(&mut fs.server);
        let mut disk = fs.volume.into_disk();
        disk.crash_now();
        disk.reboot();
        let (vol, _) = FsdVolume::boot(
            disk,
            FsdConfig {
                nt_pages: 32,
                log_sectors: 128,
                cpu: CpuModel::FREE,
                ..FsdConfig::default()
            },
        )
        .unwrap();
        let mut fs = CachingFs::new(vol, server);
        let fetches_before = fs.server.fetches;
        let (_, hit) = fs.open_remote("persist").unwrap();
        assert!(hit, "the committed cache entry survived the crash");
        assert_eq!(fs.server.fetches, fetches_before);
    }
}
