//! FSD name-table entries.
//!
//! "FSD moves all the header information from the file headers directly
//! into the file name table" (§4). A local file's entry carries the full
//! Table 1 set — text name, version, keep, uid, run table, byte size,
//! create time — so `open` and `list` need no per-file disk read. The
//! name table also holds symbolic links to remote files and cached copies
//! of remote files (§4); cached copies carry the *last-used-time* whose
//! lazy, group-committed update is the paper's one-page log record example
//! (§5.4).

use crate::error::FsdError;
use cedar_disk::SectorAddr;
use cedar_vol::codec::{Reader, Writer};
use cedar_vol::RunTable;

/// What kind of name-table entry this is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EntryKind {
    /// An ordinary local file.
    Local,
    /// A symbolic link to a file on a file server.
    SymLink {
        /// The remote name the link resolves to.
        target: String,
    },
    /// A locally cached copy of a remote file.
    CachedRemote {
        /// Simulated time the cached copy was last used.
        last_used: u64,
    },
}

/// A decoded name-table entry (the value under a `name!version` key).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileEntry {
    /// Entry kind.
    pub kind: EntryKind,
    /// The file's unique id.
    pub uid: u64,
    /// Number of old versions to keep.
    pub keep: u32,
    /// Logical length in bytes.
    pub byte_size: u64,
    /// Creation time (simulated microseconds).
    pub create_time: u64,
    /// Sector of the leader page (always `first data sector − 1` when the
    /// allocation succeeded contiguously; stored explicitly so empty files
    /// keep their leader).
    pub leader_addr: SectorAddr,
    /// The data extents (not including the leader page).
    pub run_table: RunTable,
}

impl FileEntry {
    /// Encodes the entry.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match &self.kind {
            EntryKind::Local => {
                w.u8(1);
            }
            EntryKind::SymLink { target } => {
                w.u8(2).str16(target.as_bytes());
            }
            EntryKind::CachedRemote { last_used } => {
                w.u8(3).u64(*last_used);
            }
        }
        w.u64(self.uid)
            .u32(self.keep)
            .u64(self.byte_size)
            .u64(self.create_time)
            .u32(self.leader_addr)
            .bytes(&self.run_table.encode());
        w.into_bytes()
    }

    /// Decodes an entry.
    pub fn decode(bytes: &[u8]) -> Result<Self, FsdError> {
        let mut r = Reader::new(bytes);
        let bad = |m: String| FsdError::Check(format!("name table entry: {m}"));
        let kind = match r.u8().map_err(bad)? {
            1 => EntryKind::Local,
            2 => {
                let t = r.str16().map_err(bad)?.to_vec();
                EntryKind::SymLink {
                    target: String::from_utf8(t)
                        .map_err(|_| FsdError::Check("symlink target not UTF-8".into()))?,
                }
            }
            3 => EntryKind::CachedRemote {
                last_used: r.u64().map_err(bad)?,
            },
            k => return Err(FsdError::Check(format!("unknown entry kind {k}"))),
        };
        Ok(Self {
            kind,
            uid: r.u64().map_err(bad)?,
            keep: r.u32().map_err(bad)?,
            byte_size: r.u64().map_err(bad)?,
            create_time: r.u64().map_err(bad)?,
            leader_addr: r.u32().map_err(bad)?,
            run_table: RunTable::decode(&mut r).map_err(bad)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_vol::Run;

    fn local() -> FileEntry {
        FileEntry {
            kind: EntryKind::Local,
            uid: 42,
            keep: 2,
            byte_size: 999,
            create_time: 123456,
            leader_addr: 5000,
            run_table: RunTable::from_runs([Run::new(5001, 2)]),
        }
    }

    #[test]
    fn local_roundtrip() {
        let e = local();
        assert_eq!(FileEntry::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn symlink_roundtrip() {
        let e = FileEntry {
            kind: EntryKind::SymLink {
                target: "[server]<dir>file.mesa!4".into(),
            },
            run_table: RunTable::new(),
            leader_addr: 0,
            ..local()
        };
        assert_eq!(FileEntry::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn cached_remote_roundtrip() {
        let e = FileEntry {
            kind: EntryKind::CachedRemote { last_used: 777 },
            ..local()
        };
        assert_eq!(FileEntry::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn decode_rejects_bad_kind_and_truncation() {
        assert!(FileEntry::decode(&[9]).is_err());
        let bytes = local().encode();
        assert!(FileEntry::decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn entry_is_compact_enough_for_nt_pages() {
        // With a 64-byte name key, entry + key must fit the B-tree's
        // per-entry budget for 1024-byte pages: (1024 - 3) / 4 = 255.
        let mut e = local();
        for i in 0..10 {
            e.run_table.push(Run::new(9000 + i * 10, 1));
        }
        let max_key = 64 + 5;
        assert!(4 + max_key + e.encode().len() <= 255);
    }
}
