//! FSD — "FS for Dragon", the paper's reimplemented Cedar file system.
//!
//! FSD keeps **all** file metadata in the file name table (name, version,
//! keep, uid, run table, byte size, create time — Table 1), double-writes
//! every name-table page on sectors with independent failure modes, and
//! recovers the table from a **physical redo log** instead of hardware
//! labels:
//!
//! * updates are applied to cached copies of name-table pages and the
//!   *changed sectors* are written to a circular log, two copies per
//!   record, in a torn-write-tolerant layout (§5.3);
//! * **group commit** batches all updates of the last half second into one
//!   log force (§5.4), so bulk metadata traffic costs a fraction of the
//!   I/Os (the paper measures 2.98× fewer metadata I/Os);
//! * the log is divided into **thirds**: entering a third flushes home the
//!   pages whose only log copy lives there, keeping 5/6 of the log usable
//!   with a trivially simple reclamation rule (§5.3);
//! * the free map (**VAM**) is purely volatile, saved only at controlled
//!   shutdown and otherwise reconstructed from the name table in seconds
//!   (§5.5); pages of deleted files sit in a *shadow* bitmap until the
//!   delete commits;
//! * every file carries a one-sector **leader page** used only as a
//!   software cross-check (uid, run-table preamble and checksum), verified
//!   by piggybacking its read on the first data access (§5.2, §5.7);
//! * file allocation splits the volume into small and big file areas to
//!   curtail fragmentation (§5.6).
//!
//! Crash recovery is a redo scan of the log plus, at worst, the VAM
//! rebuild — one to twenty-five seconds against the scavenger's hour.

#![deny(unsafe_code)]

pub mod cache;
pub mod engine;
pub mod entry;
pub mod error;
pub mod fs_impl;
pub mod fscache;
pub mod layout;
pub mod leader;
pub mod log;
pub mod recovery;
pub mod repl;
pub mod scavenge;
pub mod sched;
pub mod spare;
pub mod sync;
pub mod volume;

pub use engine::{EngineConfig, EngineStats, FsdEngine};
pub use entry::{EntryKind, FileEntry};
pub use error::FsdError;
pub use fscache::{CachingFs, FileServer, MemServer};
pub use layout::FsdLayout;
pub use leader::LeaderPage;
pub use recovery::{RecoveryReport, RecoveryRung};
pub use repl::{
    DataWrite, FailoverOutcome, ReplFrame, ReplHandle, ReplMode, ReplSession, ReplSessionConfig,
    Replica, ReplicaStats, ResyncKind, ResyncOutcome, ShipperConfig, ShipperStats,
};
pub use scavenge::ScavengeSummary;
pub use sched::{
    ClientHandle, CommitScheduler, LatencyStats, SchedConfig, SchedReport, SharedScheduler,
};
pub use spare::SpareMap;
pub use volume::{FsdConfig, FsdFile, FsdVolume};

/// Result alias for FSD operations.
pub type Result<T> = std::result::Result<T, FsdError>;

/// Sectors per name-table logical page.
pub const NT_PAGE_SECTORS: u32 = 2;

/// Bytes per name-table logical page.
pub const NT_PAGE_BYTES: usize = NT_PAGE_SECTORS as usize * cedar_disk::SECTOR_BYTES;
