//! [`FsBackend`] implementation for [`FsdVolume`].
//!
//! FSD batches metadata in the cached name table and makes it durable at
//! the group commit, so [`FsBackend::sync`] forces the log. This is the
//! raw single-owner backend; the concurrent shared-reference service is
//! [`crate::FsdEngine`], which owns the volume on a dedicated log-writer
//! thread and forms commit epochs across client threads.

use crate::error::FsdError;
use crate::volume::FsdVolume;
use cedar_vol::fs::{CedarFsError, FileInfo, FsBackend, FsStats, CHUNK_PAGES};

impl From<FsdError> for CedarFsError {
    fn from(e: FsdError) -> Self {
        match e {
            FsdError::Disk(d) => CedarFsError::Disk(d),
            FsdError::Check(m) => CedarFsError::Corrupt(m),
            FsdError::NotFound(n) => CedarFsError::NotFound(n),
            FsdError::NoSpace => CedarFsError::NoSpace,
            FsdError::BadName(m) => CedarFsError::BadName(m),
            FsdError::OutOfRange { page, pages } => {
                CedarFsError::OutOfRange(format!("page {page} of {pages}"))
            }
            FsdError::WrongKind(k) => CedarFsError::WrongKind(k.to_string()),
        }
    }
}

impl FsBackend for FsdVolume {
    fn kind(&self) -> &'static str {
        "fsd"
    }

    fn create(&mut self, name: &str, data: &[u8]) -> Result<FileInfo, CedarFsError> {
        let f = FsdVolume::create(self, name, data)?;
        Ok(FileInfo {
            name: f.name.name.clone(),
            version: f.name.version,
            bytes: f.byte_size(),
        })
    }

    fn open(&mut self, name: &str) -> Result<FileInfo, CedarFsError> {
        let f = FsdVolume::open(self, name, None)?;
        Ok(FileInfo {
            name: f.name.name.clone(),
            version: f.name.version,
            bytes: f.byte_size(),
        })
    }

    fn read(&mut self, name: &str) -> Result<Vec<u8>, CedarFsError> {
        let mut f = FsdVolume::open(self, name, None)?;
        let mut out = Vec::with_capacity(f.byte_size() as usize);
        let mut page = 0;
        while page < f.pages() {
            let take = CHUNK_PAGES.min(f.pages() - page);
            out.extend(self.read_pages(&mut f, page, take)?);
            page += take;
        }
        out.truncate(f.byte_size() as usize);
        Ok(out)
    }

    fn write(&mut self, name: &str, data: &[u8]) -> Result<FileInfo, CedarFsError> {
        // FSD files are immutable Cedar files: overwriting a name means
        // logging its next version, which `create` already does for an
        // existing name.
        FsBackend::create(self, name, data)
    }

    fn delete(&mut self, name: &str) -> Result<(), CedarFsError> {
        FsdVolume::delete(self, name, None)?;
        Ok(())
    }

    fn list(&mut self, prefix: &str) -> Result<Vec<FileInfo>, CedarFsError> {
        // Name-table order is (name, version ascending): keep the last
        // entry seen per name, i.e. the newest version.
        let mut out: Vec<FileInfo> = Vec::new();
        for (fname, entry) in FsdVolume::list(self, prefix)? {
            let info = FileInfo {
                name: fname.name.clone(),
                version: fname.version,
                bytes: entry.byte_size,
            };
            match out.last_mut() {
                Some(last) if last.name == info.name => *last = info,
                _ => out.push(info),
            }
        }
        Ok(out)
    }

    fn sync(&mut self) -> Result<(), CedarFsError> {
        self.force()?;
        Ok(())
    }

    fn stats(&self) -> FsStats {
        FsStats {
            disk: self.disk_stats(),
            now_us: self.clock().now(),
            free_sectors: self.free_sectors() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FsdConfig;
    use cedar_disk::{CpuModel, SimDisk};

    fn vol() -> FsdVolume {
        FsdVolume::format(
            SimDisk::tiny(),
            FsdConfig {
                nt_pages: 48,
                log_sectors: 128,
                cpu: CpuModel::FREE,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn backend_roundtrip_versioning_and_sync() {
        let mut v = vol();
        let fs: &mut dyn FsBackend = &mut v;
        assert_eq!(fs.kind(), "fsd");
        fs.create("d/a", b"one").unwrap();
        let info = fs.write("d/a", b"two!").unwrap();
        assert_eq!((info.version, info.bytes), (2, 4));
        assert_eq!(fs.read("d/a").unwrap(), b"two!");
        let listing = fs.list("d/").unwrap();
        assert_eq!(listing.len(), 1);
        assert_eq!(listing[0].version, 2);
        fs.sync().unwrap();
        assert!(v.commit_stats().forces >= 1);
    }

    #[test]
    fn errors_map_to_shared_enum() {
        let fs: &mut dyn FsBackend = &mut vol();
        assert!(matches!(
            fs.delete("missing"),
            Err(CedarFsError::NotFound(_))
        ));
    }
}
