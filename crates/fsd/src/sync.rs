//! Synchronization primitives for the engine, swappable for the
//! in-tree `loom` model checker.
//!
//! The threaded engine (`engine.rs`) takes all of its lock, condvar,
//! atomic, and thread types from this module instead of `std` directly.
//! In a normal build these re-exports *are* the std types — zero cost.
//! Under `--features loom` they become the model checker's shims, whose
//! every acquisition, wait, notify, atomic access, spawn, and join is a
//! scheduling point, so `tests/loom_engine.rs` can enumerate the
//! engine's epoch hand-off interleavings exhaustively (within a
//! preemption bound).
//!
//! `Arc`, `Instant`, and `Duration` intentionally stay `std` in both
//! configurations: the shutdown path's `Arc::try_unwrap` needs the real
//! type, and the pacer is disabled (`pace_scale: None`) in model tests
//! so wall-clock time never becomes a scheduling concern.

#[cfg(feature = "loom")]
pub use loom::sync::atomic;
#[cfg(feature = "loom")]
pub use loom::sync::{Condvar, Mutex, MutexGuard, RwLock};
#[cfg(feature = "loom")]
pub use loom::thread;

#[cfg(not(feature = "loom"))]
pub use std::sync::atomic;
#[cfg(not(feature = "loom"))]
pub use std::sync::{Condvar, Mutex, MutexGuard, RwLock};
#[cfg(not(feature = "loom"))]
pub use std::thread;
